"""The Theorem 1 reduction: SUBSET SUM -> event-structure consistency.

Following the paper's appendix A.2 proof: given positive integers
``n_1 .. n_k`` and a target ``s``, build an event structure over the
granularities ``month`` and ``n_i-month`` such that the structure is
consistent iff some subset of the numbers sums to ``s``.

Gadget (for each i):

* ``(X_i, X_{i+1}) in [0, n_i]_month`` and the pair of auxiliary
  variables ``V_i``/``U_i`` pinned to the starts of ``n_i-month``
  periods exactly ``n_i - 1`` months before ``X_i``/``X_{i+1}``, which
  forces ``X_{i+1} - X_i in {0, n_i}`` months (the disjunction trick of
  Figure 1(b));
* ``(X_1, X_{k+1}) in [s, s]_month`` - the chosen increments must sum
  exactly to ``s``.

The module also provides an independent dynamic-programming SUBSET SUM
solver to validate the equivalence, and helpers to decode a consistency
witness back into the chosen subset.

**Errata discovered by this reproduction.**  With the paper's fixed
``n-month`` groupings (tick boundaries at multiples of ``n`` months),
the auxiliary pins force ``X_i = -1 (mod n_{i-1})`` *and*
``X_i = -1 (mod n_i)``; chaining these residue constraints along
``X_1 .. X_{k+1}`` yields a simultaneous-congruence system whose
solvability depends on the chosen subset.  Consequently:

* *soundness* holds unconditionally - a consistent gadget always
  yields a valid subset (:func:`decode_witness` verifies the sum);
* *completeness* - "subset exists => gadget consistent" - holds only
  for subsets whose prefix-sum congruence system is CRT-solvable
  (:func:`crt_compatible_subset_exists`); e.g. always for pairwise
  coprime numbers, but **not** for instance ``(2, 3, 4)`` with target
  ``9``, which is solvable yet produces an inconsistent gadget.

The exact correspondence that does hold (and is what the tests and
experiment X3 verify) is::

    gadget consistent  <=>  some subset sums to the target AND its
                            congruence system is solvable

which still witnesses NP-hardness in spirit (pairwise-coprime SUBSET
SUM retains the problem's combinatorial core) while faithfully flagging
the gap in the published proof sketch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..constraints.consistency import ConsistencyReport, check_consistency_exact
from ..constraints.structure import EventStructure
from ..constraints.tcg import TCG
from ..granularity.calendar import month
from ..granularity.combinators import GroupedType
from ..granularity.gregorian import SECONDS_PER_DAY
from ..granularity.registry import GranularitySystem


@dataclass(frozen=True)
class SubsetSumInstance:
    """A SUBSET SUM instance: positive numbers and a non-negative target."""

    numbers: Tuple[int, ...]
    target: int

    def __post_init__(self) -> None:
        if any(n <= 0 for n in self.numbers):
            raise ValueError("numbers must be positive")
        if self.target < 0:
            raise ValueError("target must be non-negative")


def has_subset_sum(instance: SubsetSumInstance) -> bool:
    """Independent DP oracle: does some subset sum to the target?"""
    reachable: Set[int] = {0}
    for number in instance.numbers:
        reachable |= {
            value + number
            for value in reachable
            if value + number <= instance.target
        }
        if instance.target in reachable:
            return True
    return instance.target in reachable


def solve_subset_sum(instance: SubsetSumInstance) -> Optional[List[int]]:
    """A witness subset (as indices into ``numbers``), or None."""
    parents: Dict[int, Tuple[int, int]] = {0: (-1, -1)}
    for position, number in enumerate(instance.numbers):
        for value in sorted(parents):
            candidate = value + number
            if candidate <= instance.target and candidate not in parents:
                parents[candidate] = (value, position)
    if instance.target not in parents:
        return None
    chosen = []
    value = instance.target
    while value != 0:
        value, position = parents[value]
        chosen.append(position)
    chosen.reverse()
    return chosen


def _merge_congruence(
    state: Optional[Tuple[int, int]], r2: int, m2: int
) -> Optional[Tuple[int, int]]:
    """Merge ``x = r2 (mod m2)`` into ``x = r (mod m)``; None when the
    combined system is unsolvable."""
    if state is None:
        return None
    r1, m1 = state
    from math import gcd

    g = gcd(m1, m2)
    if (r2 - r1) % g != 0:
        return None
    lcm = m1 // g * m2
    # Shift r1 by multiples of m1 until it also satisfies the new one.
    step = m1
    value = r1
    while value % m2 != r2 % m2:
        value += step
    return value % lcm, lcm


def subset_congruences_solvable(
    instance: SubsetSumInstance, chosen: Sequence[int]
) -> bool:
    """Is the gadget's residue system solvable for this subset choice?

    ``chosen`` holds the indices whose increment is ``n_i`` (the rest
    use 0).  The system is ``X_1 = -1 - D_{i-1} (mod n_i)`` for each i,
    where ``D_j`` is the prefix sum of the chosen increments.
    """
    chosen_set = set(chosen)
    state: Optional[Tuple[int, int]] = (0, 1)
    prefix = 0
    for index, number in enumerate(instance.numbers):
        state = _merge_congruence(state, (-1 - prefix) % number, number)
        if state is None:
            return False
        if index in chosen_set:
            prefix += number
    return True


def crt_compatible_subset_exists(instance: SubsetSumInstance) -> bool:
    """The gadget's true decision value: does a subset sum to the target
    *and* have a CRT-solvable residue system?  (See module errata.)

    Brute force over subsets - only used on small validation instances.
    """
    k = len(instance.numbers)
    for mask in range(1 << k):
        chosen = [i for i in range(k) if mask >> i & 1]
        if sum(instance.numbers[i] for i in chosen) != instance.target:
            continue
        if subset_congruences_solvable(instance, chosen):
            return True
    return False


def reduction_structure(
    instance: SubsetSumInstance, system: GranularitySystem
) -> EventStructure:
    """Build the paper's gadget structure for a SUBSET SUM instance.

    Registers the required ``n_i-month`` grouped granularities in the
    system as a side effect.
    """
    mo = system.resolve(month())
    k = len(instance.numbers)
    variables = (
        ["X%d" % i for i in range(1, k + 2)]
        + ["V%d" % i for i in range(1, k + 1)]
        + ["U%d" % i for i in range(1, k + 1)]
    )
    constraints: Dict[Tuple[str, str], List[TCG]] = {}

    def add(src: str, dst: str, tcg: TCG) -> None:
        constraints.setdefault((src, dst), []).append(tcg)

    for i, number in enumerate(instance.numbers, start=1):
        n_month = system.resolve(GroupedType(mo, number))
        add("X%d" % i, "X%d" % (i + 1), TCG(0, number, mo))
        # (V_i, X_i): same n_i-month period, exactly n_i - 1 months apart
        # => X_i is the last month of an n_i-month period.
        add("V%d" % i, "X%d" % i, TCG(0, 0, n_month))
        add("V%d" % i, "X%d" % i, TCG(number - 1, number - 1, mo))
        add("U%d" % i, "X%d" % (i + 1), TCG(0, 0, n_month))
        add("U%d" % i, "X%d" % (i + 1), TCG(number - 1, number - 1, mo))
    add("X1", "X%d" % (k + 1), TCG(instance.target, instance.target, mo))

    # The paper's variable set has no single root (V_i/U_i have no
    # incoming arcs); root the graph with a harness variable R that
    # loosely precedes everything, which changes no distances.
    horizon_months = sum(instance.numbers) * 2 + instance.target + 24
    root_tcg = TCG(0, horizon_months, mo)
    for variable in variables:
        if variable.startswith("V") or variable.startswith("U") or variable == "X1":
            add("R", variable, root_tcg)
    return EventStructure(["R"] + variables, constraints)


@dataclass
class ReductionOutcome:
    """Result of deciding an instance through the reduction."""

    instance: SubsetSumInstance
    consistent: bool
    completed: bool
    witness_subset: Optional[List[int]]
    nodes_explored: int


def decide_via_reduction(
    instance: SubsetSumInstance,
    system: GranularitySystem,
    window_months: Optional[int] = None,
    max_nodes: int = 2_000_000,
) -> ReductionOutcome:
    """Decide SUBSET SUM by exact consistency of the gadget structure.

    The default window covers one full ``lcm(numbers)``-month cycle plus
    the chain's span: the X variables' residue constraints admit
    solutions only in classes modulo the lcm, so anything shorter can
    miss every witness (the window itself is exponential in the input -
    consistent with Theorem 1; nothing polynomial would do).
    """
    structure = reduction_structure(instance, system)
    if window_months is None:
        from math import gcd

        lcm = 1
        for number in instance.numbers:
            lcm = lcm * number // gcd(lcm, number)
        window_months = lcm + 2 * sum(instance.numbers) + instance.target + 24
    window_seconds = window_months * 31 * SECONDS_PER_DAY
    report: ConsistencyReport = check_consistency_exact(
        structure, system, window_seconds=window_seconds, max_nodes=max_nodes
    )
    subset = None
    if report.consistent and report.witness is not None:
        subset = decode_witness(instance, system, report.witness)
    return ReductionOutcome(
        instance=instance,
        consistent=report.consistent,
        completed=report.completed,
        witness_subset=subset,
        nodes_explored=report.nodes_explored,
    )


def decode_witness(
    instance: SubsetSumInstance,
    system: GranularitySystem,
    witness: Dict[str, int],
) -> List[int]:
    """Recover the chosen subset from a consistency witness.

    Index ``i`` is in the subset iff ``X_{i+1}`` sits ``n_i`` months
    after ``X_i`` (rather than 0).
    """
    mo = system.get("month")
    chosen = []
    for i, number in enumerate(instance.numbers, start=1):
        t_a = witness["X%d" % i]
        t_b = witness["X%d" % (i + 1)]
        distance = mo.distance(t_a, t_b)
        if distance == number:
            chosen.append(i - 1)
        elif distance != 0:
            raise AssertionError(
                "gadget violated: X%d -> X%d is %r months, expected 0 or %d"
                % (i, i + 1, distance, number)
            )
    return chosen
