"""NP-hardness machinery (paper Theorem 1, appendix A.2)."""

from .subset_sum import (
    ReductionOutcome,
    SubsetSumInstance,
    crt_compatible_subset_exists,
    decide_via_reduction,
    decode_witness,
    has_subset_sum,
    reduction_structure,
    solve_subset_sum,
    subset_congruences_solvable,
)

__all__ = [
    "SubsetSumInstance",
    "has_subset_sum",
    "solve_subset_sum",
    "reduction_structure",
    "decide_via_reduction",
    "decode_witness",
    "ReductionOutcome",
    "crt_compatible_subset_exists",
    "subset_congruences_solvable",
]
