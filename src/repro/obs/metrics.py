"""Named counters, gauges and histograms with a process-wide registry.

The design follows the Prometheus data model closely enough that the
text exporter in :mod:`repro.obs.export` is a direct serialisation:

* metric *names* follow ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
* a metric may carry a frozen set of *labels* (``kind="full"``); all
  children with the same name share one kind and one HELP string;
* :class:`Counter` only goes up, :class:`Gauge` goes anywhere,
  :class:`Histogram` keeps count/sum/min/max plus a bounded window of
  recent observations for quantile estimates.

Updates are guarded by a per-metric lock (counters are incremented from
the streaming path, which users may drive from several threads) and
checked against the global :data:`~repro.obs.runtime.STATE` switch
first, so ``REPRO_OBS=off`` reduces every update to one attribute read
and a branch.

Callback metrics (:meth:`MetricsRegistry.counter_callback` /
:meth:`MetricsRegistry.gauge_callback`) read their value from a
function at export time instead of being pushed to - the conversion
cache uses them so its hot path pays nothing for the mirror.
"""

from __future__ import annotations

import re
import threading
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .runtime import STATE
from .trace import current_context

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Frozen, sorted label items - the registry key component.
LabelItems = Tuple[Tuple[str, str], ...]

Number = Union[int, float]


def normalize_labels(
    labels: Optional[Mapping[str, object]]
) -> LabelItems:
    """Sorted, stringified label items; validates label names."""
    if not labels:
        return ()
    items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    for key, _ in items:
        if not _LABEL_RE.match(key):
            raise ValueError("invalid label name %r" % key)
    return items


def sample_name(name: str, labels: LabelItems) -> str:
    """``name{k="v",...}`` - the flat key used in snapshots."""
    if not labels:
        return name
    inner = ",".join('%s="%s"' % (k, v) for k, v in labels)
    return "%s{%s}" % (name, inner)


_SAMPLE_RE = re.compile(r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
                        r'(?:\{(?P<labels>.*)\})?$')
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def parse_sample_name(sample: str) -> Tuple[str, LabelItems]:
    """Invert :func:`sample_name`: ``name{k="v"}`` -> (name, items).

    Raises ValueError on strings that no snapshot could have produced.
    """
    match = _SAMPLE_RE.match(sample)
    if match is None:
        raise ValueError("unparseable sample name %r" % sample)
    raw = match.group("labels")
    if not raw:
        return match.group("name"), ()
    items = tuple(_LABEL_PAIR_RE.findall(raw))
    if not items:
        raise ValueError("unparseable labels in sample %r" % sample)
    return match.group("name"), items


class Metric:
    """Base: a named, optionally labelled instrument."""

    kind = "untyped"

    __slots__ = ("name", "help", "labels", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelItems = (),
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % name)
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()

    def value(self) -> object:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(%r)" % (type(self).__name__, sample_name(
            self.name, self.labels
        ))


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    __slots__ = ("_value",)

    def __init__(self, name, help="", labels=()):
        super().__init__(name, help, labels)
        self._value = 0

    def add(self, amount: Number = 1) -> None:
        """Increase by ``amount`` (>= 0); a no-op when obs is off."""
        if not STATE.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % (amount,))
        with self._lock:
            self._value += amount

    def inc(self) -> None:
        self.add(1)

    def value(self) -> Number:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge(Metric):
    """A value that can go up and down (depths, lags, sizes)."""

    kind = "gauge"

    __slots__ = ("_value",)

    def __init__(self, name, help="", labels=()):
        super().__init__(name, help, labels)
        self._value = 0

    def set(self, value: Number) -> None:
        if not STATE.enabled:
            return
        self._value = value

    def add(self, amount: Number = 1) -> None:
        if not STATE.enabled:
            return
        with self._lock:
            self._value += amount

    def value(self) -> Number:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Histogram(Metric):
    """Count/sum/min/max plus a bounded window for quantiles.

    The window keeps the most recent ``max_window`` observations
    (FIFO), so quantiles are *recent-window* estimates - exact while
    fewer than ``max_window`` values were observed, which covers every
    use in this codebase.  ``quantile(q)`` interpolates linearly
    between order statistics (the same convention as
    ``statistics.quantiles(..., method='inclusive')``).
    """

    kind = "histogram"

    __slots__ = ("_count", "_sum", "_min", "_max", "_window", "max_window",
                 "_exemplar")

    def __init__(self, name, help="", labels=(), max_window: int = 1024):
        super().__init__(name, help, labels)
        if max_window < 1:
            raise ValueError("max_window must be >= 1")
        self.max_window = max_window
        self._count = 0
        self._sum = 0.0
        self._min: Optional[Number] = None
        self._max: Optional[Number] = None
        self._window: List[Number] = []
        self._exemplar: Optional[Tuple[str, str, float]] = None

    def observe(self, value: Number) -> None:
        if not STATE.enabled:
            return
        context = current_context()
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._window.append(value)
            if len(self._window) > self.max_window:
                del self._window[0]
            if context is not None:
                self._exemplar = (
                    context.trace_id, context.span_id, float(value)
                )

    @property
    def exemplar(self) -> Optional[Tuple[str, str, float]]:
        """``(trace_id, span_id, value)`` of the latest traced
        observation - the OpenMetrics exemplar the text exporter
        appends to ``_count``, linking a fat bucket to its trace."""
        return self._exemplar

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Linear-interpolated ``q``-quantile of the recent window.

        ``q`` must lie in [0, 1]; returns None with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            window = sorted(self._window)
        if not window:
            return None
        if len(window) == 1:
            return float(window[0])
        position = q * (len(window) - 1)
        lower = int(position)
        upper = min(lower + 1, len(window) - 1)
        fraction = position - lower
        return float(
            window[lower] + (window[upper] - window[lower]) * fraction
        )

    def value(self) -> Dict[str, object]:
        """JSON-friendly summary (the snapshot form)."""
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }

    def reset(self) -> None:
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None
            self._window = []
            self._exemplar = None


class CallbackMetric(Metric):
    """A counter/gauge whose value is computed at read time."""

    __slots__ = ("_fn", "_kind")

    def __init__(self, name, fn: Callable[[], Number], kind: str,
                 help="", labels=()):
        super().__init__(name, help, labels)
        self._fn = fn
        self._kind = kind

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self._kind

    def value(self) -> Number:
        return self._fn()

    def reset(self) -> None:
        """Callback metrics mirror external state; nothing to reset."""


class MetricsRegistry:
    """A named collection of metrics (one per ``(name, labels)``).

    ``counter``/``gauge``/``histogram`` are get-or-create: calling the
    same name twice returns the same instance, and asking for a name
    already registered with a different kind raises ValueError.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, name, kind, labels, factory) -> Metric:
        key = (name, normalize_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        "metric %r already registered as %s, not %s"
                        % (name, existing.kind, kind)
                    )
                return existing
            registered_kind = self._kinds.get(name)
            if registered_kind is not None and registered_kind != kind:
                raise ValueError(
                    "metric family %r already registered as %s, not %s"
                    % (name, registered_kind, kind)
                )
            metric = factory(key[1])
            self._metrics[key] = metric
            self._kinds[name] = kind
            return metric

    def counter(self, name, help="", labels=None) -> Counter:
        return self._get_or_create(
            name, "counter", labels,
            lambda items: Counter(name, help, items),
        )

    def gauge(self, name, help="", labels=None) -> Gauge:
        return self._get_or_create(
            name, "gauge", labels,
            lambda items: Gauge(name, help, items),
        )

    def histogram(
        self, name, help="", labels=None, max_window: int = 1024
    ) -> Histogram:
        return self._get_or_create(
            name, "histogram", labels,
            lambda items: Histogram(name, help, items, max_window),
        )

    def counter_callback(
        self, name, fn: Callable[[], Number], help="", labels=None
    ) -> CallbackMetric:
        return self._get_or_create(
            name, "counter", labels,
            lambda items: CallbackMetric(name, fn, "counter", help, items),
        )

    def gauge_callback(
        self, name, fn: Callable[[], Number], help="", labels=None
    ) -> CallbackMetric:
        return self._get_or_create(
            name, "gauge", labels,
            lambda items: CallbackMetric(name, fn, "gauge", help, items),
        )

    # ------------------------------------------------------------------
    def get(self, name, labels=None) -> Optional[Metric]:
        """The registered metric, or None."""
        return self._metrics.get((name, normalize_labels(labels)))

    def metrics(self) -> List[Metric]:
        """Every registered metric, ordered by (name, labels)."""
        with self._lock:
            values = list(self._metrics.items())
        return [metric for _, metric in sorted(values, key=lambda kv: kv[0])]

    def snapshot(self) -> Dict[str, object]:
        """Flat ``{"name{labels}": value}`` mapping (JSON-friendly)."""
        return {
            sample_name(metric.name, metric.labels): metric.value()
            for metric in self.metrics()
        }

    def reset(self) -> None:
        """Zero every metric (test-isolation hook; keeps registrations)."""
        for metric in self.metrics():
            metric.reset()

    def merge_counter_deltas(
        self, deltas: Mapping[str, Number]
    ) -> Dict[str, Number]:
        """Fold counter deltas from another process into this registry.

        ``deltas`` is the :func:`counter_deltas` of two snapshots taken
        around a region of work in a *worker* process; merging them here
        keeps the parent's counters exact under parallel execution.
        Only plain :class:`Counter` samples participate: callback
        counters mirror external state (their sources are merged
        separately), gauges describe a single process, and negative
        deltas cannot belong to a counter.  Returns the samples
        actually applied.
        """
        applied: Dict[str, Number] = {}
        for sample, delta in deltas.items():
            if not isinstance(delta, (int, float)) or delta <= 0:
                continue
            try:
                name, items = parse_sample_name(sample)
            except ValueError:
                continue
            metric = self._metrics.get((name, items))
            if metric is None:
                registered = self._kinds.get(name)
                if registered not in (None, "counter"):
                    continue
                metric = self.counter(name, labels=dict(items))
            if type(metric) is not Counter:
                continue
            metric.add(delta)
            applied[sample] = delta
        return applied

    def __len__(self) -> int:
        return len(self._metrics)


#: The process-wide registry every instrumented layer shares.
_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-wide registry (exported by ``repro --metrics``)."""
    return _GLOBAL


def counter(name, help="", labels=None) -> Counter:
    """Get-or-create a counter in the global registry."""
    return _GLOBAL.counter(name, help, labels)


def gauge(name, help="", labels=None) -> Gauge:
    """Get-or-create a gauge in the global registry."""
    return _GLOBAL.gauge(name, help, labels)


def histogram(name, help="", labels=None, max_window: int = 1024) -> Histogram:
    """Get-or-create a histogram in the global registry."""
    return _GLOBAL.histogram(name, help, labels, max_window)


def counter_deltas(
    before: Mapping[str, object], after: Mapping[str, object]
) -> Dict[str, Number]:
    """Numeric differences between two registry snapshots.

    Only plain-number samples (counters/gauges) participate; histogram
    summaries are skipped.  Samples absent from ``before`` count from
    zero; unchanged samples are omitted.
    """
    deltas: Dict[str, Number] = {}
    for key, value in after.items():
        if not isinstance(value, (int, float)):
            continue
        previous = before.get(key, 0)
        if not isinstance(previous, (int, float)):
            continue
        if value != previous:
            deltas[key] = value - previous
    return deltas
