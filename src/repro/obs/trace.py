"""Hierarchical spans with monotonic timings and trace identity.

A :class:`Tracer` collects a tree of :class:`Span` records.  Code is
instrumented with the :func:`span` context manager::

    with span("propagate", engine="numpy"):
        with span("stp.close", granularity="day", kind="full"):
            ...

``span()`` is engineered to cost almost nothing when nobody is
listening: without an active tracer (or with ``REPRO_OBS=off``) it
returns a shared no-op context manager - one thread-local read and a
branch.  Tracers are activated per thread with :func:`activate_tracer`
(a context manager), so concurrent pipelines trace independently.

Spans survive exceptions: the ``with`` block re-raises, but the span is
closed with ``status="error"`` and the exception type recorded, so a
trace of a failed run shows *where* it failed.

Every span carries OpenTelemetry-style identity: a 128-bit ``trace_id``
shared by the whole request, its own 64-bit ``span_id``, and the
``span_id`` of its parent (None for roots without a remote parent).  A
:class:`TraceContext` is the compact (trace_id, span_id) pair handed
across process and task boundaries - the parallel engine ships one to
its fork workers and the detection service pins one per tenant - so
:meth:`Tracer.attach` can re-parent foreign spans under the span that
caused them: one request, one tree.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional

from .runtime import STATE

#: Trace payload format version (bump when the JSON layout changes).
#: v2 added ``trace_id``/``span_id``/``parent_id`` on every span and
#: ``trace_id`` on the payload envelope; readers accept v1 files too.
TRACE_SCHEMA_VERSION = 2

_local = threading.local()

#: Tracers by owning thread id - the sampling profiler reads this from
#: its own thread to attribute stacks to the victim thread's open span.
#: Maintained by :class:`activate_tracer`; plain dict ops are atomic
#: under the GIL, which is all the (lossy, read-only) profiler needs.
_ACTIVE_TRACERS: Dict[int, "Tracer"] = {}


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


class TraceContext:
    """The compact identity pair carried across execution boundaries.

    Immutable value object: which trace we are in and which span is the
    caller.  Cheap to pickle into fork workers, to stash on a service
    session, or to flatten into a string header (:meth:`to_header`).
    """

    __slots__ = ("trace_id", "span_id")

    _HEADER_PREFIX = "repro1"

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TraceContext(%r, %r)" % (self.trace_id, self.span_id)

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceContext":
        return cls(str(payload["trace_id"]), str(payload["span_id"]))

    def to_header(self) -> str:
        """``repro1-<trace_id>-<span_id>`` - one propagation string."""
        return "%s-%s-%s" % (self._HEADER_PREFIX, self.trace_id,
                             self.span_id)

    @classmethod
    def from_header(cls, header: str) -> "TraceContext":
        """Parse :meth:`to_header` output; raises ValueError otherwise."""
        parts = header.strip().split("-")
        if (
            len(parts) != 3
            or parts[0] != cls._HEADER_PREFIX
            or len(parts[1]) != 32
            or len(parts[2]) != 16
        ):
            raise ValueError("malformed trace header %r" % (header,))
        for chunk in parts[1:]:
            int(chunk, 16)  # raises ValueError on non-hex
        return cls(parts[1], parts[2])


class Span:
    """One timed region: identity, name, attributes, duration, children."""

    __slots__ = ("name", "attributes", "start_ns", "end_ns", "status",
                 "children", "trace_id", "span_id", "parent_id")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.start_ns: int = 0
        self.end_ns: Optional[int] = None
        self.status = "ok"
        self.children: List["Span"] = []
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None

    def set(self, **attributes: Any) -> None:
        """Attach attributes after the span opened."""
        self.attributes.update(attributes)

    @property
    def duration_ns(self) -> Optional[int]:
        """Elapsed monotonic nanoseconds (None while still open)."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    @property
    def duration_seconds(self) -> Optional[float]:
        duration = self.duration_ns
        return duration / 1e9 if duration is not None else None

    def context(self) -> Optional[TraceContext]:
        """This span's identity as a propagatable pair (None pre-open)."""
        if self.trace_id is None or self.span_id is None:
            return None
        return TraceContext(self.trace_id, self.span_id)

    def total_spans(self) -> int:
        """This span plus all descendants."""
        return 1 + sum(child.total_spans() for child in self.children)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (attributes are stringified defensively)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attributes": {
                key: value
                if isinstance(value, (str, int, float, bool, type(None)))
                else str(value)
                for key, value in self.attributes.items()
            },
            "duration_ns": self.duration_ns,
            "status": self.status,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a closed span from its :meth:`to_dict` form.

        Used to graft spans recorded in a *different* process (the
        parallel mining workers serialise their local trace and the
        parent re-attaches it under ``mine.scan``).  Start offsets are
        not preserved across processes - only durations are meaningful
        - so the rebuilt span starts at 0.  Schema-1 payloads carry no
        ids; they stay None until :meth:`Tracer.attach` adopts them.
        """
        span_ = cls(str(payload.get("name", "?")),
                    payload.get("attributes") or {})
        duration = payload.get("duration_ns")
        span_.start_ns = 0
        span_.end_ns = int(duration) if duration is not None else 0
        span_.status = str(payload.get("status", "ok"))
        span_.trace_id = payload.get("trace_id")
        span_.span_id = payload.get("span_id")
        span_.parent_id = payload.get("parent_id")
        span_.children = [
            cls.from_dict(child) for child in payload.get("children", ())
        ]
        return span_

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Span(%r, children=%d)" % (self.name, len(self.children))


class Tracer:
    """Collects a forest of spans for one traced region of work.

    Not thread-safe by itself: activate one tracer per thread (the
    usual shape - ``repro --trace`` activates one around the whole CLI
    command).

    ``parent`` carries a remote :class:`TraceContext` into the tracer:
    worker processes build ``Tracer(parent=ctx)`` so their root spans
    share the originating trace_id and point their ``parent_id`` at the
    span that forked them.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        parent: Optional[TraceContext] = None,
    ) -> None:
        if trace_id is None and parent is not None:
            trace_id = parent.trace_id
        self.trace_id: str = trace_id or new_trace_id()
        self.parent_id: Optional[str] = (
            parent.span_id if parent is not None else None
        )
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._by_id: Dict[str, Span] = {}

    def open_span(self, name: str, attributes=None,
                  parent: Optional[TraceContext] = None) -> Span:
        """Open a child of the innermost open span (or a new root).

        An explicit ``parent`` context overrides the stack: when it
        names a span already in this tracer, the new span files under
        it structurally (the detection service uses this to hang
        ``service.route`` under the tenant's originating span even
        though drains happen later, from the event loop).
        """
        span_ = Span(name, attributes)
        span_.trace_id = self.trace_id
        span_.span_id = new_span_id()
        anchor: Optional[Span] = None
        if parent is not None and parent.trace_id == self.trace_id:
            anchor = self._by_id.get(parent.span_id)
        if anchor is None and self._stack:
            anchor = self._stack[-1]
        if anchor is not None:
            span_.parent_id = anchor.span_id
            anchor.children.append(span_)
        else:
            span_.parent_id = self.parent_id
            self.roots.append(span_)
        self._by_id[span_.span_id] = span_
        self._stack.append(span_)
        span_.start_ns = time.perf_counter_ns()
        return span_

    def close_span(self, span_: Span) -> None:
        span_.end_ns = time.perf_counter_ns()
        if self._stack and self._stack[-1] is span_:
            self._stack.pop()
        elif span_ in self._stack:  # pragma: no cover - defensive
            # Mis-nested exit: unwind to (and including) the span.
            while self._stack:
                if self._stack.pop() is span_:
                    break
        if STATE.enabled:
            recorder = _RECORDER_HOOK
            if recorder is not None and recorder.active:
                recorder.record(span_)

    def current_span(self) -> Optional[Span]:
        """The innermost open span, or None (safe from other threads)."""
        stack = self._stack
        try:
            return stack[-1]
        except IndexError:
            return None

    def context(self) -> Optional[TraceContext]:
        """The innermost open span's identity (None when nothing open)."""
        top = self.current_span()
        return top.context() if top is not None else None

    def attach(self, span_: Span) -> None:
        """Graft an already-closed span into this tracer's tree.

        When the foreign span carries this trace's id and a
        ``parent_id`` naming one of our spans, it files under that
        exact span - the parallel engine's workers inherit a
        :class:`TraceContext` so their merged trees land back under
        ``mine.scan``.  Otherwise it falls back to the innermost open
        span (or becomes a root) and is adopted into this trace: ids
        restamped where missing, parent links rewritten to fit.
        """
        anchor: Optional[Span] = None
        if span_.parent_id is not None and span_.trace_id == self.trace_id:
            anchor = self._by_id.get(span_.parent_id)
        if anchor is None and self._stack:
            anchor = self._stack[-1]
        self._adopt(span_, anchor.span_id if anchor is not None
                    else self.parent_id)
        if anchor is not None:
            anchor.children.append(span_)
        else:
            self.roots.append(span_)

    def _adopt(self, span_: Span, parent_id: Optional[str]) -> None:
        """Restamp a foreign subtree into this trace and index it."""
        span_.trace_id = self.trace_id
        if span_.span_id is None:
            span_.span_id = new_span_id()
        span_.parent_id = parent_id
        self._by_id[span_.span_id] = span_
        for child in span_.children:
            self._adopt(child, span_.span_id)

    def total_spans(self) -> int:
        return sum(root.total_spans() for root in self.roots)

    def to_dict(self) -> Dict[str, Any]:
        """The ``--trace`` JSON payload."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "spans": [root.to_dict() for root in self.roots],
        }


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------
def current_tracer() -> Optional[Tracer]:
    """The tracer active on this thread, or None."""
    return getattr(_local, "tracer", None)


def current_context() -> Optional[TraceContext]:
    """The innermost open span's identity on this thread, or None.

    This is the value to capture before crossing an execution boundary
    (fork pool, asyncio task, queue) and to pass back in as an explicit
    parent - histogram exemplars also read it at observe time.
    """
    tracer = getattr(_local, "tracer", None)
    if tracer is None or not STATE.enabled:
        return None
    return tracer.context()


def active_tracer_for(thread_id: int) -> Optional[Tracer]:
    """The tracer activated on another thread (profiler support)."""
    return _ACTIVE_TRACERS.get(thread_id)


class activate_tracer:
    """Context manager installing a tracer on the current thread::

        tracer = Tracer()
        with activate_tracer(tracer):
            run_pipeline()
        print(format_span_tree(tracer.to_dict()))
    """

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = getattr(_local, "tracer", None)
        _local.tracer = self.tracer
        _ACTIVE_TRACERS[threading.get_ident()] = self.tracer
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _local.tracer = self._previous
        ident = threading.get_ident()
        if self._previous is not None:
            _ACTIVE_TRACERS[ident] = self._previous
        else:
            _ACTIVE_TRACERS.pop(ident, None)
        return False


# ----------------------------------------------------------------------
# The span() entry point
# ----------------------------------------------------------------------
class _NoopSpan:
    """Shared do-nothing span handed out when nobody is tracing."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        pass

    @property
    def attributes(self) -> Dict[str, Any]:
        return {}

    def context(self) -> None:
        return None


class _NoopSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()
_NOOP = _NoopSpanContext()


class _LiveSpanContext:
    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_parent")

    def __init__(self, tracer: Tracer, name: str, attributes,
                 parent: Optional[TraceContext] = None):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None
        self._parent = parent

    def __enter__(self) -> Span:
        self._span = self._tracer.open_span(
            self._name, self._attributes, parent=self._parent
        )
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span_ = self._span
        if span_ is not None:
            if exc_type is not None:
                span_.status = "error"
                span_.attributes.setdefault(
                    "exception", exc_type.__name__
                )
            self._tracer.close_span(span_)
        return False  # never swallow


def span(name: str, **attributes: Any):
    """Open a span on the active tracer (no-op when none is active)."""
    tracer = getattr(_local, "tracer", None)
    if tracer is None or not STATE.enabled:
        return _NOOP
    return _LiveSpanContext(tracer, name, attributes)


def linked_span(name: str, context: Optional[TraceContext],
                **attributes: Any):
    """Like :func:`span` but parented at an explicit :class:`TraceContext`.

    The context must name a span inside the active tracer to take
    effect (a foreign or None context degrades to plain :func:`span`).
    Use it where the causal parent is not the innermost open span: the
    detection service routes each tenant drain under the span that
    first submitted that tenant's events.
    """
    tracer = getattr(_local, "tracer", None)
    if tracer is None or not STATE.enabled:
        return _NOOP
    return _LiveSpanContext(tracer, name, attributes, parent=context)


# ----------------------------------------------------------------------
# Flight-recorder hook
# ----------------------------------------------------------------------
#: Set by repro.obs.recorder at import; close_span feeds it every
#: completed span.  A module attribute (not an import) keeps this file
#: free of cycles and lets tests stub the hook.
_RECORDER_HOOK = None


def _install_recorder(recorder) -> None:
    global _RECORDER_HOOK
    _RECORDER_HOOK = recorder
