"""Hierarchical spans with monotonic timings.

A :class:`Tracer` collects a tree of :class:`Span` records.  Code is
instrumented with the :func:`span` context manager::

    with span("propagate", engine="numpy"):
        with span("stp.close", granularity="day", kind="full"):
            ...

``span()`` is engineered to cost almost nothing when nobody is
listening: without an active tracer (or with ``REPRO_OBS=off``) it
returns a shared no-op context manager - one thread-local read and a
branch.  Tracers are activated per thread with :func:`activate_tracer`
(a context manager), so concurrent pipelines trace independently.

Spans survive exceptions: the ``with`` block re-raises, but the span is
closed with ``status="error"`` and the exception type recorded, so a
trace of a failed run shows *where* it failed.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from .runtime import STATE

#: Trace payload format version (bump when the JSON layout changes).
TRACE_SCHEMA_VERSION = 1

_local = threading.local()


class Span:
    """One timed region: name, attributes, duration, children."""

    __slots__ = ("name", "attributes", "start_ns", "end_ns", "status",
                 "children")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.start_ns: int = 0
        self.end_ns: Optional[int] = None
        self.status = "ok"
        self.children: List["Span"] = []

    def set(self, **attributes: Any) -> None:
        """Attach attributes after the span opened."""
        self.attributes.update(attributes)

    @property
    def duration_ns(self) -> Optional[int]:
        """Elapsed monotonic nanoseconds (None while still open)."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    @property
    def duration_seconds(self) -> Optional[float]:
        duration = self.duration_ns
        return duration / 1e9 if duration is not None else None

    def total_spans(self) -> int:
        """This span plus all descendants."""
        return 1 + sum(child.total_spans() for child in self.children)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (attributes are stringified defensively)."""
        return {
            "name": self.name,
            "attributes": {
                key: value
                if isinstance(value, (str, int, float, bool, type(None)))
                else str(value)
                for key, value in self.attributes.items()
            },
            "duration_ns": self.duration_ns,
            "status": self.status,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a closed span from its :meth:`to_dict` form.

        Used to graft spans recorded in a *different* process (the
        parallel mining workers serialise their local trace and the
        parent re-attaches it under ``mine.scan``).  Start offsets are
        not preserved across processes - only durations are meaningful
        - so the rebuilt span starts at 0.
        """
        span_ = cls(str(payload.get("name", "?")),
                    payload.get("attributes") or {})
        duration = payload.get("duration_ns")
        span_.start_ns = 0
        span_.end_ns = int(duration) if duration is not None else 0
        span_.status = str(payload.get("status", "ok"))
        span_.children = [
            cls.from_dict(child) for child in payload.get("children", ())
        ]
        return span_

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Span(%r, children=%d)" % (self.name, len(self.children))


class Tracer:
    """Collects a forest of spans for one traced region of work.

    Not thread-safe by itself: activate one tracer per thread (the
    usual shape - ``repro --trace`` activates one around the whole CLI
    command).
    """

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def open_span(self, name: str, attributes=None) -> Span:
        span_ = Span(name, attributes)
        if self._stack:
            self._stack[-1].children.append(span_)
        else:
            self.roots.append(span_)
        self._stack.append(span_)
        span_.start_ns = time.perf_counter_ns()
        return span_

    def close_span(self, span_: Span) -> None:
        span_.end_ns = time.perf_counter_ns()
        if self._stack and self._stack[-1] is span_:
            self._stack.pop()
        elif span_ in self._stack:  # pragma: no cover - defensive
            # Mis-nested exit: unwind to (and including) the span.
            while self._stack:
                if self._stack.pop() is span_:
                    break

    def attach(self, span_: Span) -> None:
        """Graft an already-closed span under the innermost open span
        (or as a new root when nothing is open).

        The parallel engine uses this to nest worker-recorded spans
        under the parent's ``mine.scan`` span.
        """
        if self._stack:
            self._stack[-1].children.append(span_)
        else:
            self.roots.append(span_)

    def total_spans(self) -> int:
        return sum(root.total_spans() for root in self.roots)

    def to_dict(self) -> Dict[str, Any]:
        """The ``--trace`` JSON payload."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "spans": [root.to_dict() for root in self.roots],
        }


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------
def current_tracer() -> Optional[Tracer]:
    """The tracer active on this thread, or None."""
    return getattr(_local, "tracer", None)


class activate_tracer:
    """Context manager installing a tracer on the current thread::

        tracer = Tracer()
        with activate_tracer(tracer):
            run_pipeline()
        print(format_span_tree(tracer.to_dict()))
    """

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = getattr(_local, "tracer", None)
        _local.tracer = self.tracer
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _local.tracer = self._previous
        return False


# ----------------------------------------------------------------------
# The span() entry point
# ----------------------------------------------------------------------
class _NoopSpan:
    """Shared do-nothing span handed out when nobody is tracing."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        pass

    @property
    def attributes(self) -> Dict[str, Any]:
        return {}


class _NoopSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()
_NOOP = _NoopSpanContext()


class _LiveSpanContext:
    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: Tracer, name: str, attributes):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer.open_span(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span_ = self._span
        if span_ is not None:
            if exc_type is not None:
                span_.status = "error"
                span_.attributes.setdefault(
                    "exception", exc_type.__name__
                )
            self._tracer.close_span(span_)
        return False  # never swallow


def span(name: str, **attributes: Any):
    """Open a span on the active tracer (no-op when none is active)."""
    tracer = getattr(_local, "tracer", None)
    if tracer is None or not STATE.enabled:
        return _NOOP
    return _LiveSpanContext(tracer, name, attributes)
