"""Flight recorder: a bounded ring buffer of completed spans.

A production "black box": every span closed while a tracer is active
is appended (flattened, without children) to a fixed-size ring, and
spans matching a *trigger* - error status, or duration at or above
``REPRO_OBS_SLOW_MS`` milliseconds - are copied into a second ring
that survives being scrolled past.  :meth:`FlightRecorder.dump`
persists both rings as schema-versioned JSON; the detection service
calls it when a circuit breaker trips, and chaos tests call it on
injected faults, so a post-mortem always has the last spans that led
up to the incident.

Default-on (the ring append is a dict build plus a deque append,
covered by the overhead guard in ``tests/obs/test_overhead.py``);
``REPRO_OBS_RECORDER=off`` (or ``0``) disables it, any other integer
value resizes the ring.  The recorder holds no references to live
span trees - records are flat copies - so retaining the ring never
pins a trace in memory.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from . import runtime
from .runtime import _OFF_VALUES

#: Flight-dump payload format version (bump when the layout changes).
RECORDER_SCHEMA_VERSION = 1

#: Ring capacity when ``REPRO_OBS_RECORDER`` is unset.
DEFAULT_CAPACITY = 256

#: Slow-span trigger threshold when ``REPRO_OBS_SLOW_MS`` is unset.
DEFAULT_SLOW_MS = 250.0


def recorder_capacity() -> int:
    """Ring size from ``REPRO_OBS_RECORDER`` (0 disables)."""
    value = os.environ.get("REPRO_OBS_RECORDER", "").strip().lower()
    if not value:
        return DEFAULT_CAPACITY
    if value in _OFF_VALUES:
        return 0
    try:
        return max(0, int(value))
    except ValueError:
        return DEFAULT_CAPACITY


def slow_threshold_ms() -> float:
    """Slow-span trigger from ``REPRO_OBS_SLOW_MS`` (milliseconds)."""
    value = os.environ.get("REPRO_OBS_SLOW_MS", "").strip()
    if not value:
        return DEFAULT_SLOW_MS
    try:
        return max(0.0, float(value))
    except ValueError:
        return DEFAULT_SLOW_MS


def _flatten(span_) -> Dict[str, Any]:
    """A flat, JSON-safe record of one completed span (no children)."""
    attributes = getattr(span_, "attributes", None) or {}
    return {
        "name": span_.name,
        "trace_id": span_.trace_id,
        "span_id": span_.span_id,
        "parent_id": span_.parent_id,
        "duration_ns": span_.duration_ns,
        "status": span_.status,
        "attributes": {
            key: value
            if isinstance(value, (str, int, float, bool, type(None)))
            else str(value)
            for key, value in attributes.items()
        },
        "ended_at": time.time(),
    }


class FlightRecorder:
    """Bounded ring of recent spans plus a ring of triggered captures.

    ``record`` is called by ``Tracer.close_span`` for every completed
    span; ``note`` injects a synthetic record directly (the service
    uses it for rejected events, so error evidence lands in the ring
    even when nobody is tracing).  Thread-safe; both rings share one
    capacity.
    """

    def __init__(self, capacity: Optional[int] = None,
                 slow_ms: Optional[float] = None) -> None:
        self.configure(capacity=capacity, slow_ms=slow_ms)
        self.recorded = 0
        self.triggered = 0
        self.dumps = 0
        self._lock = threading.Lock()

    def configure(self, capacity: Optional[int] = None,
                  slow_ms: Optional[float] = None) -> None:
        """(Re)size the rings / set the slow trigger.

        ``None`` re-reads the environment; resizing clears both rings.
        """
        self.capacity = (recorder_capacity() if capacity is None
                         else max(0, int(capacity)))
        self.slow_ms = (slow_threshold_ms() if slow_ms is None
                        else max(0.0, float(slow_ms)))
        self.active = self.capacity > 0
        size = max(1, self.capacity)
        self._recent: deque = deque(maxlen=size)
        self._captured: deque = deque(maxlen=size)

    # ------------------------------------------------------------------
    def _trigger(self, record: Dict[str, Any]) -> Optional[str]:
        if record["status"] == "error":
            return "error"
        duration = record.get("duration_ns")
        if duration is not None and duration >= self.slow_ms * 1e6:
            return "slow"
        return None

    def record(self, span_) -> None:
        """Ring-append one completed span; capture it when triggered."""
        if not self.active or not runtime.STATE.enabled:
            return
        record = _flatten(span_)
        trigger = self._trigger(record)
        with self._lock:
            self._recent.append(record)
            self.recorded += 1
            if trigger is not None:
                self._captured.append(dict(record, trigger=trigger))
                self.triggered += 1

    def note(self, name: str, status: str = "ok",
             **attributes: Any) -> None:
        """Inject a synthetic record (no span needed).

        Error-status notes hit the error trigger, so code on a cold
        path (event rejection, breaker trips) can leave evidence in
        the black box without requiring an active tracer.
        """
        if not self.active or not runtime.STATE.enabled:
            return
        record = {
            "name": name,
            "trace_id": None,
            "span_id": None,
            "parent_id": None,
            "duration_ns": None,
            "status": status,
            "attributes": {
                key: value
                if isinstance(value, (str, int, float, bool, type(None)))
                else str(value)
                for key, value in attributes.items()
            },
            "ended_at": time.time(),
        }
        trigger = self._trigger(record)
        with self._lock:
            self._recent.append(record)
            self.recorded += 1
            if trigger is not None:
                self._captured.append(dict(record, trigger=trigger))
                self.triggered += 1

    # ------------------------------------------------------------------
    def recent(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._recent)

    def captured(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._captured)

    def clear(self) -> None:
        """Empty both rings (counters keep their lifetime totals)."""
        with self._lock:
            self._recent.clear()
            self._captured.clear()

    def to_payload(self, reason: str = "manual") -> Dict[str, Any]:
        """The schema-versioned dump body."""
        with self._lock:
            recent = list(self._recent)
            captured = list(self._captured)
        return {
            "schema": RECORDER_SCHEMA_VERSION,
            "reason": reason,
            "created_at": time.time(),
            "capacity": self.capacity,
            "slow_ms": self.slow_ms,
            "recorded": self.recorded,
            "triggered": self.triggered,
            "captured": captured,
            "recent": recent,
        }

    def dump(self, path: Optional[str] = None,
             reason: str = "manual") -> Dict[str, Any]:
        """Snapshot both rings; write JSON when ``path`` is given."""
        payload = self.to_payload(reason)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        self.dumps += 1
        return payload


def load_flight_dump(path: str) -> Dict[str, Any]:
    """Read a flight dump back (validating the schema field)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != RECORDER_SCHEMA_VERSION:
        raise ValueError(
            "unsupported flight-dump schema %r in %s (expected %d)"
            % (payload.get("schema"), path, RECORDER_SCHEMA_VERSION)
        )
    return payload


#: The process-wide recorder Tracer.close_span feeds.
_RECORDER = FlightRecorder()


def global_recorder() -> FlightRecorder:
    """The process-wide flight recorder."""
    return _RECORDER


# Wire the close-span hook (kept as a module attribute in trace.py to
# avoid an import cycle).
from . import trace as _trace  # noqa: E402

_trace._install_recorder(_RECORDER)
