"""Sampling wall-clock profiler built on ``sys._current_frames()``.

A daemon thread wakes at a configurable rate, snapshots the Python
frames of the target thread(s), and folds each observed call stack
into a ``{"frame;frame;...;leaf": count}`` table - the collapsed-stack
format flamegraph tools consume directly (`repro obs flame` renders
it as text).  When the sampled thread has a tracer activated, the
stack is prefixed with ``span:<name>`` of its innermost open span, so
hot frames attribute to the pipeline stage that ran them.

Wall-clock sampling (not CPU): a thread blocked on a lock or a fork
join is sampled where it waits, which is exactly what a latency
investigation wants.  Pure stdlib, safe to leave running - sampling
never interrupts the target thread; it only *reads* frames from the
profiler thread, and a torn read at worst mis-files one sample.

``repro bench --profile-stacks`` and ``repro --profile-stacks``
(alongside ``--trace``) run one around the whole command and embed
:meth:`SamplingProfiler.to_dict` into the written payload.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, Iterable, Optional

from . import trace as _trace

#: Embedded profile payload format version.
PROFILE_SCHEMA_VERSION = 1

#: Sampling rate when the caller does not choose one.  A prime rate
#: avoids phase-locking with millisecond-periodic work.
DEFAULT_HZ = 97

#: Frames deeper than this are truncated (defensive; recursion).
_MAX_DEPTH = 128


def _fold_stack(frame, span_name: Optional[str]) -> str:
    """Root-first ``module:function`` frames joined with ';'."""
    names = []
    while frame is not None and len(names) < _MAX_DEPTH:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        names.append("%s:%s" % (module, code.co_name))
        frame = frame.f_back
    names.reverse()
    if span_name is not None:
        names.insert(0, "span:%s" % span_name)
    return ";".join(names)


class SamplingProfiler:
    """Periodic folded-stack sampler for one or more threads.

    By default profiles the thread that calls :meth:`start`.  Usable
    as a context manager::

        profiler = SamplingProfiler(hz=97)
        with profiler:
            run_workload()
        print(format_flame(profiler.folded()))
    """

    def __init__(self, hz: int = DEFAULT_HZ,
                 thread_ids: Optional[Iterable[int]] = None) -> None:
        if not 1 <= hz <= 1000:
            raise ValueError("hz must be within [1, 1000], got %r" % (hz,))
        self.hz = hz
        self.interval = 1.0 / hz
        self._thread_ids = set(thread_ids) if thread_ids is not None else None
        self._samples: Dict[str, int] = {}
        self._sample_count = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        if self._thread_ids is None:
            self._thread_ids = {threading.get_ident()}
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._sample_once(own)

    def _sample_once(self, own: int) -> None:
        frames = sys._current_frames()
        targets = self._thread_ids or frames.keys()
        for thread_id in targets:
            if thread_id == own:
                continue
            frame = frames.get(thread_id)
            if frame is None:
                continue
            span_name: Optional[str] = None
            tracer = _trace.active_tracer_for(thread_id)
            if tracer is not None:
                top = tracer.current_span()
                if top is not None:
                    span_name = top.name
            key = _fold_stack(frame, span_name)
            self._samples[key] = self._samples.get(key, 0) + 1
            self._sample_count += 1

    # ------------------------------------------------------------------
    @property
    def sample_count(self) -> int:
        return self._sample_count

    def folded(self) -> Dict[str, int]:
        """Collapsed stacks: ``{"a;b;leaf": count}`` (a copy)."""
        return dict(self._samples)

    def to_dict(self) -> Dict[str, object]:
        """The payload embedded under ``"profile_stacks"`` in
        trace/bench JSON."""
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "hz": self.hz,
            "sample_count": self._sample_count,
            "samples": dict(self._samples),
        }
