"""The observability on/off switch (``REPRO_OBS``).

Everything in :mod:`repro.obs` consults one process-wide flag.  The
default is *on*: counters and gauges are cheap enough to leave enabled
in production (the bound is enforced by the overhead-guard benchmark in
``tests/obs/test_overhead.py``).  Spans additionally require an active
:class:`~repro.obs.trace.Tracer`, so tracing costs nothing until a
caller opts in with ``repro --trace`` or :func:`~repro.obs.trace.
activate_tracer`.

Set the environment variable ``REPRO_OBS=off`` (also ``0``, ``false``,
``no``, ``disabled``) before the process starts to turn the whole layer
into a no-op; :func:`configure` flips the flag at run time (tests and
the overhead guard use it to A/B the same workload in one process).
"""

from __future__ import annotations

import os
from typing import Optional

_OFF_VALUES = ("off", "0", "false", "no", "disabled")


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_OBS", "on").strip().lower()
    return value not in _OFF_VALUES


class _ObsState:
    """Mutable holder so hot paths read one attribute, not a module
    global that could be rebound under them."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = _env_enabled()


#: The process-wide switch every metric and span consults.
STATE = _ObsState()


def obs_enabled() -> bool:
    """Is the observability layer currently recording?"""
    return STATE.enabled


def configure(enabled: Optional[bool] = None) -> bool:
    """Set (or re-read) the process-wide switch; returns the new value.

    ``configure()`` with no argument re-reads ``REPRO_OBS`` from the
    environment - the hook tests use after monkeypatching the variable.
    """
    STATE.enabled = _env_enabled() if enabled is None else bool(enabled)
    return STATE.enabled
