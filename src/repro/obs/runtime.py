"""The observability on/off switch (``REPRO_OBS``).

Everything in :mod:`repro.obs` consults one process-wide flag.  The
default is *on*: counters and gauges are cheap enough to leave enabled
in production (the bound is enforced by the overhead-guard benchmark in
``tests/obs/test_overhead.py``).  Spans additionally require an active
:class:`~repro.obs.trace.Tracer`, so tracing costs nothing until a
caller opts in with ``repro --trace`` or :func:`~repro.obs.trace.
activate_tracer`.

Set the environment variable ``REPRO_OBS=off`` (also ``0``, ``false``,
``no``, ``disabled``) before the process starts to turn the whole layer
into a no-op; :func:`configure` flips the flag at run time (tests and
the overhead guard use it to A/B the same workload in one process).

``REPRO_OBS=debug`` keeps the layer on *and* arms the expensive
self-checks that are too slow for production: the event-store index
invariant verifier and the shard-planner soundness checks consult
:func:`obs_debug` before running.
"""

from __future__ import annotations

import os
from typing import Optional

_OFF_VALUES = ("off", "0", "false", "no", "disabled")
_DEBUG_VALUES = ("debug", "verify")


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_OBS", "on").strip().lower()
    return value not in _OFF_VALUES


def _env_debug() -> bool:
    value = os.environ.get("REPRO_OBS", "on").strip().lower()
    return value in _DEBUG_VALUES


class _ObsState:
    """Mutable holder so hot paths read one attribute, not a module
    global that could be rebound under them."""

    __slots__ = ("enabled", "debug")

    def __init__(self) -> None:
        self.enabled = _env_enabled()
        self.debug = _env_debug()


#: The process-wide switch every metric and span consults.
STATE = _ObsState()


def obs_enabled() -> bool:
    """Is the observability layer currently recording?"""
    return STATE.enabled


def obs_debug() -> bool:
    """Are the expensive debug self-checks armed (``REPRO_OBS=debug``)?"""
    return STATE.debug


def configure(
    enabled: Optional[bool] = None, debug: Optional[bool] = None
) -> bool:
    """Set (or re-read) the process-wide switch; returns the new value.

    ``configure()`` with no arguments re-reads ``REPRO_OBS`` from the
    environment - the hook tests use after monkeypatching the variable.
    ``debug`` arms the expensive invariant checks independently of the
    recording switch (debug implies enabled when read from the env).
    """
    if enabled is None and debug is None:
        STATE.enabled = _env_enabled()
        STATE.debug = _env_debug()
        return STATE.enabled
    if enabled is not None:
        STATE.enabled = bool(enabled)
        if not STATE.enabled:
            STATE.debug = False
    if debug is not None:
        STATE.debug = bool(debug)
    return STATE.enabled
