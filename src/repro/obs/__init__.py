"""repro.obs: zero-dependency tracing, metrics and profiling.

The observability layer the rest of the pipeline is instrumented with
(see docs/OBSERVABILITY.md for the span taxonomy and metric catalog):

* **spans** - ``with span("propagate", engine=...)`` context managers
  collected into a tree by a :class:`Tracer` activated per thread
  (:func:`activate_tracer`); a no-op unless someone is tracing;
* **metrics** - a process-wide :class:`MetricsRegistry` of named
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments,
  default-on and cheap (the overhead-guard benchmark bounds them);
* **exporters** - structured JSON traces (:func:`write_trace`), human
  tree summaries (:func:`format_span_tree`), and Prometheus text dumps
  (:func:`prometheus_text`, validated by :func:`lint_prometheus_text`).

``REPRO_OBS=off`` (or :func:`configure(enabled=False) <configure>`)
turns the whole layer into a no-op fast path; instrumented code keeps
returning bit-identical results either way (enforced by the
differential test in ``tests/obs/``).
"""

from .export import (
    format_span_tree,
    format_tree,
    lint_prometheus_text,
    load_trace,
    metrics_snapshot,
    prometheus_text,
    write_trace,
)
from .metrics import (
    CallbackMetric,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    counter_deltas,
    gauge,
    global_metrics,
    histogram,
    parse_sample_name,
    sample_name,
)
from .runtime import configure, obs_debug, obs_enabled
from .trace import (
    Span,
    Tracer,
    activate_tracer,
    current_tracer,
    span,
)

__all__ = [
    "configure",
    "obs_enabled",
    "obs_debug",
    "parse_sample_name",
    "Counter",
    "Gauge",
    "Histogram",
    "CallbackMetric",
    "MetricsRegistry",
    "global_metrics",
    "counter",
    "gauge",
    "histogram",
    "counter_deltas",
    "sample_name",
    "Span",
    "Tracer",
    "span",
    "activate_tracer",
    "current_tracer",
    "write_trace",
    "load_trace",
    "format_span_tree",
    "format_tree",
    "prometheus_text",
    "lint_prometheus_text",
    "metrics_snapshot",
]
