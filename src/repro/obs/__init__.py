"""repro.obs: zero-dependency tracing, metrics and profiling.

The observability layer the rest of the pipeline is instrumented with
(see docs/OBSERVABILITY.md for the span taxonomy and metric catalog):

* **spans** - ``with span("propagate", engine=...)`` context managers
  collected into a tree by a :class:`Tracer` activated per thread
  (:func:`activate_tracer`); a no-op unless someone is tracing; every
  span carries ``trace_id``/``span_id``/``parent_id``, and a
  :class:`TraceContext` crosses process and task boundaries so worker
  spans re-parent under the span that caused them;
* **metrics** - a process-wide :class:`MetricsRegistry` of named
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments,
  default-on and cheap (the overhead-guard benchmark bounds them);
  histograms keep a span-id exemplar linking fat buckets to traces;
* **flight recorder** - an always-on bounded ring of completed spans
  with error/slow trigger capture (:func:`global_recorder`), dumped as
  schema-versioned JSON on breaker trips and chaos faults;
* **profiler** - a stdlib sampling wall-clock profiler
  (:class:`SamplingProfiler`) emitting folded stacks attributed to the
  active span, rendered by :func:`format_flame`;
* **exporters** - structured JSON traces (:func:`write_trace`), human
  tree summaries (:func:`format_span_tree`), and Prometheus text dumps
  (:func:`prometheus_text`, validated by :func:`lint_prometheus_text`
  including OpenMetrics exemplars).

``REPRO_OBS=off`` (or :func:`configure(enabled=False) <configure>`)
turns the whole layer into a no-op fast path; instrumented code keeps
returning bit-identical results either way (enforced by the
differential test in ``tests/obs/``).
"""

from .export import (
    SUPPORTED_TRACE_SCHEMAS,
    format_flame,
    format_flame_summary,
    format_span_tree,
    format_tree,
    lint_prometheus_text,
    load_trace,
    metrics_snapshot,
    prometheus_text,
    write_trace,
)
from .metrics import (
    CallbackMetric,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    counter_deltas,
    gauge,
    global_metrics,
    histogram,
    parse_sample_name,
    sample_name,
)
from .profile import PROFILE_SCHEMA_VERSION, SamplingProfiler
from .recorder import (
    RECORDER_SCHEMA_VERSION,
    FlightRecorder,
    global_recorder,
    load_flight_dump,
)
from .runtime import configure, obs_debug, obs_enabled
from .trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    TraceContext,
    Tracer,
    activate_tracer,
    current_context,
    current_tracer,
    linked_span,
    new_span_id,
    new_trace_id,
    span,
)

# Mirror the flight recorder's lifetime totals into the registry so a
# metrics scrape shows whether the black box is seeing (and capturing)
# spans.  Callback counters read at export time - the record hot path
# pays nothing for them.
global_metrics().counter_callback(
    "repro_obs_recorded_spans_total",
    lambda: global_recorder().recorded,
    help="Spans appended to the flight-recorder ring",
)
global_metrics().counter_callback(
    "repro_obs_recorder_triggers_total",
    lambda: global_recorder().triggered,
    help="Spans captured by a flight-recorder trigger (error or slow)",
)
global_metrics().counter_callback(
    "repro_obs_recorder_dumps_total",
    lambda: global_recorder().dumps,
    help="Flight-recorder dumps taken",
)

__all__ = [
    "configure",
    "obs_enabled",
    "obs_debug",
    "parse_sample_name",
    "Counter",
    "Gauge",
    "Histogram",
    "CallbackMetric",
    "MetricsRegistry",
    "global_metrics",
    "counter",
    "gauge",
    "histogram",
    "counter_deltas",
    "sample_name",
    "Span",
    "TraceContext",
    "Tracer",
    "TRACE_SCHEMA_VERSION",
    "span",
    "linked_span",
    "activate_tracer",
    "current_tracer",
    "current_context",
    "new_trace_id",
    "new_span_id",
    "FlightRecorder",
    "global_recorder",
    "load_flight_dump",
    "RECORDER_SCHEMA_VERSION",
    "SamplingProfiler",
    "PROFILE_SCHEMA_VERSION",
    "write_trace",
    "load_trace",
    "SUPPORTED_TRACE_SCHEMAS",
    "format_span_tree",
    "format_tree",
    "format_flame",
    "format_flame_summary",
    "prometheus_text",
    "lint_prometheus_text",
    "metrics_snapshot",
]
