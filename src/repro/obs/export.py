"""Exporters: JSON trace files, human tree summaries, Prometheus text.

Three consumers, three formats:

* machines replaying a run read the structured JSON written by
  :func:`write_trace` (and loaded back by :func:`load_trace`);
* humans skim :func:`format_span_tree` (the ``repro obs`` output) and
  :func:`format_tree` (nested mappings as the same box-drawing tree -
  the bench CLI renders counter dicts and delta tables through it);
* scrapers ingest :func:`prometheus_text`, the Prometheus text
  exposition format (0.0.4) with proper HELP/label escaping, which
  :func:`lint_prometheus_text` validates line by line (the CI
  format-lint step).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .metrics import (
    Histogram,
    MetricsRegistry,
    global_metrics,
)
from .trace import TRACE_SCHEMA_VERSION, Tracer

#: Trace schemas load_trace accepts: v1 predates span ids (the fields
#: read back as absent/None); v2 is what write_trace emits today.
SUPPORTED_TRACE_SCHEMAS = (1, TRACE_SCHEMA_VERSION)

# ----------------------------------------------------------------------
# Trace files
# ----------------------------------------------------------------------
def write_trace(tracer_or_payload: Union[Tracer, Dict], path: str) -> None:
    """Write a tracer (or its payload dict) as stable JSON."""
    payload = (
        tracer_or_payload.to_dict()
        if isinstance(tracer_or_payload, Tracer)
        else tracer_or_payload
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_trace(path: str) -> Dict:
    """Read a ``--trace`` payload back (validating the schema field)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") not in SUPPORTED_TRACE_SCHEMAS:
        raise ValueError(
            "unsupported trace schema %r in %s (expected one of %s)"
            % (
                payload.get("schema"),
                path,
                ", ".join(str(v) for v in SUPPORTED_TRACE_SCHEMAS),
            )
        )
    return payload


# ----------------------------------------------------------------------
# Human tree rendering
# ----------------------------------------------------------------------
def _fmt_duration(duration_ns: Optional[int]) -> str:
    if duration_ns is None:
        return "open"
    if duration_ns >= 1_000_000_000:
        return "%.2fs" % (duration_ns / 1e9)
    if duration_ns >= 1_000_000:
        return "%.1fms" % (duration_ns / 1e6)
    if duration_ns >= 1_000:
        return "%.1fus" % (duration_ns / 1e3)
    return "%dns" % duration_ns


def _span_label(node: Mapping[str, Any]) -> str:
    attributes = node.get("attributes") or {}
    label = node["name"]
    if attributes:
        label += " [%s]" % ", ".join(
            "%s=%s" % (key, attributes[key]) for key in sorted(attributes)
        )
    label += "  %s" % _fmt_duration(node.get("duration_ns"))
    if node.get("status") == "error":
        label += "  !error"
    return label


def _walk_spans(
    nodes: Sequence[Mapping[str, Any]],
    lines: List[str],
    prefix: str,
    max_children: int,
) -> None:
    shown = list(nodes[:max_children])
    hidden = nodes[max_children:]
    total = len(shown) + (1 if hidden else 0)
    for index, node in enumerate(shown):
        last = index == total - 1
        branch = "`- " if last else "|- "
        lines.append(prefix + branch + _span_label(node))
        child_prefix = prefix + ("   " if last else "|  ")
        _walk_spans(
            node.get("children") or (), lines, child_prefix, max_children
        )
    if hidden:
        hidden_ns = sum(
            node.get("duration_ns") or 0 for node in hidden
        )
        lines.append(
            prefix + "`- ... %d more spans collapsed (%s total)"
            % (
                sum(_count_spans(node) for node in hidden),
                _fmt_duration(hidden_ns),
            )
        )


def _count_spans(node: Mapping[str, Any]) -> int:
    return 1 + sum(
        _count_spans(child) for child in node.get("children") or ()
    )


def format_span_tree(
    payload: Union[Tracer, Mapping[str, Any]],
    max_children: int = 12,
) -> str:
    """Render a trace payload as an indented tree with durations.

    ``max_children`` bounds the siblings printed per parent; the rest
    are collapsed into one summary line (the JSON file keeps them all).
    """
    if isinstance(payload, Tracer):
        payload = payload.to_dict()
    roots = payload.get("spans") or []
    total = sum(_count_spans(node) for node in roots)
    total_ns = sum(node.get("duration_ns") or 0 for node in roots)
    lines = [
        "trace: %d span%s, %s"
        % (total, "" if total == 1 else "s", _fmt_duration(total_ns))
    ]
    _walk_spans(roots, lines, "", max_children)
    return "\n".join(lines)


def format_tree(data: Mapping[str, Any], title: Optional[str] = None) -> str:
    """Render a nested mapping with the same tree glyphs.

    Scalars print inline; nested mappings recurse.  The bench CLI uses
    this for counter dicts and per-experiment delta tables.
    """
    lines: List[str] = [title] if title else []

    def walk(mapping: Mapping[str, Any], prefix: str) -> None:
        items = sorted(mapping.items(), key=lambda kv: str(kv[0]))
        for index, (key, value) in enumerate(items):
            last = index == len(items) - 1
            branch = "`- " if last else "|- "
            child_prefix = prefix + ("   " if last else "|  ")
            if isinstance(value, Mapping):
                lines.append(prefix + branch + str(key))
                walk(value, child_prefix)
            else:
                lines.append(prefix + branch + "%s: %s" % (key, value))

    walk(data, "")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_sample_value(value: Union[int, float, None]) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _label_string(items) -> str:
    if not items:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (key, _escape_label_value(value))
        for key, value in items
    )


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    Counters and gauges emit one sample per label set; histograms emit
    a ``summary`` family (quantile samples plus ``_sum``/``_count``),
    which matches the bounded-window quantile estimates they keep.
    """
    registry = registry if registry is not None else global_metrics()
    families: Dict[str, List] = {}
    for metric in registry.metrics():
        families.setdefault(metric.name, []).append(metric)
    lines: List[str] = []
    for name in sorted(families):
        members = families[name]
        kind = members[0].kind
        help_text = next(
            (m.help for m in members if m.help), ""
        )
        if help_text:
            lines.append("# HELP %s %s" % (name, _escape_help(help_text)))
        lines.append(
            "# TYPE %s %s"
            % (name, "summary" if kind == "histogram" else kind)
        )
        for metric in members:
            if isinstance(metric, Histogram):
                for q in (0.5, 0.9, 0.99):
                    items = metric.labels + (("quantile", "%g" % q),)
                    lines.append(
                        "%s%s %s"
                        % (
                            name,
                            _label_string(items),
                            _fmt_sample_value(metric.quantile(q)),
                        )
                    )
                suffix_labels = _label_string(metric.labels)
                lines.append(
                    "%s_sum%s %s"
                    % (name, suffix_labels, _fmt_sample_value(metric.sum))
                )
                count_line = "%s_count%s %s" % (
                    name, suffix_labels, metric.count
                )
                exemplar = metric.exemplar
                if exemplar is not None:
                    trace_id, span_id, value = exemplar
                    count_line += (
                        ' # {trace_id="%s",span_id="%s"} %s'
                        % (
                            _escape_label_value(trace_id),
                            _escape_label_value(span_id),
                            _fmt_sample_value(value),
                        )
                    )
                lines.append(count_line)
            else:
                lines.append(
                    "%s%s %s"
                    % (
                        name,
                        _label_string(metric.labels),
                        _fmt_sample_value(metric.value()),
                    )
                )
    return "\n".join(lines) + ("\n" if lines else "")


_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(r"^# HELP (%s) (.*)$" % _METRIC_NAME)
_TYPE_RE = re.compile(
    r"^# TYPE (%s) (counter|gauge|summary|histogram|untyped)$"
    % _METRIC_NAME
)
_LABELS_RE = re.compile(
    r"^\{\s*%s\s*=\s*\"(?:[^\"\\\n]|\\[\\\"n])*\"\s*"
    r"(?:,\s*%s\s*=\s*\"(?:[^\"\\\n]|\\[\\\"n])*\"\s*)*,?\}$"
    % (_METRIC_NAME, _METRIC_NAME)
)
_SAMPLE_RE = re.compile(
    r"^(%s)(\{[^}]*\})? ([^ ]+)( [0-9]+)?$" % _METRIC_NAME
)
# OpenMetrics exemplar suffix: `sample # {labels} value [timestamp]`.
_EXEMPLAR_RE = re.compile(
    r"^(?P<sample>.+?) # (?P<labels>\{[^}]*\})"
    r" (?P<value>[^ ]+)(?P<timestamp> [0-9]+(?:\.[0-9]+)?)?$"
)


def _valid_sample_value(text: str) -> bool:
    if text in ("+Inf", "-Inf", "NaN"):
        return True
    try:
        float(text)
    except ValueError:
        return False
    return True


def lint_prometheus_text(text: str) -> List[str]:
    """Validate a Prometheus text dump; returns a list of problems.

    Checks the line grammar (HELP/TYPE comments, sample syntax, label
    quoting/escaping, numeric values), that no family declares TYPE
    twice, and that every sample follows its family's TYPE line when
    one exists.  An empty list means the dump is well-formed.
    """
    errors: List[str] = []
    typed: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if _HELP_RE.match(line):
                continue
            match = _TYPE_RE.match(line)
            if match:
                name = match.group(1)
                if name in typed:
                    errors.append(
                        "line %d: duplicate TYPE for %r" % (number, name)
                    )
                typed[name] = match.group(2)
                continue
            errors.append(
                "line %d: malformed comment (expected '# HELP name text' "
                "or '# TYPE name kind'): %r" % (number, line)
            )
            continue
        sample_line = line
        match = _SAMPLE_RE.match(sample_line)
        if not match and " # " in line:
            # Not a bare sample: try the OpenMetrics exemplar form.
            exemplar = _EXEMPLAR_RE.match(line)
            if not exemplar:
                errors.append(
                    "line %d: malformed exemplar: %r" % (number, line)
                )
                continue
            if not _LABELS_RE.match(exemplar.group("labels")):
                errors.append(
                    "line %d: malformed exemplar labels %r"
                    % (number, exemplar.group("labels"))
                )
            if not _valid_sample_value(exemplar.group("value")):
                errors.append(
                    "line %d: invalid exemplar value %r"
                    % (number, exemplar.group("value"))
                )
            sample_line = exemplar.group("sample")
            match = _SAMPLE_RE.match(sample_line)
        if not match:
            errors.append("line %d: malformed sample: %r" % (number, line))
            continue
        name, labels, value = match.group(1), match.group(2), match.group(3)
        if labels and not _LABELS_RE.match(labels):
            errors.append(
                "line %d: malformed labels %r" % (number, labels)
            )
        if not _valid_sample_value(value):
            errors.append(
                "line %d: invalid sample value %r" % (number, value)
            )
        family = name
        for suffix in ("_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
                break
        if typed and family not in typed:
            errors.append(
                "line %d: sample %r has no preceding TYPE line"
                % (number, name)
            )
    return errors


# ----------------------------------------------------------------------
# Folded-stack (flamegraph) rendering
# ----------------------------------------------------------------------
def format_flame(
    samples: Mapping[str, int], max_rows: Optional[int] = None
) -> str:
    """Render profiler folded stacks in collapsed flamegraph format.

    One line per distinct stack - ``frame;frame;leaf count`` - hottest
    first (ties break alphabetically, so output is deterministic).
    The text pipes straight into ``flamegraph.pl`` or speedscope;
    ``repro obs flame TRACE.json`` prints it for the profile embedded
    in a trace or bench payload.
    """
    rows = sorted(samples.items(), key=lambda kv: (-kv[1], kv[0]))
    if max_rows is not None:
        rows = rows[:max_rows]
    return "\n".join("%s %d" % (stack, count) for stack, count in rows)


def format_flame_summary(samples: Mapping[str, int]) -> str:
    """One human line: total samples and distinct stacks."""
    total = sum(samples.values())
    return "profile: %d sample%s across %d distinct stack%s" % (
        total,
        "" if total == 1 else "s",
        len(samples),
        "" if len(samples) == 1 else "s",
    )


def metrics_snapshot(
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Convenience: the global (or given) registry's flat snapshot."""
    registry = registry if registry is not None else global_metrics()
    return registry.snapshot()
