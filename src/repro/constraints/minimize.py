"""Redundancy removal among TCG conjunctions.

Propagation derives one interval per granularity for each pair, and
many of those are mutually implied (e.g. ``[0,191]hour`` adds nothing
once ``[0,5]b-day`` is present, because converting the latter yields
the former).  This module prunes a TCG set to the entries that actually
constrain something, using the (sound) conversion machinery itself:

    ``c1`` dominates ``c2``  iff  converting ``c1`` into ``c2``'s
    granularity yields an interval contained in ``c2``'s.

Domination is conservative: only *provable* redundancy (via sound
conversions) is removed, so the minimised conjunction accepts exactly
the same timestamp pairs.
"""

from __future__ import annotations

from typing import List, Sequence

from ..granularity.registry import GranularitySystem
from .tcg import TCG


class UnsatisfiableConjunction(ValueError):
    """The conjunction admits no timestamp pair at all.

    Raised by :func:`minimal_tcg_set` when two same-granularity entries
    have an empty intersection - there is no TCG representing "false",
    so the caller must handle the degenerate case (a structure carrying
    such an arc is inconsistent; propagation detects this too).
    """


def dominates(
    stronger: TCG, weaker: TCG, system: GranularitySystem
) -> bool:
    """Does satisfying ``stronger`` provably imply ``weaker``?

    True when the sound conversion of ``stronger`` into the weaker
    constraint's granularity lands inside the weaker interval.  (Both
    TCGs also assert coverage; coverage in the weaker granularity is
    guaranteed by conversion feasibility, which the check requires.)
    """
    if stronger is weaker:
        return False
    outcome = system.convert(
        stronger.m, stronger.n, stronger.granularity, weaker.granularity
    )
    if outcome.interval is None:
        return False
    lo, hi = outcome.interval
    return weaker.m <= lo and hi <= weaker.n


def minimal_tcg_set(
    tcgs: Sequence[TCG], system: GranularitySystem
) -> List[TCG]:
    """A subset of ``tcgs`` with the same satisfying pairs, dominated
    entries removed.

    Entries are considered in order of (coarse) interval width so the
    tightest constraints are kept; mutual domination (two constraints
    implying each other) keeps the first.  Intersects same-granularity
    duplicates before checking cross-granularity domination.
    """
    # Merge same-granularity constraints by intersection.
    merged = {}
    for constraint in tcgs:
        existing = merged.get(constraint.label)
        if existing is None:
            merged[constraint.label] = constraint
        else:
            lo = max(existing.m, constraint.m)
            hi = min(existing.n, constraint.n)
            if lo > hi:
                raise UnsatisfiableConjunction(
                    "%s and %s have an empty intersection"
                    % (existing, constraint)
                )
            merged[constraint.label] = TCG(lo, hi, existing.granularity)
    candidates = sorted(
        merged.values(), key=lambda c: (c.n - c.m, c.label)
    )
    kept: List[TCG] = []
    for constraint in candidates:
        if any(dominates(other, constraint, system) for other in kept):
            continue
        kept.append(constraint)
    # Interval widths in different granularities are not comparable, so
    # a later entry may dominate an earlier one: sweep again, dropping
    # any entry dominated by another survivor (mutual domination keeps
    # the earlier entry).
    final: List[TCG] = []
    for position, constraint in enumerate(kept):
        redundant = False
        for other_position, other in enumerate(kept):
            if other_position == position:
                continue
            if not dominates(other, constraint, system):
                continue
            mutual = dominates(constraint, other, system)
            if not mutual or other_position < position:
                redundant = True
                break
        if not redundant:
            final.append(constraint)
    return final
