"""Temporal constraints with granularities (TCGs), paper Section 3.

A TCG ``[m, n]_mu`` is a binary relation on timestamps: ``(t1, t2)``
satisfies it iff ``t1 <= t2``, both timestamps are covered by ``mu``,
and the tick distance ``tick(t2) - tick(t1)`` lies in ``[m, n]``.

The canonical counter-example of the paper - ``[0, 0]_day`` is *not*
expressible as any ``[m', n']_second`` - falls out of these semantics
directly and is verified in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..granularity.base import TemporalType


@dataclass(frozen=True)
class TCG:
    """A temporal constraint with granularity, ``[m, n]_mu``.

    Attributes
    ----------
    m, n:
        Non-negative integer bounds on the tick distance, ``m <= n``.
    granularity:
        The temporal type the distance is measured in.
    """

    m: int
    n: int
    granularity: TemporalType

    def __post_init__(self) -> None:
        if self.m < 0:
            raise ValueError("lower bound must be non-negative")
        if self.n < self.m:
            raise ValueError(
                "upper bound %d below lower bound %d" % (self.n, self.m)
            )

    def is_satisfied(self, t1: int, t2: int) -> bool:
        """Definition from Section 3: order, definedness, bounded distance."""
        if t1 > t2:
            return False
        distance = self.granularity.distance(t1, t2)
        if distance is None:
            return False
        return self.m <= distance <= self.n

    def distance_of(self, t1: int, t2: int) -> Optional[int]:
        """The constrained quantity itself (tick distance), or None."""
        return self.granularity.distance(t1, t2)

    @property
    def label(self) -> str:
        """The granularity's label, for grouping by type."""
        return self.granularity.label

    def __str__(self) -> str:
        return "[%d,%d]%s" % (self.m, self.n, self.granularity.label)


def tcg(m: int, n: int, granularity: TemporalType) -> TCG:
    """Convenience constructor mirroring the paper's ``[m, n]_mu``."""
    return TCG(m, n, granularity)
