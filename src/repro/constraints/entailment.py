"""Structure entailment: does one pattern subsume another?

``entails(specific, general, system)`` checks - soundly, via the
conversion machinery - that every complex event matching ``specific``
also matches ``general``.  Uses the propagated closure of the specific
structure: each TCG the general structure demands must be dominated by
a derived constraint of the specific one.

Being built on sound-but-incomplete propagation, the check itself is
sound but incomplete: ``True`` is a proof of entailment, ``False``
means "not proven" (Theorem 1 rules out a cheap complete test).

The mining-side use is solution organisation: discovered complex event
types over comparable structures can be deduplicated/ordered by
specificity (``subsumes`` for instantiated patterns).
"""

from __future__ import annotations

from typing import Optional

from ..granularity.registry import GranularitySystem
from .minimize import dominates
from .propagation import propagate
from .structure import ComplexEventType, EventStructure
from .tcg import TCG


def entails(
    specific: EventStructure,
    general: EventStructure,
    system: GranularitySystem,
) -> bool:
    """Sound check that matches of ``specific`` all match ``general``.

    Requirements for a proof:

    * ``general``'s variables are a subset of ``specific``'s (the
      induced-substructure direction of Section 5.1);
    * every arc (X, Y) of ``general`` connects variables with a path in
      ``specific`` (so the order requirement is implied);
    * every TCG of ``general`` is dominated by some TCG derived for
      (X, Y) by propagating ``specific``.

    An inconsistent ``specific`` entails anything (vacuously).
    """
    if not set(general.variables) <= set(specific.variables):
        return False
    result = propagate(specific, system)
    if not result.consistent:
        return True  # no matches at all
    for (x, y), required in general.constraints.items():
        if not specific.has_path(x, y):
            return False
        derived = result.derived_tcgs(x, y)
        for constraint in required:
            if not any(
                _implies(have, constraint, system) for have in derived
            ):
                return False
    return True


def _implies(have: TCG, want: TCG, system: GranularitySystem) -> bool:
    if have.label == want.label:
        return want.m <= have.m and have.n <= want.n
    return dominates(have, want, system)


def subsumes(
    specific: ComplexEventType,
    general: ComplexEventType,
    system: GranularitySystem,
) -> bool:
    """Instantiated-pattern subsumption: same-variable assignments must
    agree, and the specific structure must entail the general one."""
    shared = set(general.structure.variables) & set(
        specific.structure.variables
    )
    for variable in shared:
        if specific.event_type(variable) != general.event_type(variable):
            return False
    return entails(specific.structure, general.structure, system)
