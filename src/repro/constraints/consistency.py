"""Exact consistency checking of event structures (exponential search).

Theorem 1 makes this NP-hard, so no polynomial algorithm is expected;
this module provides the honest exponential check used (a) as an oracle
to validate the approximate propagation, (b) to demonstrate the
NP-hardness reduction empirically (experiment X3), and (c) to exhibit
incompleteness of propagation on the Figure 1(b) gadget (experiment X2).

The search assigns concrete timestamps to variables using dynamic
most-constrained-variable ordering, choosing among *candidate instants*
and pruning with the windows derived by the approximate propagation.
By default the candidates are the tick starts of every granularity of
the structure inside the search window.  That candidate set is complete
whenever each variable's granularities partition time into ticks that
are unions of ticks of one of the candidate-generating types (true for
all calendar types shipped here, e.g. month / n-month / year structures
snap to month starts); for unusual mixtures, pass an explicit
``resolution`` in seconds to densify the candidate grid.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..granularity.calendar import second
from ..granularity.registry import GranularitySystem
from .propagation import propagate
from .structure import EventStructure


@dataclass
class ConsistencyReport:
    """Result of an exact consistency search.

    ``consistent`` is meaningful only when ``completed`` is True; an
    aborted search (node budget exhausted) reports what it knows.
    """

    consistent: bool
    completed: bool
    witness: Optional[Dict[str, int]]
    nodes_explored: int
    candidates_considered: int


class _Budget(Exception):
    """Internal: node budget exhausted."""


def candidate_instants(
    structure: EventStructure,
    system: GranularitySystem,
    window_seconds: int,
    anchor: int = 0,
    resolution: Optional[int] = None,
) -> List[int]:
    """Candidate timestamps for the exact search, sorted ascending."""
    horizon = anchor + window_seconds
    candidates = set()
    if resolution is not None:
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        candidates.update(range(anchor, horizon + 1, resolution))
    for ttype in structure.granularities():
        resolved = system.resolve(ttype)
        index = resolved.first_tick_at_or_after(anchor)
        while True:
            try:
                first, _ = resolved.tick_bounds(index)
            except ValueError:
                break
            if first > horizon:
                break
            candidates.add(first)
            index += 1
    return sorted(candidates)


class _Searcher:
    """Backtracking search shared by the exact-analysis entry points.

    Uses most-constrained-variable ordering: at each step the unassigned
    variable with the fewest candidate instants in its current window is
    chosen (ties broken by constraint degree), which is what makes e.g.
    the SUBSET SUM gadget's auxiliary variables cheap to place.
    """

    def __init__(
        self,
        structure: EventStructure,
        system: GranularitySystem,
        window_seconds: int,
        anchor: int,
        resolution: Optional[int],
        max_nodes: int,
    ):
        self.structure = structure
        self.anchor = anchor
        self.window_seconds = window_seconds
        self.max_nodes = max_nodes
        self.nodes = 0
        prop = propagate(structure, system, extra_granularities=[second()])
        self.refuted = not prop.consistent
        self.second_windows = (
            prop.groups.get("second", {}) if prop.consistent else {}
        )
        self.candidates = (
            candidate_instants(
                structure,
                system,
                window_seconds,
                anchor=anchor,
                resolution=resolution,
            )
            if prop.consistent
            else []
        )
        self.assignment: Dict[str, int] = {}
        self._degree = {
            v: len(structure.successors(v)) + len(structure.predecessors(v))
            for v in structure.variables
        }

    # ------------------------------------------------------------------
    def window_for(self, variable: str) -> Tuple[int, int]:
        """Second-window implied by already-assigned variables."""
        lo, hi = self.anchor, self.anchor + self.window_seconds
        for other, value in self.assignment.items():
            fwd = self.second_windows.get((other, variable))
            if fwd is not None:
                lo = max(lo, value + fwd[0])
                hi = min(hi, value + fwd[1])
            back = self.second_windows.get((variable, other))
            if back is not None:
                lo = max(lo, value - back[1])
                hi = min(hi, value - back[0])
        return lo, hi

    def candidate_range(self, variable: str) -> Tuple[int, int]:
        lo, hi = self.window_for(variable)
        if lo > hi:
            return 0, 0
        return (
            bisect_left(self.candidates, lo),
            bisect_right(self.candidates, hi),
        )

    def pick_variable(self) -> Optional[str]:
        """Most-constrained unassigned variable (fewest candidates)."""
        best = None
        best_key = None
        for variable in self.structure.variables:
            if variable in self.assignment:
                continue
            start, stop = self.candidate_range(variable)
            key = (stop - start, -self._degree[variable])
            if best_key is None or key < best_key:
                best, best_key = variable, key
        return best

    def consistent_with_assigned(self, variable: str, value: int) -> bool:
        for other, other_value in self.assignment.items():
            for constraint in self.structure.tcgs(other, variable):
                if not constraint.is_satisfied(other_value, value):
                    return False
            for constraint in self.structure.tcgs(variable, other):
                if not constraint.is_satisfied(value, other_value):
                    return False
        return True

    def search(self, on_complete) -> bool:
        """Depth-first search; ``on_complete(assignment)`` is invoked on
        every full assignment and may return True to stop the search."""
        if len(self.assignment) == len(self.structure.variables):
            return bool(on_complete(dict(self.assignment)))
        variable = self.pick_variable()
        assert variable is not None
        start, stop = self.candidate_range(variable)
        for position in range(start, stop):
            self.nodes += 1
            if self.nodes > self.max_nodes:
                raise _Budget()
            value = self.candidates[position]
            if not self.consistent_with_assigned(variable, value):
                continue
            self.assignment[variable] = value
            if self.search(on_complete):
                return True
            del self.assignment[variable]
        return False


def check_consistency_exact(
    structure: EventStructure,
    system: GranularitySystem,
    window_seconds: int,
    anchor: int = 0,
    resolution: Optional[int] = None,
    max_nodes: int = 2_000_000,
) -> ConsistencyReport:
    """Search for a complex event matching the structure in a window.

    Consistency in the paper is existence anywhere on the timeline; for
    (eventually) periodic granularity systems a window covering one
    period of the coarsest type suffices, which is what the callers use.
    """
    searcher = _Searcher(
        structure, system, window_seconds, anchor, resolution, max_nodes
    )
    if searcher.refuted:
        return ConsistencyReport(
            consistent=False,
            completed=True,
            witness=None,
            nodes_explored=0,
            candidates_considered=0,
        )
    found: List[Dict[str, int]] = []

    def capture(assignment: Dict[str, int]) -> bool:
        found.append(assignment)
        return True

    try:
        searcher.search(capture)
    except _Budget:
        return ConsistencyReport(
            consistent=False,
            completed=False,
            witness=None,
            nodes_explored=searcher.nodes,
            candidates_considered=len(searcher.candidates),
        )
    witness = found[0] if found else None
    return ConsistencyReport(
        consistent=witness is not None,
        completed=True,
        witness=witness,
        nodes_explored=searcher.nodes,
        candidates_considered=len(searcher.candidates),
    )


def distance_values(
    structure: EventStructure,
    system: GranularitySystem,
    var_a: str,
    var_b: str,
    granularity,
    window_seconds: int,
    anchor: int = 0,
    resolution: Optional[int] = None,
    max_nodes: int = 2_000_000,
) -> List[int]:
    """All realisable tick distances between two variables.

    Enumerates every complete satisfying assignment within the window
    (over the candidate grid) and collects ``tick(b) - tick(a)`` in the
    given granularity - the tool that exposes the *disjunction* hidden in
    multi-granularity constraints (Figure 1(b): the realisable month
    distances are exactly {0, 12}).
    """
    ttype = system.resolve(granularity)
    searcher = _Searcher(
        structure, system, window_seconds, anchor, resolution, max_nodes
    )
    if searcher.refuted:
        return []
    values = set()

    def collect(assignment: Dict[str, int]) -> bool:
        distance = ttype.distance(assignment[var_a], assignment[var_b])
        if distance is not None:
            values.add(distance)
        return False  # keep enumerating

    try:
        searcher.search(collect)
    except _Budget:
        pass
    return sorted(values)
