"""TCGs, event structures, STP solving, propagation and consistency.

Implements Section 3 (and appendix A.2's hardness-relevant machinery) of
the paper: temporal constraints with granularities, event structures,
the single-granularity Simple Temporal Problem substrate, the sound
polynomial approximate propagation, and the exact exponential check.
"""

from .builder import (
    StructureBuilder,
    parse_tcg,
    parse_tcg_conjunction,
    structure_from_text,
)
from .analysis import (
    Disjunction,
    TightnessRow,
    exact_distance_sets,
    find_disjunctions,
    minimal_intervals,
    tightness_report,
)
from .consistency import (
    ConsistencyReport,
    candidate_instants,
    check_consistency_exact,
    distance_values,
)
from .entailment import entails, subsumes
from .minimize import UnsatisfiableConjunction, dominates, minimal_tcg_set
from .propagation import (
    ENGINES,
    PropagationResult,
    check_consistency_approx,
    propagate,
    resolve_engine,
)
from .stp import (
    INF,
    STP,
    EngineUnavailable,
    InconsistentSTP,
    have_numpy,
    solve_intervals,
)
from .structure import ComplexEventType, EventStructure
from .tcg import TCG, tcg

__all__ = [
    "TCG",
    "tcg",
    "EventStructure",
    "ComplexEventType",
    "STP",
    "InconsistentSTP",
    "EngineUnavailable",
    "INF",
    "have_numpy",
    "solve_intervals",
    "propagate",
    "ENGINES",
    "resolve_engine",
    "PropagationResult",
    "check_consistency_approx",
    "check_consistency_exact",
    "ConsistencyReport",
    "candidate_instants",
    "distance_values",
    "exact_distance_sets",
    "minimal_intervals",
    "find_disjunctions",
    "Disjunction",
    "tightness_report",
    "TightnessRow",
    "dominates",
    "UnsatisfiableConjunction",
    "minimal_tcg_set",
    "StructureBuilder",
    "parse_tcg",
    "parse_tcg_conjunction",
    "structure_from_text",
    "entails",
    "subsumes",
]
