"""Approximate constraint propagation with granularities (Section 3.2).

The algorithm partitions the TCGs of an event structure into one group
per temporal type, runs STP path consistency inside each group, converts
every (closed) constraint of each group into every other feasible
granularity with the appendix A.1 algorithm, and repeats to fixpoint.

Guarantees (Theorem 2, all verified by the test suite):

* **sound** - every complex event matching the input structure matches
  the derived one;
* **terminating** - interval lengths shrink integrally;
* **polynomial** - ``O(n^5 |M|^2 w)`` in the worst case.

It is deliberately *incomplete*: Theorem 1 makes complete propagation
NP-hard, and Figure 1(b)'s month/year gadget (test suite, experiment X2)
exhibits the gap.

Two interchangeable engines implement the loop (``engine=`` parameter):

``python``
    the paper-faithful reference: rebuild and fully re-close every
    granularity group's STP each iteration;
``numpy`` / ``fallback``
    the fast path: per-group distance matrices persist across
    iterations, groups whose arcs did not tighten since their last
    closure are skipped outright, and tightened arcs are relaxed
    incrementally in ``O(n^2)`` per arc instead of a full ``O(n^3)``
    re-closure (``numpy`` additionally vectorises the initial full
    closures; ``fallback`` is the same fast path on pure Python);
``auto``
    ``numpy`` when importable, ``fallback`` otherwise.

The engines produce exactly equal derived intervals and consistency
verdicts - the invariant enforced case-by-case by the differential
oracle in ``tests/differential/`` - so callers may treat the engine
choice as a pure performance knob.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..granularity.base import TemporalType
from ..granularity.normalform import (
    resolve_backend as resolve_sizetable_backend,
)
from ..granularity.registry import GranularitySystem
from ..obs import counter, histogram, span
from .stp import (
    STP,
    EngineUnavailable,
    InconsistentSTP,
    have_numpy,
    resolve_kernel,
)
from .structure import EventStructure
from .tcg import TCG

Arc = Tuple[str, str]
Interval = Tuple[int, int]

#: Engine names accepted by :func:`propagate` (and the CLI ``--engine``).
ENGINES = ("auto", "python", "numpy", "fallback")

# Process-wide propagation metrics (docs/OBSERVABILITY.md catalog).
# The per-call counters are added once per propagate() call, from the
# PropagationResult fields - so for any run the registry totals are
# exactly the sum of the per-call fields (the acceptance invariant the
# obs CLI test checks), and the result fields double as per-call views
# over the same counters.
_RUNS = counter("repro_propagation_runs_total", "propagate() calls")
_ITERATIONS = counter(
    "repro_propagation_iterations_total", "Fixpoint iterations"
)
_CLOSURES_FULL = counter(
    "repro_propagation_closures_full_total", "Full STP re-closures"
)
_CLOSURES_INCREMENTAL = counter(
    "repro_propagation_closures_incremental_total",
    "Incremental STP re-closures",
)
_CONVERSIONS = counter(
    "repro_propagation_conversions_total",
    "Attempted cross-granularity conversions",
)
_CACHE_HITS = counter(
    "repro_propagation_conversion_cache_hits_total",
    "Conversion cache hits attributed to propagation",
)
_CACHE_MISSES = counter(
    "repro_propagation_conversion_cache_misses_total",
    "Conversion cache misses attributed to propagation",
)
_INCONSISTENT = counter(
    "repro_propagation_inconsistent_total",
    "Propagations that refuted their structure",
)
_SECONDS = histogram(
    "repro_propagation_seconds", "propagate() wall time per call"
)


def resolve_engine(engine: str) -> str:
    """Normalise an engine name; ``auto`` prefers numpy.

    Raises :class:`~repro.constraints.stp.EngineUnavailable` when
    ``numpy`` is requested explicitly but not importable.
    """
    if engine == "auto":
        return "numpy" if have_numpy() else "fallback"
    if engine not in ENGINES:
        raise ValueError(
            "unknown propagation engine %r (expected one of %r)"
            % (engine, ENGINES)
        )
    if engine == "numpy":
        resolve_kernel("numpy")  # raises EngineUnavailable when absent
    return engine


@dataclass
class PropagationResult:
    """Outcome of the approximate propagation.

    ``consistent`` is False only when an inconsistency was *detected*;
    True means "not refuted" (the check is sound, not complete).

    Work counters: ``conversions_performed`` counts *attempted*
    conversions (every source-interval/target-granularity pair the loop
    visited, whether or not the process-wide cache already knew the
    answer); ``conversion_cache_hits`` / ``conversion_cache_misses``
    split those attempts by cache outcome, so
    ``conversion_cache_misses`` is the number of conversions actually
    computed on behalf of this call.  ``closures_full`` and
    ``closures_incremental`` count STP re-closures by kind (the
    reference engine only ever performs full closures).
    """

    structure: EventStructure
    consistent: bool
    groups: Dict[str, Dict[Arc, Interval]]
    types: Dict[str, TemporalType]
    iterations: int = 0
    conversions_performed: int = 0
    system: Optional[GranularitySystem] = None
    engine: str = "python"
    conversion_cache_hits: int = 0
    conversion_cache_misses: int = 0
    closures_full: int = 0
    closures_incremental: int = 0
    #: The size-table backend the system's tables resolved to for this
    #: call ("auto" never appears: it resolves to compiled or sweep).
    sizetable_backend: str = "sweep"

    def interval(self, x: str, y: str, label: str) -> Optional[Interval]:
        """Derived ``[lo, hi]`` for ``tick(y) - tick(x)`` in a granularity."""
        return self.groups.get(label, {}).get((x, y))

    def intervals(self, x: str, y: str) -> Dict[str, Interval]:
        """All derived intervals for the ordered pair, keyed by label."""
        result = {}
        for label, group in self.groups.items():
            interval = group.get((x, y))
            if interval is not None:
                result[label] = interval
        return result

    def derived_tcgs(self, x: str, y: str) -> List[TCG]:
        """The derived constraints on an ordered pair, as TCG objects."""
        return [
            TCG(lo, hi, self.types[label])
            for label, (lo, hi) in sorted(self.intervals(x, y).items())
        ]

    def minimal_derived_tcgs(self, x: str, y: str) -> List[TCG]:
        """The derived conjunction with provably redundant entries
        removed (see :mod:`repro.constraints.minimize`)."""
        from .minimize import minimal_tcg_set

        if self.system is None:
            return self.derived_tcgs(x, y)
        return minimal_tcg_set(self.derived_tcgs(x, y), self.system)

    def induced_substructure(
        self, variables: Sequence[str]
    ) -> Optional[EventStructure]:
        """The *induced approximated sub-structure* of Section 5.1.

        Arcs connect pairs (X, Y) from ``variables`` with a path X -> Y
        in the original structure and at least one (original or derived)
        constraint; each such arc carries all the derived TCGs.  Returns
        None when the chosen variables end up with no root reaching all
        of them (the paper requires connected sub-chains).
        """
        chosen = [v for v in self.structure.variables if v in set(variables)]
        constraints: Dict[Arc, List[TCG]] = {}
        for x in chosen:
            for y in chosen:
                if x == y or not self.structure.has_path(x, y):
                    continue
                tcgs = self.derived_tcgs(x, y)
                if tcgs:
                    constraints[(x, y)] = tcgs
        if not constraints and len(chosen) > 1:
            return None
        try:
            return EventStructure(chosen, constraints)
        except ValueError:
            return None

    def derived_structure(self) -> EventStructure:
        """The full derived structure S' = (W, A', Gamma')."""
        substructure = self.induced_substructure(self.structure.variables)
        assert substructure is not None  # the original root still reaches all
        return substructure


def _initial_groups(
    structure: EventStructure, system: GranularitySystem
) -> Tuple[Dict[str, Dict[Arc, Interval]], Dict[str, TemporalType]]:
    groups: Dict[str, Dict[Arc, Interval]] = {}
    types: Dict[str, TemporalType] = {}
    for arc, tcgs in structure.constraints.items():
        for constraint in tcgs:
            label = constraint.label
            types.setdefault(label, system.resolve(constraint.granularity))
            group = groups.setdefault(label, {})
            lo, hi = group.get(arc, (0, float("inf")))
            lo = max(lo, constraint.m)
            hi = min(hi, constraint.n)
            group[arc] = (lo, hi)
    return groups, types


def _close_group(
    variables: Sequence[str],
    group: Dict[Arc, Interval],
    kernel: str = "python",
) -> Optional[Dict[Arc, Interval]]:
    """STP closure of one granularity group; None when inconsistent."""
    stp = STP(variables, kernel=kernel)
    try:
        for (x, y), (lo, hi) in group.items():
            stp.add(x, y, lo, hi)
        stp.closure()
    except InconsistentSTP:
        return None
    return stp.finite_intervals()


class _PropagationSetup:
    """The state both engines share: groups, types, ordered pairs."""

    def __init__(
        self,
        structure: EventStructure,
        system: GranularitySystem,
        extra_granularities: Sequence[TemporalType],
        engine: str,
    ):
        groups, types = _initial_groups(structure, system)
        for extra in extra_granularities:
            resolved = system.resolve(extra)
            types.setdefault(resolved.label, resolved)
            groups.setdefault(resolved.label, {})
        self.groups = groups
        self.types = types
        self.labels = sorted(types)
        self.result = PropagationResult(
            structure=structure,
            consistent=True,
            groups=groups,
            types=types,
            system=system,
            engine=engine,
        )
        # A TCG [m, n]_mu asserts the time order t1 <= t2 in addition to
        # the tick distance, so a derived STP interval is a valid TCG
        # only for pairs ordered by the DAG (timestamps are
        # non-decreasing along paths).  Keeping reversed/unordered pairs
        # would be unsound.
        variables = structure.variables
        self.ordered_pairs = {
            (x, y)
            for x in variables
            for y in variables
            if x != y and structure.has_path(x, y)
        }


def _convert_step(
    setup: _PropagationSetup,
    system: GranularitySystem,
    pending: Optional[Dict[str, List[Tuple[Arc, Interval]]]] = None,
) -> Optional[bool]:
    """Step 2: cross-granularity conversion (shared by both engines).

    Merges every feasible conversion into the destination groups.
    Returns None when an inconsistency was detected (the caller must
    stop), otherwise whether any destination interval changed.  When
    ``pending`` is given, every tightened ``(arc, interval)`` is also
    recorded there per destination label (the fast path's incremental
    re-closure input).
    """
    result = setup.result
    groups = setup.groups
    types = setup.types
    changed = False
    for src_label in setup.labels:
        for dst_label in setup.labels:
            if src_label == dst_label:
                continue
            src_type = types[src_label]
            dst_type = types[dst_label]
            if not system.conversion_feasible(src_type, dst_type):
                continue
            dst_group = groups[dst_label]
            for arc, (lo, hi) in groups[src_label].items():
                outcome = system.convert(lo, hi, src_type, dst_type)
                result.conversions_performed += 1
                if outcome.empty:
                    result.consistent = False
                    return None
                if outcome.interval is None:
                    continue
                new_lo, new_hi = outcome.interval
                old = dst_group.get(arc)
                if old is not None:
                    new_lo = max(new_lo, old[0])
                    new_hi = min(new_hi, old[1])
                    if new_lo > new_hi:
                        result.consistent = False
                        return None
                if old is None or (new_lo, new_hi) != old:
                    dst_group[arc] = (new_lo, new_hi)
                    if pending is not None:
                        pending[dst_label].append((arc, (new_lo, new_hi)))
                    changed = True
    return changed


def _propagate_reference(
    setup: _PropagationSetup,
    system: GranularitySystem,
    max_iterations: int,
) -> PropagationResult:
    """The paper-faithful loop: full re-closure of every group, every
    iteration (pure Python)."""
    result = setup.result
    groups = setup.groups
    variables = setup.result.structure.variables
    for iteration in range(1, max_iterations + 1):
        result.iterations = iteration
        with span("propagate.iteration", iteration=iteration):
            # Step 1: path consistency inside each group.
            for label in setup.labels:
                with span("stp.close", granularity=label, kind="full"):
                    closed = _close_group(variables, groups[label])
                result.closures_full += 1
                if closed is None:
                    result.consistent = False
                    return result
                groups[label] = {
                    arc: interval
                    for arc, interval in closed.items()
                    if arc in setup.ordered_pairs
                }
            setup.result.groups = groups
            # Step 2: cross-granularity conversion.
            with span("propagate.convert", iteration=iteration):
                changed = _convert_step(setup, system)
            if changed is None or not changed:
                return result
    raise RuntimeError(
        "propagation did not converge within %d iterations; this "
        "contradicts Theorem 2 and indicates a conversion-table bug"
        % max_iterations
    )


def _propagate_fast(
    setup: _PropagationSetup,
    system: GranularitySystem,
    max_iterations: int,
    kernel: str,
) -> PropagationResult:
    """The fast path: persistent per-group matrices, clean-group
    skipping, and incremental re-closure of tightened arcs.

    Exactness relies on two provable facts about the reference loop
    (see ``tests/differential/``): every arc a group dict ever holds
    joins DAG-ordered variables whose closed interval is finite with a
    non-negative lower bound, hence survives the per-iteration
    filtering; and therefore the closure matrix of the filtered group
    equals the persisted closure matrix entry-for-entry, so relaxing
    only the arcs that tightened reproduces the reference's full
    re-closure result exactly.
    """
    result = setup.result
    groups = setup.groups
    variables = setup.result.structure.variables
    stps: Dict[str, STP] = {}
    pending: Dict[str, List[Tuple[Arc, Interval]]] = {
        label: [] for label in setup.labels
    }
    for iteration in range(1, max_iterations + 1):
        result.iterations = iteration
        with span("propagate.iteration", iteration=iteration):
            # Step 1: path consistency inside each group - full closure
            # the first time a group is seen, incremental afterwards,
            # skipped entirely when nothing tightened since the last
            # closure.
            for label in setup.labels:
                stp = stps.get(label)
                if stp is None:
                    stp = STP(variables, kernel=kernel)
                    try:
                        with span(
                            "stp.close", granularity=label, kind="full"
                        ):
                            for (x, y), (lo, hi) in groups[label].items():
                                stp.add(x, y, lo, hi)
                            stp.closure()
                    except InconsistentSTP:
                        result.consistent = False
                        return result
                    stps[label] = stp
                    result.closures_full += 1
                else:
                    updates = pending[label]
                    if not updates:
                        # Clean group: its dict already holds the
                        # filtered fixpoint of its own closure -
                        # nothing to do.
                        continue
                    try:
                        with span(
                            "stp.close",
                            granularity=label,
                            kind="incremental",
                            arcs=len(updates),
                        ):
                            stp.tighten_many(
                                [(arc, lo, hi) for arc, (lo, hi) in updates]
                            )
                    except InconsistentSTP:
                        result.consistent = False
                        return result
                    result.closures_incremental += 1
                    pending[label] = []
                groups[label] = {
                    arc: interval
                    for arc, interval in stp.finite_intervals().items()
                    if arc in setup.ordered_pairs
                }
            setup.result.groups = groups
            # Step 2: cross-granularity conversion, recording tightened
            # arcs for the next round's incremental re-closure.
            with span("propagate.convert", iteration=iteration):
                changed = _convert_step(setup, system, pending=pending)
            if changed is None or not changed:
                return result
    raise RuntimeError(
        "propagation did not converge within %d iterations; this "
        "contradicts Theorem 2 and indicates a conversion-table bug"
        % max_iterations
    )


def propagate(
    structure: EventStructure,
    system: GranularitySystem,
    extra_granularities: Sequence[TemporalType] = (),
    max_iterations: int = 10_000,
    engine: str = "auto",
) -> PropagationResult:
    """Run the Section 3.2 approximate propagation to fixpoint.

    ``extra_granularities`` adds target types beyond those appearing in
    the structure (the mining layer passes ``second`` here to obtain
    concrete scan windows).  ``engine`` selects the propagation engine
    (see the module docstring); every engine returns exactly the same
    intervals and consistency verdict.
    """
    resolved = resolve_engine(engine)
    setup = _PropagationSetup(
        structure, system, extra_granularities, resolved
    )
    cache = system.conversion_cache
    before = cache.snapshot()
    started = time.perf_counter()
    result = setup.result
    with span(
        "propagate",
        engine=resolved,
        variables=len(structure.variables),
        granularities=len(setup.labels),
    ) as propagate_span:
        try:
            if not setup.groups:
                return result
            if resolved == "python":
                result = _propagate_reference(setup, system, max_iterations)
            else:
                kernel = "numpy" if resolved == "numpy" else "python"
                result = _propagate_fast(
                    setup, system, max_iterations, kernel
                )
            return result
        finally:
            after = cache.snapshot()
            result.conversion_cache_hits = after.hits - before.hits
            result.conversion_cache_misses = after.misses - before.misses
            result.sizetable_backend = resolve_sizetable_backend(
                system.sizetable_backend
            )
            propagate_span.set(
                iterations=result.iterations,
                consistent=result.consistent,
            )
            # Mirror the per-call counters into the process-wide
            # registry; the PropagationResult fields stay the per-call
            # views over exactly these increments.
            _RUNS.inc()
            _ITERATIONS.add(result.iterations)
            _CLOSURES_FULL.add(result.closures_full)
            _CLOSURES_INCREMENTAL.add(result.closures_incremental)
            _CONVERSIONS.add(result.conversions_performed)
            _CACHE_HITS.add(result.conversion_cache_hits)
            _CACHE_MISSES.add(result.conversion_cache_misses)
            if not result.consistent:
                _INCONSISTENT.inc()
            _SECONDS.observe(time.perf_counter() - started)


def check_consistency_approx(
    structure: EventStructure,
    system: GranularitySystem,
    engine: str = "auto",
) -> bool:
    """Sound (incomplete) consistency check: False means *proven*
    inconsistent, True means not refuted."""
    return propagate(structure, system, engine=engine).consistent
