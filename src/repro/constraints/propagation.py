"""Approximate constraint propagation with granularities (Section 3.2).

The algorithm partitions the TCGs of an event structure into one group
per temporal type, runs STP path consistency inside each group, converts
every (closed) constraint of each group into every other feasible
granularity with the appendix A.1 algorithm, and repeats to fixpoint.

Guarantees (Theorem 2, all verified by the test suite):

* **sound** - every complex event matching the input structure matches
  the derived one;
* **terminating** - interval lengths shrink integrally;
* **polynomial** - ``O(n^5 |M|^2 w)`` in the worst case.

It is deliberately *incomplete*: Theorem 1 makes complete propagation
NP-hard, and Figure 1(b)'s month/year gadget (test suite, experiment X2)
exhibits the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..granularity.base import TemporalType
from ..granularity.registry import GranularitySystem
from .stp import STP, InconsistentSTP
from .structure import EventStructure
from .tcg import TCG

Arc = Tuple[str, str]
Interval = Tuple[int, int]


@dataclass
class PropagationResult:
    """Outcome of the approximate propagation.

    ``consistent`` is False only when an inconsistency was *detected*;
    True means "not refuted" (the check is sound, not complete).
    """

    structure: EventStructure
    consistent: bool
    groups: Dict[str, Dict[Arc, Interval]]
    types: Dict[str, TemporalType]
    iterations: int = 0
    conversions_performed: int = 0
    system: Optional[GranularitySystem] = None

    def interval(self, x: str, y: str, label: str) -> Optional[Interval]:
        """Derived ``[lo, hi]`` for ``tick(y) - tick(x)`` in a granularity."""
        return self.groups.get(label, {}).get((x, y))

    def intervals(self, x: str, y: str) -> Dict[str, Interval]:
        """All derived intervals for the ordered pair, keyed by label."""
        result = {}
        for label, group in self.groups.items():
            interval = group.get((x, y))
            if interval is not None:
                result[label] = interval
        return result

    def derived_tcgs(self, x: str, y: str) -> List[TCG]:
        """The derived constraints on an ordered pair, as TCG objects."""
        return [
            TCG(lo, hi, self.types[label])
            for label, (lo, hi) in sorted(self.intervals(x, y).items())
        ]

    def minimal_derived_tcgs(self, x: str, y: str) -> List[TCG]:
        """The derived conjunction with provably redundant entries
        removed (see :mod:`repro.constraints.minimize`)."""
        from .minimize import minimal_tcg_set

        if self.system is None:
            return self.derived_tcgs(x, y)
        return minimal_tcg_set(self.derived_tcgs(x, y), self.system)

    def induced_substructure(
        self, variables: Sequence[str]
    ) -> Optional[EventStructure]:
        """The *induced approximated sub-structure* of Section 5.1.

        Arcs connect pairs (X, Y) from ``variables`` with a path X -> Y
        in the original structure and at least one (original or derived)
        constraint; each such arc carries all the derived TCGs.  Returns
        None when the chosen variables end up with no root reaching all
        of them (the paper requires connected sub-chains).
        """
        chosen = [v for v in self.structure.variables if v in set(variables)]
        constraints: Dict[Arc, List[TCG]] = {}
        for x in chosen:
            for y in chosen:
                if x == y or not self.structure.has_path(x, y):
                    continue
                tcgs = self.derived_tcgs(x, y)
                if tcgs:
                    constraints[(x, y)] = tcgs
        if not constraints and len(chosen) > 1:
            return None
        try:
            return EventStructure(chosen, constraints)
        except ValueError:
            return None

    def derived_structure(self) -> EventStructure:
        """The full derived structure S' = (W, A', Gamma')."""
        substructure = self.induced_substructure(self.structure.variables)
        assert substructure is not None  # the original root still reaches all
        return substructure


def _initial_groups(
    structure: EventStructure, system: GranularitySystem
) -> Tuple[Dict[str, Dict[Arc, Interval]], Dict[str, TemporalType]]:
    groups: Dict[str, Dict[Arc, Interval]] = {}
    types: Dict[str, TemporalType] = {}
    for arc, tcgs in structure.constraints.items():
        for constraint in tcgs:
            label = constraint.label
            types.setdefault(label, system.resolve(constraint.granularity))
            group = groups.setdefault(label, {})
            lo, hi = group.get(arc, (0, float("inf")))
            lo = max(lo, constraint.m)
            hi = min(hi, constraint.n)
            group[arc] = (lo, hi)
    return groups, types


def _close_group(
    variables: Sequence[str], group: Dict[Arc, Interval]
) -> Optional[Dict[Arc, Interval]]:
    """STP closure of one granularity group; None when inconsistent."""
    stp = STP(variables)
    try:
        for (x, y), (lo, hi) in group.items():
            stp.add(x, y, lo, hi)
        stp.closure()
    except InconsistentSTP:
        return None
    return stp.finite_intervals()


def propagate(
    structure: EventStructure,
    system: GranularitySystem,
    extra_granularities: Sequence[TemporalType] = (),
    max_iterations: int = 10_000,
) -> PropagationResult:
    """Run the Section 3.2 approximate propagation to fixpoint.

    ``extra_granularities`` adds target types beyond those appearing in
    the structure (the mining layer passes ``second`` here to obtain
    concrete scan windows).
    """
    groups, types = _initial_groups(structure, system)
    for extra in extra_granularities:
        resolved = system.resolve(extra)
        types.setdefault(resolved.label, resolved)
        groups.setdefault(resolved.label, {})
    labels = sorted(types)
    result = PropagationResult(
        structure=structure,
        consistent=True,
        groups=groups,
        types=types,
        system=system,
    )
    if not groups:
        return result
    variables = structure.variables
    # A TCG [m, n]_mu asserts the time order t1 <= t2 in addition to the
    # tick distance, so a derived STP interval is a valid TCG only for
    # pairs ordered by the DAG (timestamps are non-decreasing along
    # paths).  Keeping reversed/unordered pairs would be unsound.
    ordered_pairs = {
        (x, y)
        for x in variables
        for y in variables
        if x != y and structure.has_path(x, y)
    }
    for iteration in range(1, max_iterations + 1):
        result.iterations = iteration
        # Step 1: path consistency inside each group.
        for label in labels:
            closed = _close_group(variables, groups[label])
            if closed is None:
                result.consistent = False
                return result
            groups[label] = {
                arc: interval
                for arc, interval in closed.items()
                if arc in ordered_pairs
            }
        # Step 2: cross-granularity conversion.
        changed = False
        for src_label in labels:
            for dst_label in labels:
                if src_label == dst_label:
                    continue
                src_type = types[src_label]
                dst_type = types[dst_label]
                if not system.conversion_feasible(src_type, dst_type):
                    continue
                dst_group = groups[dst_label]
                for arc, (lo, hi) in groups[src_label].items():
                    outcome = system.convert(lo, hi, src_type, dst_type)
                    result.conversions_performed += 1
                    if outcome.empty:
                        result.consistent = False
                        return result
                    if outcome.interval is None:
                        continue
                    new_lo, new_hi = outcome.interval
                    old = dst_group.get(arc)
                    if old is not None:
                        new_lo = max(new_lo, old[0])
                        new_hi = min(new_hi, old[1])
                        if new_lo > new_hi:
                            result.consistent = False
                            return result
                    if old is None or (new_lo, new_hi) != old:
                        dst_group[arc] = (new_lo, new_hi)
                        changed = True
        if not changed:
            return result
    raise RuntimeError(
        "propagation did not converge within %d iterations; this "
        "contradicts Theorem 2 and indicates a conversion-table bug"
        % max_iterations
    )


def check_consistency_approx(
    structure: EventStructure, system: GranularitySystem
) -> bool:
    """Sound (incomplete) consistency check: False means *proven*
    inconsistent, True means not refuted."""
    return propagate(structure, system).consistent
