"""Event structures: rooted DAGs of event variables with TCG edges.

An event structure ``(W, A, Gamma)`` (paper Section 3) assigns to each
arc a *conjunction* of TCGs.  This module provides construction with
validation (acyclicity, unique root reaching every variable), traversal
helpers used by the propagation/automata layers, complex event types
(structures with variables instantiated to event types), and the
*induced approximated sub-structures* of Section 5.1.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .tcg import TCG

Arc = Tuple[str, str]


class EventStructure:
    """A rooted DAG over event variables with conjunctive TCG labels.

    Variables are identified by strings.  The structure is immutable
    after construction; use :meth:`with_constraints` to derive a new
    structure with additional/tightened constraints (as the propagation
    algorithm does).
    """

    def __init__(
        self,
        variables: Iterable[str],
        constraints: Mapping[Arc, Sequence[TCG]],
    ):
        self.variables: Tuple[str, ...] = tuple(dict.fromkeys(variables))
        if not self.variables:
            raise ValueError("an event structure needs at least one variable")
        var_set = set(self.variables)
        self.constraints: Dict[Arc, Tuple[TCG, ...]] = {}
        for (src, dst), tcgs in constraints.items():
            if src not in var_set or dst not in var_set:
                raise ValueError("arc (%r, %r) uses unknown variable" % (src, dst))
            if src == dst:
                raise ValueError("self-loop on %r is not allowed" % (src,))
            tcgs = tuple(tcgs)
            if not tcgs:
                raise ValueError("arc (%r, %r) has no TCGs" % (src, dst))
            self.constraints[(src, dst)] = tcgs
        self._succ: Dict[str, List[str]] = {v: [] for v in self.variables}
        self._pred: Dict[str, List[str]] = {v: [] for v in self.variables}
        for src, dst in self.constraints:
            self._succ[src].append(dst)
            self._pred[dst].append(src)
        self.root = self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> str:
        order = self.topological_order()
        if order is None:
            raise ValueError("event structure graph contains a cycle")
        roots = [v for v in self.variables if not self._pred[v]]
        for candidate in roots:
            if self._reaches_all(candidate):
                return candidate
        raise ValueError(
            "event structure has no root reaching every variable"
        )

    def _reaches_all(self, start: str) -> bool:
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for nxt in self._succ[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return len(seen) == len(self.variables)

    # ------------------------------------------------------------------
    # Graph traversal helpers
    # ------------------------------------------------------------------
    def successors(self, variable: str) -> Tuple[str, ...]:
        """Out-neighbours of a variable."""
        return tuple(self._succ[variable])

    def predecessors(self, variable: str) -> Tuple[str, ...]:
        """In-neighbours of a variable."""
        return tuple(self._pred[variable])

    def arcs(self) -> Tuple[Arc, ...]:
        """All arcs, in insertion order."""
        return tuple(self.constraints)

    def tcgs(self, src: str, dst: str) -> Tuple[TCG, ...]:
        """The conjunction of TCGs on an arc (empty if no arc)."""
        return self.constraints.get((src, dst), ())

    def topological_order(self) -> Optional[Tuple[str, ...]]:
        """Kahn topological sort; None if the graph is cyclic."""
        indeg = {v: len(self._pred[v]) for v in self.variables}
        queue = deque(v for v in self.variables if indeg[v] == 0)
        order: List[str] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for nxt in self._succ[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        if len(order) != len(self.variables):
            return None
        return tuple(order)

    def leaves(self) -> Tuple[str, ...]:
        """Variables with no outgoing arcs."""
        return tuple(v for v in self.variables if not self._succ[v])

    def granularities(self):
        """The set ``M`` of temporal types appearing in the constraints."""
        seen = {}
        for tcgs in self.constraints.values():
            for constraint in tcgs:
                seen.setdefault(constraint.label, constraint.granularity)
        return list(seen.values())

    def has_path(self, src: str, dst: str) -> bool:
        """Is there a directed path from ``src`` to ``dst``?"""
        if src == dst:
            return True
        seen = {src}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for nxt in self._succ[node]:
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_constraints(
        self, constraints: Mapping[Arc, Sequence[TCG]]
    ) -> "EventStructure":
        """A new structure over the same variables with given constraints."""
        return EventStructure(self.variables, constraints)

    def is_satisfied_by(self, assignment: Mapping[str, int]) -> bool:
        """Do concrete timestamps satisfy every TCG of the structure?"""
        for (src, dst), tcgs in self.constraints.items():
            t1, t2 = assignment[src], assignment[dst]
            if not all(c.is_satisfied(t1, t2) for c in tcgs):
                return False
        return True

    def chains(self) -> List[Tuple[str, ...]]:
        """Root-to-leaf chains covering every arc (Theorem 3, Step 1).

        Greedy cover: repeatedly route a root-to-leaf path through the
        earliest still-uncovered arc, preferring uncovered arcs when
        extending.  The result covers all arcs with a near-minimal number
        of chains (minimality is not required for correctness).
        """
        uncovered: Set[Arc] = set(self.constraints)
        chains: List[Tuple[str, ...]] = []
        order = self.topological_order()
        assert order is not None  # validated at construction
        position = {v: i for i, v in enumerate(order)}
        while uncovered:
            target = min(uncovered, key=lambda arc: position[arc[0]])
            path = self._path(self.root, target[0])
            path.append(target[1])
            uncovered.discard(target)
            # Extend to a leaf, preferring uncovered arcs.
            node = target[1]
            while self._succ[node]:
                nxt = None
                for candidate in self._succ[node]:
                    if (node, candidate) in uncovered:
                        nxt = candidate
                        break
                if nxt is None:
                    nxt = self._succ[node][0]
                uncovered.discard((node, nxt))
                path.append(nxt)
                node = nxt
            # Mark the prefix arcs covered too.
            for i in range(len(path) - 1):
                uncovered.discard((path[i], path[i + 1]))
            chains.append(tuple(path))
        if not chains:  # single-variable structure
            chains.append((self.root,))
        return chains

    def _path(self, src: str, dst: str) -> List[str]:
        """Some directed path src -> dst (exists for dst reachable)."""
        if src == dst:
            return [src]
        parents: Dict[str, str] = {}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for nxt in self._succ[node]:
                if nxt not in parents and nxt != src:
                    parents[nxt] = node
                    if nxt == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    queue.append(nxt)
        raise ValueError("no path from %r to %r" % (src, dst))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arcs = ", ".join(
            "%s->%s:%s" % (s, d, "&".join(map(str, cs)))
            for (s, d), cs in self.constraints.items()
        )
        return "<EventStructure root=%s [%s]>" % (self.root, arcs)


class ComplexEventType:
    """An event structure with variables instantiated to event types."""

    def __init__(self, structure: EventStructure, assignment: Mapping[str, str]):
        missing = set(structure.variables) - set(assignment)
        if missing:
            raise ValueError("assignment missing variables: %r" % (missing,))
        self.structure = structure
        self.assignment: Dict[str, str] = dict(assignment)

    def event_type(self, variable: str) -> str:
        """The event type assigned to a variable (the paper's ``phi``)."""
        return self.assignment[variable]

    def event_types(self) -> FrozenSet[str]:
        """All event types used by the assignment."""
        return frozenset(self.assignment.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComplexEventType):
            return NotImplemented
        return (
            self.structure is other.structure
            and self.assignment == other.assignment
        )

    def __hash__(self) -> int:
        return hash((id(self.structure), tuple(sorted(self.assignment.items()))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(
            "%s=%s" % (v, self.assignment[v]) for v in self.structure.variables
        )
        return "<ComplexEventType %s>" % pairs
