"""Simple Temporal Problem (STP) solver, after Dechter, Meiri & Pearl.

Within a single granularity, a set of TCGs over the same temporal type is
exactly an STP: variables with binary difference constraints
``m <= X_j - X_i <= n``.  Path consistency on the distance graph (here:
Floyd-Warshall all-pairs shortest paths) computes the *minimal network*
in ``O(|V|^3)`` and detects inconsistency as a negative cycle.

This is the propagation primitive the paper's Section 3.2 algorithm runs
inside each granularity group.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

Interval = Tuple[int, int]

#: Sentinel for "no bound" in the distance matrix.
INF = float("inf")


class InconsistentSTP(Exception):
    """Raised when an STP's distance graph contains a negative cycle."""


class STP:
    """A Simple Temporal Problem over hashable variable names.

    Constraints are intervals on differences: ``add(x, y, lo, hi)``
    asserts ``lo <= y - x <= hi``.  :meth:`closure` computes the minimal
    network (tightest implied intervals for every ordered pair).
    """

    def __init__(self, variables: Iterable[Hashable]):
        self.variables: List[Hashable] = list(dict.fromkeys(variables))
        self._index = {v: i for i, v in enumerate(self.variables)}
        n = len(self.variables)
        # dist[i][j] = tightest known upper bound on var_j - var_i.
        self._dist = [
            [0 if i == j else INF for j in range(n)] for i in range(n)
        ]

    def add(self, x: Hashable, y: Hashable, lo: float, hi: float) -> None:
        """Assert ``lo <= y - x <= hi`` (either bound may be infinite)."""
        if lo > hi:
            raise InconsistentSTP(
                "empty interval [%r, %r] on (%r, %r)" % (lo, hi, x, y)
            )
        i, j = self._index[x], self._index[y]
        if hi < self._dist[i][j]:
            self._dist[i][j] = hi
        if -lo < self._dist[j][i]:
            self._dist[j][i] = -lo

    def closure(self) -> None:
        """Floyd-Warshall path consistency; raises on negative cycles."""
        dist = self._dist
        n = len(dist)
        for k in range(n):
            dk = dist[k]
            for i in range(n):
                dik = dist[i][k]
                if dik is INF or dik == INF:
                    continue
                di = dist[i]
                for j in range(n):
                    candidate = dik + dk[j]
                    if candidate < di[j]:
                        di[j] = candidate
        for i in range(n):
            if dist[i][i] < 0:
                raise InconsistentSTP(
                    "negative cycle through %r" % (self.variables[i],)
                )

    def interval(self, x: Hashable, y: Hashable) -> Tuple[float, float]:
        """Tightest known ``[lo, hi]`` for ``y - x`` (call closure first)."""
        i, j = self._index[x], self._index[y]
        return -self._dist[j][i], self._dist[i][j]

    def finite_intervals(self) -> Dict[Tuple[Hashable, Hashable], Interval]:
        """All ordered pairs with a fully finite, non-trivial interval.

        Only pairs with ``lo >= 0`` are reported, matching the paper's
        convention that constraints follow the DAG direction (the reverse
        pair carries the mirrored information).
        """
        result: Dict[Tuple[Hashable, Hashable], Interval] = {}
        n = len(self.variables)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                hi = self._dist[i][j]
                lo = -self._dist[j][i]
                if hi is INF or hi == INF or lo == -INF:
                    continue
                if lo >= 0:
                    result[(self.variables[i], self.variables[j])] = (
                        int(lo),
                        int(hi),
                    )
        return result


def solve_intervals(
    variables: Iterable[Hashable],
    constraints: Mapping[Tuple[Hashable, Hashable], Interval],
) -> Optional[Dict[Tuple[Hashable, Hashable], Interval]]:
    """One-shot convenience: closure of a constraint map, or None.

    Returns the minimal network's finite forward intervals, or None when
    the STP is inconsistent.
    """
    stp = STP(variables)
    try:
        for (x, y), (lo, hi) in constraints.items():
            stp.add(x, y, lo, hi)
        stp.closure()
    except InconsistentSTP:
        return None
    return stp.finite_intervals()
