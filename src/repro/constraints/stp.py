"""Simple Temporal Problem (STP) solver, after Dechter, Meiri & Pearl.

Within a single granularity, a set of TCGs over the same temporal type is
exactly an STP: variables with binary difference constraints
``m <= X_j - X_i <= n``.  Path consistency on the distance graph (here:
Floyd-Warshall all-pairs shortest paths) computes the *minimal network*
in ``O(|V|^3)`` and detects inconsistency as a negative cycle.

This is the propagation primitive the paper's Section 3.2 algorithm runs
inside each granularity group.

Two closure kernels are available (see :func:`resolve_kernel`):

``python``
    the reference triple loop, exactly as the paper-faithful engine has
    always run it;
``numpy``
    a vectorized Floyd-Warshall (one ``minimum`` broadcast per pivot)
    that produces bit-identical distance matrices for all bounds whose
    magnitude fits exactly in a float64 (``< 2**52``; larger inputs
    silently fall back to the python loop so exactness is never lost).

On top of full closure, :meth:`STP.tighten_many` restores the minimal
network *incrementally* after a batch of arcs tightened - ``O(n^2)``
per tightened arc instead of the ``O(n^3)`` re-closure - which is the
work-saving primitive of the fast-path propagation engine.

Set the environment variable ``REPRO_NO_NUMPY`` to any non-empty value
to ignore an installed numpy (used by CI to prove the pure-Python
fallback path).
"""

from __future__ import annotations

import os
from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..obs import counter as _obs_counter

Interval = Tuple[int, int]

#: Sentinel for "no bound" in the distance matrix.
INF = float("inf")

# Per-(kind, kernel) closure counters, created lazily and cached so the
# hot path is one dict lookup plus a gated increment.
_CLOSURE_COUNTERS: Dict[Tuple[str, str], object] = {}


def _count_closure(kind: str, kernel: str) -> None:
    key = (kind, kernel)
    metric = _CLOSURE_COUNTERS.get(key)
    if metric is None:
        metric = _obs_counter(
            "repro_stp_closures_total",
            "STP minimal-network computations by kind and kernel",
            labels={"kind": kind, "kernel": kernel},
        )
        _CLOSURE_COUNTERS[key] = metric
    metric.inc()

#: Largest magnitude exactly representable as consecutive integers in a
#: float64; beyond it the numpy kernel falls back to exact python.
_FLOAT_EXACT_LIMIT = 2 ** 52

try:  # pragma: no cover - exercised via the no-numpy CI job
    if os.environ.get("REPRO_NO_NUMPY"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in dev envs
    _np = None

#: Closure kernels selectable on :class:`STP`.
KERNELS = ("python", "numpy")


class InconsistentSTP(Exception):
    """Raised when an STP's distance graph contains a negative cycle."""


class EngineUnavailable(RuntimeError):
    """An explicitly requested kernel/engine cannot run here."""


def have_numpy() -> bool:
    """Is the vectorized kernel available in this process?"""
    return _np is not None


def default_kernel() -> str:
    """The kernel ``"auto"`` resolves to: numpy when available."""
    return "numpy" if _np is not None else "python"


def resolve_kernel(kernel: str) -> str:
    """Normalise a kernel name (``auto`` picks the best available).

    Raises :class:`EngineUnavailable` when ``numpy`` is requested
    explicitly but the import failed (or was disabled via
    ``REPRO_NO_NUMPY``).
    """
    if kernel == "auto":
        return default_kernel()
    if kernel not in KERNELS:
        raise ValueError(
            "unknown closure kernel %r (expected one of %r or 'auto')"
            % (kernel, KERNELS)
        )
    if kernel == "numpy" and _np is None:
        raise EngineUnavailable(
            "the numpy closure kernel was requested but numpy is not "
            "importable (or REPRO_NO_NUMPY is set)"
        )
    return kernel


class STP:
    """A Simple Temporal Problem over hashable variable names.

    Constraints are intervals on differences: ``add(x, y, lo, hi)``
    asserts ``lo <= y - x <= hi``.  :meth:`closure` computes the minimal
    network (tightest implied intervals for every ordered pair).

    ``kernel`` selects the closure implementation (``"python"``,
    ``"numpy"`` or ``"auto"``); every kernel yields exactly the same
    minimal network, which the differential test oracle in
    ``tests/differential/`` verifies case by case.
    """

    def __init__(self, variables: Iterable[Hashable], kernel: str = "python"):
        self.variables: List[Hashable] = list(dict.fromkeys(variables))
        self._index = {v: i for i, v in enumerate(self.variables)}
        self.kernel = resolve_kernel(kernel)
        n = len(self.variables)
        # dist[i][j] = tightest known upper bound on var_j - var_i.
        self._dist = [
            [0 if i == j else INF for j in range(n)] for i in range(n)
        ]

    def add(self, x: Hashable, y: Hashable, lo: float, hi: float) -> None:
        """Assert ``lo <= y - x <= hi`` (either bound may be infinite)."""
        if lo > hi:
            raise InconsistentSTP(
                "empty interval [%r, %r] on (%r, %r)" % (lo, hi, x, y)
            )
        i, j = self._index[x], self._index[y]
        if hi < self._dist[i][j]:
            self._dist[i][j] = hi
        if -lo < self._dist[j][i]:
            self._dist[j][i] = -lo

    # ------------------------------------------------------------------
    # Closure
    # ------------------------------------------------------------------
    def closure(self) -> None:
        """Floyd-Warshall path consistency; raises on negative cycles."""
        if self.kernel == "numpy" and self._numpy_exact():
            _count_closure("full", "numpy")
            self._closure_numpy()
        else:
            # Counts what actually ran: a numpy STP outside the exact
            # float64 range executes (and records) the python loop.
            _count_closure("full", "python")
            self._closure_python()
        dist = self._dist
        for i in range(len(dist)):
            if dist[i][i] < 0:
                raise InconsistentSTP(
                    "negative cycle through %r" % (self.variables[i],)
                )

    def _closure_python(self) -> None:
        dist = self._dist
        n = len(dist)
        for k in range(n):
            dk = dist[k]
            for i in range(n):
                dik = dist[i][k]
                if dik is INF or dik == INF:
                    continue
                di = dist[i]
                for j in range(n):
                    candidate = dik + dk[j]
                    if candidate < di[j]:
                        di[j] = candidate

    def _closure_numpy(self) -> None:
        n = len(self._dist)
        if n == 0:
            return
        a = _np.array(self._dist, dtype=_np.float64)
        for k in range(n):
            _np.minimum(a, a[:, k : k + 1] + a[k : k + 1, :], out=a)
        self._write_back(a)

    def _numpy_exact(self) -> bool:
        """Can float64 arithmetic reproduce the python loop exactly?

        True when every finite bound (and hence every path sum, which
        the per-node magnitude bound caps at ``n`` times the largest
        edge) stays within the float64 exact-integer range.
        """
        n = len(self._dist)
        worst = 0
        for row in self._dist:
            for value in row:
                if value != INF and value == value:  # finite
                    magnitude = abs(value)
                    if magnitude > worst:
                        worst = magnitude
        return worst * max(n, 1) < _FLOAT_EXACT_LIMIT

    def _write_back(self, array) -> None:
        """Store a float64 matrix back as python ints/INF rows."""
        dist = self._dist
        n = len(dist)
        isinf = _np.isinf(array)
        for i in range(n):
            row = dist[i]
            arow = array[i]
            irow = isinf[i]
            for j in range(n):
                if irow[j]:
                    row[j] = INF
                else:
                    value = arow[j]
                    as_int = int(value)
                    row[j] = as_int if as_int == value else float(value)

    # ------------------------------------------------------------------
    # Incremental re-closure
    # ------------------------------------------------------------------
    def tighten_many(
        self,
        updates: Sequence[Tuple[Tuple[Hashable, Hashable], float, float]],
    ) -> None:
        """Apply tightened arcs to an already-closed STP, restoring the
        minimal network incrementally.

        ``updates`` is a sequence of ``((x, y), lo, hi)`` entries.  The
        matrix must currently be path-consistent (i.e. :meth:`closure`
        ran and did not raise); each arc is then relaxed against the
        closed matrix in ``O(n^2)``, which is the standard exact
        incremental all-pairs update for an edge-weight decrease.
        Raises :class:`InconsistentSTP` when a tightening creates a
        negative cycle (the matrix contents are then unspecified, like
        a failed :meth:`closure`).

        Large batches switch to a plain re-closure: ``k`` tightened
        arcs cost ``O(k n^2)`` incrementally but only ``O(n^3)`` (and
        vectorized, on the numpy kernel) as one full closure, so past
        ``2 k >= n`` the full pass is the cheaper *and* equally exact
        route - both compute the unique minimal network of the same
        updated constraint graph.
        """
        n = len(self._dist)
        if 2 * len(updates) >= n:
            for (x, y), lo, hi in updates:
                self.add(x, y, lo, hi)
            self.closure()
            return
        _count_closure("incremental", "python")
        for (x, y), lo, hi in updates:
            if lo > hi:
                raise InconsistentSTP(
                    "empty interval [%r, %r] on (%r, %r)" % (lo, hi, x, y)
                )
            i, j = self._index[x], self._index[y]
            self._relax_edge(i, j, hi)
            self._relax_edge(j, i, -lo)
        dist = self._dist
        for i in range(len(dist)):
            if dist[i][i] < 0:
                raise InconsistentSTP(
                    "negative cycle through %r" % (self.variables[i],)
                )

    def tighten(self, x: Hashable, y: Hashable, lo: float, hi: float) -> None:
        """Single-arc convenience form of :meth:`tighten_many`."""
        self.tighten_many([((x, y), lo, hi)])

    def _relax_edge(self, u: int, v: int, weight: float) -> None:
        """Relax every pair through a new/tightened edge ``u -> v``.

        For a closed matrix, ``dist[a][b] = min(dist[a][b],
        dist[a][u] + weight + dist[v][b])`` over all pairs restores
        closure after the single edge decrease.
        """
        dist = self._dist
        if weight >= dist[u][v]:
            # Not actually tighter: by the triangle inequality of the
            # closed matrix, no pair can improve through this edge.
            return
        n = len(dist)
        for a in range(n):
            dau = dist[a][u]
            if dau is INF or dau == INF:
                continue
            base = dau + weight
            if base == INF:
                continue
            da = dist[a]
            dv = dist[v]
            for b in range(n):
                candidate = base + dv[b]
                if candidate < da[b]:
                    da[b] = candidate

    # ------------------------------------------------------------------
    # Reading the network
    # ------------------------------------------------------------------
    def interval(self, x: Hashable, y: Hashable) -> Tuple[float, float]:
        """Tightest known ``[lo, hi]`` for ``y - x`` (call closure first)."""
        i, j = self._index[x], self._index[y]
        return -self._dist[j][i], self._dist[i][j]

    def finite_intervals(self) -> Dict[Tuple[Hashable, Hashable], Interval]:
        """All ordered pairs with a fully finite, non-trivial interval.

        Only pairs with ``lo >= 0`` are reported, matching the paper's
        convention that constraints follow the DAG direction (the reverse
        pair carries the mirrored information).
        """
        result: Dict[Tuple[Hashable, Hashable], Interval] = {}
        n = len(self.variables)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                hi = self._dist[i][j]
                lo = -self._dist[j][i]
                if hi is INF or hi == INF or lo == -INF:
                    continue
                if lo >= 0:
                    result[(self.variables[i], self.variables[j])] = (
                        int(lo),
                        int(hi),
                    )
        return result


def solve_intervals(
    variables: Iterable[Hashable],
    constraints: Mapping[Tuple[Hashable, Hashable], Interval],
    kernel: str = "python",
) -> Optional[Dict[Tuple[Hashable, Hashable], Interval]]:
    """One-shot convenience: closure of a constraint map, or None.

    Returns the minimal network's finite forward intervals, or None when
    the STP is inconsistent.
    """
    stp = STP(variables, kernel=kernel)
    try:
        for (x, y), (lo, hi) in constraints.items():
            stp.add(x, y, lo, hi)
        stp.closure()
    except InconsistentSTP:
        return None
    return stp.finite_intervals()
