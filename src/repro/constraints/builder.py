"""Fluent construction of event structures from compact text.

Writing nested dict literals of TCG objects gets verbose; this module
provides the ergonomic front end:

    pattern = (
        StructureBuilder(system)
        .variables("alert", "ack", "page")
        .arc("alert", "ack", "[1,1]b-day")
        .arc("ack", "page", "[0,4]hour & [0,0]week")
        .build()
    )

TCG conjunctions are written exactly as the paper (and this library's
``str(TCG)``) prints them: ``[m,n]granularity`` terms joined by ``&``.
Granularity names resolve through the system, including parser
expressions such as ``group(month,3)``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..granularity.parser import parse_type
from ..granularity.registry import GranularitySystem
from .structure import ComplexEventType, EventStructure
from .tcg import TCG

_TERM = re.compile(r"^\s*\[\s*(\d+)\s*,\s*(\d+)\s*\]\s*(\S.*?)\s*$")


def parse_tcg(text: str, system: GranularitySystem) -> TCG:
    """Parse one ``[m,n]granularity`` term."""
    match = _TERM.match(text)
    if match is None:
        raise ValueError(
            "expected '[m,n]granularity', got %r" % (text,)
        )
    m, n = int(match.group(1)), int(match.group(2))
    granularity = parse_type(match.group(3), system)
    return TCG(m, n, granularity)


def parse_tcg_conjunction(
    text: str, system: GranularitySystem
) -> List[TCG]:
    """Parse an ``&``-joined conjunction of TCG terms."""
    terms = [part for part in text.split("&") if part.strip()]
    if not terms:
        raise ValueError("empty TCG conjunction")
    return [parse_tcg(term, system) for term in terms]


class StructureBuilder:
    """Accumulate variables and arcs, then build a validated structure.

    Variables referenced by :meth:`arc` are declared implicitly (in
    first-use order); :meth:`variables` pins an explicit order when the
    root's identity matters for readability.
    """

    def __init__(self, system: GranularitySystem):
        self.system = system
        self._variables: List[str] = []
        self._constraints: Dict[Tuple[str, str], List[TCG]] = {}

    def variables(self, *names: str) -> "StructureBuilder":
        """Declare variables explicitly (idempotent, order-preserving)."""
        for name in names:
            if name not in self._variables:
                self._variables.append(name)
        return self

    def arc(
        self, src: str, dst: str, tcgs: "str | List[TCG] | TCG"
    ) -> "StructureBuilder":
        """Add an arc with its TCG conjunction (text or objects)."""
        self.variables(src, dst)
        if isinstance(tcgs, str):
            parsed = parse_tcg_conjunction(tcgs, self.system)
        elif isinstance(tcgs, TCG):
            parsed = [tcgs]
        else:
            parsed = list(tcgs)
        self._constraints.setdefault((src, dst), []).extend(parsed)
        return self

    def build(self) -> EventStructure:
        """Validate and return the event structure."""
        return EventStructure(self._variables, self._constraints)

    def build_pattern(self, **assignment: str) -> ComplexEventType:
        """Build and instantiate in one step: keyword args map variables
        to event types."""
        return ComplexEventType(self.build(), assignment)


def structure_from_text(
    arcs: Dict[Tuple[str, str], str], system: GranularitySystem
) -> EventStructure:
    """One-shot variant: ``{(src, dst): "[m,n]g & ...", ...}``."""
    builder = StructureBuilder(system)
    for (src, dst), text in arcs.items():
        builder.arc(src, dst, text)
    return builder.build()
