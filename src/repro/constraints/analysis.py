"""Exact structure analysis: minimal networks and hidden disjunctions.

The paper observes that a *complete* propagation algorithm - one always
deriving the tightest constraints - cannot be polynomial (it would
decide the NP-hard consistency problem).  This module provides that
complete analysis as an explicitly exponential tool, built on the exact
enumeration of :mod:`repro.constraints.consistency`:

* :func:`exact_distance_sets` - for every ordered variable pair, the
  exact set of realisable tick distances in a chosen granularity;
* :func:`minimal_intervals` - the tightest implied intervals (the
  convex hulls of those sets), i.e. what a complete propagation would
  output;
* :func:`find_disjunctions` - pairs whose realisable distance set has
  holes (the Figure 1(b) phenomenon), invisible to interval-based
  propagation by construction;
* :func:`tightness_report` - side-by-side comparison of the polynomial
  approximate propagation against the exact minimal network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..granularity.registry import GranularitySystem
from .consistency import distance_values
from .propagation import propagate
from .structure import EventStructure

Pair = Tuple[str, str]


def ordered_pairs(structure: EventStructure) -> List[Pair]:
    """All DAG-ordered variable pairs (x before y on some path)."""
    return [
        (x, y)
        for x in structure.variables
        for y in structure.variables
        if x != y and structure.has_path(x, y)
    ]


def exact_distance_sets(
    structure: EventStructure,
    system: GranularitySystem,
    granularity,
    window_seconds: int,
    max_nodes: int = 2_000_000,
) -> Dict[Pair, List[int]]:
    """Exact realisable tick-distance sets for every ordered pair.

    Exponential (full assignment enumeration per pair); meant for
    small analysis-time structures, exactly as Theorem 1 dictates.
    """
    return {
        pair: distance_values(
            structure,
            system,
            pair[0],
            pair[1],
            granularity,
            window_seconds,
            max_nodes=max_nodes,
        )
        for pair in ordered_pairs(structure)
    }


def minimal_intervals(
    structure: EventStructure,
    system: GranularitySystem,
    granularity,
    window_seconds: int,
    max_nodes: int = 2_000_000,
) -> Dict[Pair, Optional[Tuple[int, int]]]:
    """Tightest implied intervals (complete-propagation output)."""
    sets = exact_distance_sets(
        structure, system, granularity, window_seconds, max_nodes=max_nodes
    )
    return {
        pair: (values[0], values[-1]) if values else None
        for pair, values in sets.items()
    }


@dataclass(frozen=True)
class Disjunction:
    """A pair whose realisable distance set has gaps."""

    pair: Pair
    granularity_label: str
    values: Tuple[int, ...]

    @property
    def holes(self) -> Tuple[int, ...]:
        """The missing values strictly inside the convex hull."""
        present = set(self.values)
        return tuple(
            value
            for value in range(self.values[0], self.values[-1] + 1)
            if value not in present
        )


def find_disjunctions(
    structure: EventStructure,
    system: GranularitySystem,
    granularity,
    window_seconds: int,
    max_nodes: int = 2_000_000,
) -> List[Disjunction]:
    """Pairs exhibiting the Figure 1(b) effect in a granularity."""
    ttype = system.resolve(granularity)
    result = []
    for pair, values in exact_distance_sets(
        structure, system, ttype, window_seconds, max_nodes=max_nodes
    ).items():
        if len(values) >= 2 and values[-1] - values[0] + 1 > len(values):
            result.append(
                Disjunction(
                    pair=pair,
                    granularity_label=ttype.label,
                    values=tuple(values),
                )
            )
    return result


@dataclass
class TightnessRow:
    """One pair's approximate-vs-exact comparison."""

    pair: Pair
    approximate: Optional[Tuple[int, int]]
    exact: Optional[Tuple[int, int]]

    @property
    def is_tight(self) -> bool:
        """Did the polynomial propagation already reach the hull?"""
        return self.approximate == self.exact

    @property
    def slack(self) -> Optional[int]:
        """Interval-length excess of the approximation (None if either
        side is missing)."""
        if self.approximate is None or self.exact is None:
            return None
        approx_len = self.approximate[1] - self.approximate[0]
        exact_len = self.exact[1] - self.exact[0]
        return approx_len - exact_len


def tightness_report(
    structure: EventStructure,
    system: GranularitySystem,
    granularity,
    window_seconds: int,
    max_nodes: int = 2_000_000,
) -> List[TightnessRow]:
    """Approximate propagation vs the exact minimal network, per pair.

    Quantifies the paper's incompleteness discussion: where (and by how
    much) the polynomial algorithm stops short of the NP-hard optimum.
    """
    ttype = system.resolve(granularity)
    approx = propagate(structure, system, extra_granularities=[ttype])
    exact = minimal_intervals(
        structure, system, ttype, window_seconds, max_nodes=max_nodes
    )
    rows = []
    for pair in ordered_pairs(structure):
        rows.append(
            TightnessRow(
                pair=pair,
                approximate=approx.interval(pair[0], pair[1], ttype.label),
                exact=exact.get(pair),
            )
        )
    return rows
