"""Stochastic event processes: background streams for simulations.

The paper motivates mining as analysing "the process that we are
monitoring"; this module provides generative models of such processes
so experiments can control the ground truth:

* :class:`PoissonProcess` - memoryless arrivals of one or more types;
* :class:`RenewalProcess` - arrivals with arbitrary inter-arrival
  samplers (e.g. uniform business-hours spacing);
* :class:`CompositeProcess` - superposition of processes.

All processes are deterministic given their ``random.Random`` and
produce plain event lists; combine with
:mod:`repro.simulation.rules` to add causal structure.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Sequence, Tuple

from ..mining.events import Event


class PoissonProcess:
    """Homogeneous Poisson arrivals over a set of event types.

    ``rate`` is events per second (for all types together); each
    arrival draws its type from ``types`` with optional ``weights``.
    """

    def __init__(
        self,
        types: Sequence[str],
        rate: float,
        weights: Sequence[float] = None,
        align: int = 1,
    ):
        if not types:
            raise ValueError("at least one event type is required")
        if rate <= 0:
            raise ValueError("rate must be positive")
        if align <= 0:
            raise ValueError("align must be positive")
        self.types = list(types)
        self.rate = rate
        self.weights = list(weights) if weights is not None else None
        if self.weights is not None and len(self.weights) != len(self.types):
            raise ValueError("one weight per type is required")
        self.align = align

    def generate(
        self, start: int, stop: int, rng: random.Random
    ) -> List[Event]:
        """Arrivals in ``[start, stop]`` (inclusive bounds)."""
        if stop < start:
            raise ValueError("empty window")
        events: List[Event] = []
        t = float(start)
        while True:
            t += rng.expovariate(self.rate)
            if t > stop:
                break
            etype = (
                rng.choices(self.types, weights=self.weights)[0]
                if self.weights
                else rng.choice(self.types)
            )
            stamp = int(t)
            stamp -= stamp % self.align
            if stamp >= start:
                events.append(Event(etype, stamp))
        return events


class RenewalProcess:
    """Arrivals separated by draws from an inter-arrival sampler.

    ``interarrival`` is called with the rng and returns a positive
    number of seconds; the first arrival is one draw after ``start``.
    """

    def __init__(
        self,
        etype: str,
        interarrival: Callable[[random.Random], float],
        align: int = 1,
    ):
        if align <= 0:
            raise ValueError("align must be positive")
        self.etype = etype
        self.interarrival = interarrival
        self.align = align

    def generate(
        self, start: int, stop: int, rng: random.Random
    ) -> List[Event]:
        if stop < start:
            raise ValueError("empty window")
        events: List[Event] = []
        t = float(start)
        while True:
            gap = float(self.interarrival(rng))
            if gap <= 0 or not math.isfinite(gap):
                raise ValueError("interarrival sampler must return > 0")
            t += gap
            if t > stop:
                break
            stamp = int(t)
            stamp -= stamp % self.align
            events.append(Event(self.etype, max(stamp, start)))
        return events


class CompositeProcess:
    """Superposition: the union of several processes' arrivals."""

    def __init__(self, processes: Sequence):
        if not processes:
            raise ValueError("at least one process is required")
        self.processes = list(processes)

    def generate(
        self, start: int, stop: int, rng: random.Random
    ) -> List[Event]:
        events: List[Event] = []
        for process in self.processes:
            events.extend(process.generate(start, stop, rng))
        events.sort(key=lambda e: e.time)
        return events


def uniform_interarrival(
    lo: float, hi: float
) -> Callable[[random.Random], float]:
    """A uniform inter-arrival sampler factory for RenewalProcess."""
    if not 0 < lo <= hi:
        raise ValueError("need 0 < lo <= hi")
    return lambda rng: rng.uniform(lo, hi)
