"""Causal trigger rules: plant temporal structure into simulations.

A :class:`TriggerRule` says "each CAUSE event produces an EFFECT event
with probability p, at a delay drawn from a sampler" - the generative
counterpart of the patterns the mining layer discovers.  The
:class:`RuleSimulator` runs a background process and applies rules
(including chains: effects can trigger further rules), producing an
:class:`~repro.mining.events.EventSequence` whose ground-truth causal
links are returned alongside.

The round trip - simulate with a rule, mine with the matching event
structure, recover the rule's confidence - is the integration test of
the whole library (see ``tests/simulation``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..mining.events import Event, EventSequence


@dataclass(frozen=True)
class TriggerRule:
    """CAUSE -> EFFECT with probability and a delay sampler (seconds)."""

    cause: str
    effect: str
    probability: float
    delay: Callable[[random.Random], float]
    align: int = 60

    def __post_init__(self) -> None:
        if not 0 <= self.probability <= 1:
            raise ValueError("probability must be within [0, 1]")
        if self.align <= 0:
            raise ValueError("align must be positive")

    def fire(
        self, cause_time: int, rng: random.Random
    ) -> Optional[int]:
        """The effect's timestamp, or None when the rule doesn't fire."""
        if rng.random() >= self.probability:
            return None
        delay = float(self.delay(rng))
        if delay < 0:
            raise ValueError("delay sampler must be non-negative")
        stamp = int(cause_time + delay)
        return stamp - stamp % self.align


@dataclass
class SimulationResult:
    """The generated sequence plus ground-truth causal links."""

    sequence: EventSequence
    #: (cause event, effect event) pairs, in cause-time order.
    links: List[Tuple[Event, Event]] = field(default_factory=list)

    def rule_confidence(self, cause: str, effect: str) -> float:
        """Observed fraction of ``cause`` events with a planted effect."""
        causes = sum(1 for e in self.sequence if e.etype == cause)
        if causes == 0:
            return 0.0
        fired = sum(
            1
            for c, e in self.links
            if c.etype == cause and e.etype == effect
        )
        return fired / causes


class RuleSimulator:
    """Background process + trigger rules, with chained causation."""

    def __init__(
        self,
        background,
        rules: Sequence[TriggerRule],
        max_chain_depth: int = 4,
    ):
        if max_chain_depth < 1:
            raise ValueError("max_chain_depth must be >= 1")
        self.background = background
        self.rules = list(rules)
        self.max_chain_depth = max_chain_depth
        self._by_cause: Dict[str, List[TriggerRule]] = {}
        for rule in self.rules:
            self._by_cause.setdefault(rule.cause, []).append(rule)

    def run(
        self, start: int, stop: int, rng: random.Random
    ) -> SimulationResult:
        """Simulate the window; effects beyond ``stop`` are kept (the
        causal chain is part of the ground truth)."""
        base_events = self.background.generate(start, stop, rng)
        all_events: List[Event] = list(base_events)
        links: List[Tuple[Event, Event]] = []
        frontier = [(event, 1) for event in base_events]
        while frontier:
            event, depth = frontier.pop(0)
            if depth > self.max_chain_depth:
                continue
            for rule in self._by_cause.get(event.etype, ()):
                effect_time = rule.fire(event.time, rng)
                if effect_time is None:
                    continue
                effect = Event(rule.effect, effect_time)
                all_events.append(effect)
                links.append((event, effect))
                frontier.append((effect, depth + 1))
        links.sort(key=lambda pair: pair[0].time)
        return SimulationResult(
            sequence=EventSequence(all_events), links=links
        )


def fixed_delay(seconds: float) -> Callable[[random.Random], float]:
    """A constant-delay sampler."""
    if seconds < 0:
        raise ValueError("delay must be non-negative")
    return lambda rng: seconds


def uniform_delay(
    lo: float, hi: float
) -> Callable[[random.Random], float]:
    """A uniform-delay sampler."""
    if not 0 <= lo <= hi:
        raise ValueError("need 0 <= lo <= hi")
    return lambda rng: rng.uniform(lo, hi)
