"""Stochastic workload simulation: processes and causal trigger rules."""

from .processes import (
    CompositeProcess,
    PoissonProcess,
    RenewalProcess,
    uniform_interarrival,
)
from .rules import (
    RuleSimulator,
    SimulationResult,
    TriggerRule,
    fixed_delay,
    uniform_delay,
)

__all__ = [
    "PoissonProcess",
    "RenewalProcess",
    "CompositeProcess",
    "uniform_interarrival",
    "TriggerRule",
    "RuleSimulator",
    "SimulationResult",
    "fixed_delay",
    "uniform_delay",
]
