"""A quarantine (dead-letter) channel for malformed input records.

Loading a million-line event log must not abort on line 317's typo.
Callers pass a :class:`Quarantine` to the loaders
(:meth:`repro.store.EventStore.load_jsonl`,
:func:`repro.io.csvlog.read_events`) or maintain one around a
streaming feed; each malformed record is captured with its source line
number, a human-readable reason, and the raw payload, and loading
continues.  The channel is inspectable afterwards (count, per-reason
summary) and can be persisted for replay once the upstream bug is
fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Any, Dict, Iterator, List, Optional, Union


@dataclass(frozen=True)
class QuarantinedRecord:
    """One rejected input record: where, why, and what it was."""

    reason: str
    raw: Any = None
    line: Optional[int] = None
    source: Optional[str] = None

    def __str__(self) -> str:
        location = "line %s" % self.line if self.line is not None else "?"
        if self.source:
            location = "%s:%s" % (self.source, location)
        return "[%s] %s: %r" % (location, self.reason, self.raw)


class Quarantine:
    """Collects rejected records instead of aborting a load or a feed."""

    def __init__(self, source: Optional[str] = None):
        self.source = source
        self._records: List[QuarantinedRecord] = []

    # ------------------------------------------------------------------
    def add(
        self,
        reason: str,
        raw: Any = None,
        line: Optional[int] = None,
    ) -> QuarantinedRecord:
        """Record one rejection; returns the stored entry."""
        record = QuarantinedRecord(
            reason=reason, raw=raw, line=line, source=self.source
        )
        self._records.append(record)
        return record

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def __iter__(self) -> Iterator[QuarantinedRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[QuarantinedRecord]:
        return list(self._records)

    def reasons(self) -> Dict[str, int]:
        """Histogram of rejection reasons (first line of each reason)."""
        histogram: Dict[str, int] = {}
        for record in self._records:
            key = record.reason.splitlines()[0]
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def summary(self) -> str:
        """One-paragraph human summary for logs and CLI output."""
        if not self._records:
            return "quarantine empty"
        lines = ["quarantined %d record(s):" % len(self._records)]
        for reason, count in sorted(self.reasons().items()):
            lines.append("  %4d x %s" % (count, reason))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def save_jsonl(self, target: Union[str, IO]) -> None:
        """Persist the dead letters, one JSON object per line."""
        if isinstance(target, str):
            with open(target, "w") as handle:
                self.save_jsonl(handle)
            return
        for record in self._records:
            target.write(
                json.dumps(
                    {
                        "reason": record.reason,
                        "raw": _jsonable(record.raw),
                        "line": record.line,
                        "source": record.source,
                    },
                    sort_keys=True,
                )
                + "\n"
            )


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)
