"""Shared error types and edge validation for the ingestion path.

Every layer that accepts raw events from the outside world (the
streaming matcher, the event store, the file loaders) funnels its
input through :func:`validate_event`, so a bad record fails with one
well-known exception type - :class:`EventValidationError` - instead of
corrupting indexes or automata state downstream.  Both error classes
subclass :class:`ValueError` so existing ``except ValueError`` call
sites keep working.
"""

from __future__ import annotations

from typing import Any, Optional


class EventValidationError(ValueError):
    """A raw event failed edge validation (bad type or timestamp).

    Carries the offending values so quarantine channels can report
    *why* a record was rejected without re-parsing it.
    """

    def __init__(self, reason: str, etype: Any = None, time: Any = None):
        super().__init__(reason)
        self.reason = reason
        self.etype = etype
        self.time = time


class StreamFeedError(ValueError):
    """A failure while feeding a sequence, with event provenance.

    Wraps the underlying error (available as ``__cause__``) together
    with the position, type and timestamp of the offending event so a
    failure deep in a long replay is diagnosable.
    """

    def __init__(
        self,
        index: int,
        etype: Any,
        time: Any,
        cause: Exception,
    ):
        super().__init__(
            "event #%d (%r @ %r): %s" % (index, etype, time, cause)
        )
        self.index = index
        self.etype = etype
        self.time = time


def validate_event(etype: Any, time: Any) -> None:
    """Reject malformed raw events before they touch any state.

    Rules: ``etype`` must be a non-empty string; ``time`` must be a
    non-negative integer (``bool`` is excluded even though it is an
    ``int`` subclass).  Raises :class:`EventValidationError`.
    """
    if not isinstance(etype, str) or not etype:
        raise EventValidationError(
            "event type must be a non-empty string, got %r" % (etype,),
            etype=etype,
            time=time,
        )
    if isinstance(time, bool) or not isinstance(time, int):
        raise EventValidationError(
            "timestamp must be an integer, got %r" % (time,),
            etype=etype,
            time=time,
        )
    if time < 0:
        raise EventValidationError(
            "timestamp must be non-negative, got %d" % time,
            etype=etype,
            time=time,
        )


def describe_invalid(etype: Any, time: Any) -> Optional[str]:
    """The validation failure reason for a raw event, or None if valid."""
    try:
        validate_event(etype, time)
    except EventValidationError as exc:
        return exc.reason
    return None
