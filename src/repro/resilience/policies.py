"""Degradation policies for anchor overflow.

A streaming matcher opens one anchor per root-type event; under bursty
traffic the live-anchor population can exceed any fixed budget.  The
policies here decide what happens at that point:

* ``raise`` - refuse (the historical behaviour): fail fast with
  :class:`RuntimeError` and tell the operator to set a horizon;
* ``shed-oldest`` - drop the oldest live anchors (keep recent roots:
  right for monitors where fresh activity matters most);
* ``shed-newest`` - refuse new anchors while at capacity (keep the
  oldest in-flight candidates: right when near-complete detections
  are more valuable than new starts);
* ``sample`` - keep an evenly spaced subset across the whole window
  (an unbiased-ish census under overload).

``sample`` is deterministic (index-stride decimation, no RNG) so that
checkpoint/restore and replay stay reproducible.  All shedding reports
how many anchors were dropped; callers surface the count through their
stats so degraded detection is visible, never silent.
"""

from __future__ import annotations

from typing import List, Tuple, TypeVar

AnchorT = TypeVar("AnchorT")

RAISE = "raise"
SHED_OLDEST = "shed-oldest"
SHED_NEWEST = "shed-newest"
SAMPLE = "sample"

#: The accepted overflow-policy names, in documentation order.
OVERFLOW_POLICIES = (RAISE, SHED_OLDEST, SHED_NEWEST, SAMPLE)


def normalize_overflow_policy(name: str) -> str:
    """Validate a policy name; raises ValueError on an unknown one."""
    if name not in OVERFLOW_POLICIES:
        raise ValueError(
            "unknown overflow policy %r (expected one of %s)"
            % (name, ", ".join(OVERFLOW_POLICIES))
        )
    return name


def apply_overflow(
    anchors: List[AnchorT], max_live: int, policy: str
) -> Tuple[List[AnchorT], int]:
    """Reduce ``anchors`` (oldest first) to at most ``max_live``.

    Returns ``(kept, shed_count)``.  For ``raise`` the overflow is a
    :class:`RuntimeError`, matching the historical fail-fast message.
    """
    excess = len(anchors) - max_live
    if excess <= 0:
        return anchors, 0
    if policy == RAISE:
        raise RuntimeError(
            "more than %d live anchors; set a horizon" % max_live
        )
    if policy == SHED_OLDEST:
        return anchors[excess:], excess
    if policy == SHED_NEWEST:
        return anchors[:max_live], excess
    if policy == SAMPLE:
        total = len(anchors)
        kept = [anchors[i * total // max_live] for i in range(max_live)]
        return kept, excess
    raise ValueError("unknown overflow policy %r" % (policy,))
