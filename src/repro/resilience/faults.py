"""Deterministic fault injection for chaos-style stream testing.

A :class:`FaultInjector` takes a clean, time-ordered event stream and a
seed, and produces the dirty arrival stream a real feed would deliver:
events dropped, duplicated, delayed (arriving out of timestamp order),
or corrupted (malformed type/timestamp that must be quarantined).  The
transformation is a pure function of ``(seed, parameters, input)``, so
every chaos test is replayable from its seed.

Delays are expressed in *seconds of arrival lateness*: a delayed event
keeps its timestamp ``t`` but arrives as if emitted at ``t + delay``
with ``delay <= max_delay``.  Therefore a reorder buffer with
``max_lateness >= max_delay`` is guaranteed to reorder every delayed
event back into place - the invariant the chaos acceptance test
checks.

Alongside the dirty ``stream``, :meth:`FaultInjector.inject` returns
the ``clean`` reference - the surviving valid events in timestamp
order - which is exactly what an uninterrupted, fault-free matcher
would consume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple


@dataclass
class InjectionResult:
    """The dirty arrival stream plus its fault bookkeeping.

    ``stream`` is what the system under test receives (arrival order;
    corrupt records keep their slot).  ``clean`` is the reference: all
    surviving valid events (duplicates included) in timestamp order.
    """

    stream: List[Tuple[Any, Any]]
    clean: List[Tuple[str, int]]
    stats: Dict[str, int] = field(default_factory=dict)


class FaultInjector:
    """Seeded drop/duplicate/delay/corrupt transformation of a stream."""

    def __init__(
        self,
        seed: int,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        max_delay: int = 0,
        corrupt_rate: float = 0.0,
    ):
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_rate", delay_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("%s must be in [0, 1]" % name)
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.seed = seed
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.max_delay = max_delay
        self.corrupt_rate = corrupt_rate

    # ------------------------------------------------------------------
    def inject(self, events: Iterable[Any]) -> InjectionResult:
        """Apply the faults to a clean stream; see module docstring."""
        rng = random.Random(self.seed)
        stats = {
            "total": 0,
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "corrupted": 0,
            "emitted": 0,
        }
        #: (arrival_time, sequence, payload, valid, etype, time)
        emitted: List[Tuple[int, int, Tuple[Any, Any], bool, str, int]] = []
        sequence = 0
        for event in events:
            etype, time = event[0], event[1]
            stats["total"] += 1
            if rng.random() < self.drop_rate:
                stats["dropped"] += 1
                continue
            copies = 1
            if rng.random() < self.duplicate_rate:
                stats["duplicated"] += 1
                copies = 2
            for _ in range(copies):
                delay = 0
                if self.max_delay and rng.random() < self.delay_rate:
                    delay = rng.randint(1, self.max_delay)
                    stats["delayed"] += 1
                payload: Tuple[Any, Any] = (etype, time)
                valid = True
                if rng.random() < self.corrupt_rate:
                    payload = self._corrupt(rng, etype, time)
                    valid = False
                    stats["corrupted"] += 1
                emitted.append(
                    (time + delay, sequence, payload, valid, etype, time)
                )
                sequence += 1
        emitted.sort(key=lambda item: (item[0], item[1]))
        stream = [item[2] for item in emitted]
        clean = sorted(
            (
                (item[4], item[5])
                for item in emitted
                if item[3]
            ),
            key=lambda pair: pair[1],
        )
        stats["emitted"] = len(stream)
        return InjectionResult(stream=stream, clean=clean, stats=stats)

    @staticmethod
    def _corrupt(
        rng: random.Random, etype: str, time: int
    ) -> Tuple[Any, Any]:
        """One malformed variant of the event, chosen by the rng."""
        mode = rng.randrange(4)
        if mode == 0:
            return ("", time)  # empty type
        if mode == 1:
            return (None, time)  # non-string type
        if mode == 2:
            return (etype, -1 - time)  # negative timestamp
        return (etype, "not-a-timestamp")  # non-integer timestamp
