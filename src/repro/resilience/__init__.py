"""Resilience layer for the streaming/ingestion path.

The paper's data-mining application consumes real feeds (computer
accesses, bank transactions); real feeds are dirty.  This package
holds the pieces that keep detection running under jitter, bursts and
malformed records:

* :mod:`repro.resilience.errors` - edge validation and the shared
  :class:`EventValidationError` / :class:`StreamFeedError` types;
* :mod:`repro.resilience.reorder` - the bounded reorder buffer with
  watermarks that absorbs timestamp jitter;
* :mod:`repro.resilience.policies` - anchor-overflow degradation
  policies (``raise`` / ``shed-oldest`` / ``shed-newest`` /
  ``sample``);
* :mod:`repro.resilience.quarantine` - the dead-letter channel for
  malformed JSONL/CSV records;
* :mod:`repro.resilience.faults` - the deterministic fault-injection
  harness used by the chaos tests.

See docs/RESILIENCE.md for the operational guide.
"""

from .errors import (
    EventValidationError,
    StreamFeedError,
    describe_invalid,
    validate_event,
)
from .faults import FaultInjector, InjectionResult
from .policies import (
    OVERFLOW_POLICIES,
    apply_overflow,
    normalize_overflow_policy,
)
from .quarantine import Quarantine, QuarantinedRecord
from .reorder import ReorderBuffer

__all__ = [
    "EventValidationError",
    "StreamFeedError",
    "validate_event",
    "describe_invalid",
    "ReorderBuffer",
    "OVERFLOW_POLICIES",
    "normalize_overflow_policy",
    "apply_overflow",
    "Quarantine",
    "QuarantinedRecord",
    "FaultInjector",
    "InjectionResult",
]
