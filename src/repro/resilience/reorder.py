"""A bounded reorder buffer with watermarks for jittery event feeds.

Real feeds deliver events out of timestamp order (network races,
sharded producers, clock skew).  The automata layer requires
non-decreasing timestamps, so the buffer sits between the two: it holds
events until the *low watermark* - the newest timestamp seen minus a
configured ``max_lateness`` - passes them, then releases them in
timestamp order.  An event arriving with a timestamp already below the
watermark is too late to reorder soundly; it is counted and dropped
(never raised), which keeps detection best-effort under arbitrarily
dirty input while the counters make the degradation observable.

Equal timestamps are released in arrival order (a stable tie-break via
an arrival sequence number), so replaying the same arrival stream is
deterministic - a property the checkpoint/restore path relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple


class ReorderBuffer:
    """Buffer out-of-order (etype, time) events; release in time order.

    ``max_lateness`` is the maximum age (in seconds behind the newest
    timestamp seen) an event may have and still be accepted.  ``0``
    still tolerates *ties* arriving late, but any regression is
    dropped; larger values trade detection latency for tolerance.
    """

    def __init__(self, max_lateness: int):
        if max_lateness < 0:
            raise ValueError("max_lateness must be non-negative")
        self.max_lateness = max_lateness
        self._heap: List[Tuple[int, int, str]] = []
        self._arrivals = 0
        self._max_seen: Optional[int] = None
        self.late_dropped = 0
        self.last_late: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    @property
    def watermark(self) -> Optional[int]:
        """Low watermark: events below this timestamp are final.

        None until the first event arrives.
        """
        if self._max_seen is None:
            return None
        return self._max_seen - self.max_lateness

    @property
    def pending(self) -> int:
        """Events currently held in the buffer."""
        return len(self._heap)

    # ------------------------------------------------------------------
    def push(self, etype: str, time: int) -> List[Tuple[str, int]]:
        """Accept one event; return the events it makes releasable.

        Released events have timestamps ``<=`` the (possibly advanced)
        watermark and come out in non-decreasing timestamp order.  A
        too-late event is dropped and counted; the return is then
        empty.
        """
        watermark = self.watermark
        if watermark is not None and time < watermark:
            self.late_dropped += 1
            self.last_late = (etype, time)
            return []
        heapq.heappush(self._heap, (time, self._arrivals, etype))
        self._arrivals += 1
        if self._max_seen is None or time > self._max_seen:
            self._max_seen = time
        return self._release(self.watermark)

    def flush(self) -> List[Tuple[str, int]]:
        """Release everything still buffered (end of stream)."""
        released = []
        while self._heap:
            time, _, etype = heapq.heappop(self._heap)
            released.append((etype, time))
        return released

    def _release(self, watermark: Optional[int]) -> List[Tuple[str, int]]:
        released = []
        while self._heap and self._heap[0][0] <= watermark:
            time, _, etype = heapq.heappop(self._heap)
            released.append((etype, time))
        return released

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the buffer's full state."""
        return {
            "max_lateness": self.max_lateness,
            "heap": [[t, seq, etype] for t, seq, etype in self._heap],
            "arrivals": self._arrivals,
            "max_seen": self._max_seen,
            "late_dropped": self.late_dropped,
            "last_late": list(self.last_late) if self.last_late else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ReorderBuffer":
        """Rebuild a buffer from :meth:`to_dict` output."""
        buffer = cls(int(payload["max_lateness"]))
        buffer._heap = [
            (int(t), int(seq), str(etype))
            for t, seq, etype in payload.get("heap", [])
        ]
        heapq.heapify(buffer._heap)
        buffer._arrivals = int(payload.get("arrivals", len(buffer._heap)))
        max_seen = payload.get("max_seen")
        buffer._max_seen = int(max_seen) if max_seen is not None else None
        buffer.late_dropped = int(payload.get("late_dropped", 0))
        last_late = payload.get("last_late")
        if last_late:
            buffer.last_late = (str(last_late[0]), int(last_late[1]))
        return buffer
