"""Error types of the multi-tenant detection service."""

from __future__ import annotations


class ServiceError(RuntimeError):
    """Base class for service-layer failures."""


class ServiceDisabledError(ServiceError):
    """The service layer is switched off (``REPRO_SERVICE=off``)."""

    def __init__(self) -> None:
        super().__init__(
            "the detection service is disabled (REPRO_SERVICE=off); "
            "set REPRO_SERVICE=on or pass ServiceConfig(enabled=True)"
        )


class ServiceClosedError(ServiceError):
    """An event was submitted after :meth:`DetectionService.close`."""


class TenantOverloadError(ServiceError):
    """A tenant's ingress queue overflowed under the ``raise`` policy.

    Carries the tenant so a multiplexing caller knows *which* feed to
    slow down; every other tenant is unaffected.
    """

    def __init__(self, tenant: str, capacity: int):
        super().__init__(
            "tenant %r exceeded its ingress capacity of %d events; "
            "pick a shedding policy or raise queue_capacity"
            % (tenant, capacity)
        )
        self.tenant = tenant
        self.capacity = capacity


class CheckpointCorruptError(ServiceError):
    """No durable checkpoint generation of a session could be read."""

    def __init__(self, tenant: str, key: str, detail: str):
        super().__init__(
            "every checkpoint generation for session (%r, %r) is "
            "unreadable: %s" % (tenant, key, detail)
        )
        self.tenant = tenant
        self.key = key
