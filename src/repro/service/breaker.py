"""A per-tenant circuit breaker (closed / open / half-open).

A tenant whose feed keeps producing malformed events should stop
costing the service work: after ``failure_threshold`` *consecutive*
failures the breaker opens and the tenant's events are parked instead
of processed.  After ``reset_seconds`` of cooldown the breaker goes
half-open and admits ``half_open_probes`` probe events; if they all
succeed it closes (and the parked backlog drains, oldest first, so no
valid event is ever lost to a trip), if any fails it re-opens and the
cooldown restarts.

Time is injected as a ``clock`` callable (monotonic seconds) so tests
and the deterministic differential suite can drive the state machine
without sleeping.  The breaker itself never sleeps or schedules - it
is a pure state machine consulted by the service's tenant workers.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: The breaker states, in documentation order.
BREAKER_STATES = (CLOSED, OPEN, HALF_OPEN)


class CircuitBreaker:
    """Trip after consecutive failures; recover through probes.

    ``failure_threshold`` consecutive failures open the breaker;
    ``reset_seconds`` later it transitions half-open on the next
    :meth:`allow` call and admits up to ``half_open_probes`` events.
    All probes succeeding closes it; any probe failing re-opens it.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 30.0,
        half_open_probes: int = 1,
        clock: Optional[Callable[[], float]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_seconds < 0:
            raise ValueError("reset_seconds must be non-negative")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.half_open_probes = half_open_probes
        self._clock = clock if clock is not None else time.monotonic
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.trips = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """The current state, advancing open -> half-open on cooldown."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0
        return self._state

    def allow(self) -> bool:
        """May the next event be processed right now?

        Consumes a probe slot in the half-open state, so callers must
        follow every ``True`` with :meth:`record_success` or
        :meth:`record_failure`.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probes_in_flight < self.half_open_probes:
            self._probes_in_flight += 1
            return True
        return False

    def record_success(self) -> None:
        """One event processed cleanly."""
        if self._state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._close()
            return
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """One event failed; may trip the breaker."""
        if self._state == HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.trips += 1

    def _close(self) -> None:
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        self._probes_in_flight = 0
        self._probe_successes = 0

    def snapshot(self) -> Dict[str, object]:
        """Operational view for :meth:`DetectionService.stats`."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "trips": self.trips,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CircuitBreaker(state=%r, trips=%d)" % (self.state, self.trips)
