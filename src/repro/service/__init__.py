"""repro.service: the multi-tenant streaming detection service.

A production front for the streaming layer: many tenants' event feeds
multiplexed over one process, with per-tenant fault isolation (circuit
breakers + the dead-letter quarantine), bounded ingress queues whose
shedding reuses the anchor-overflow policies, and checkpoint-backed
LRU eviction of idle sessions with crash recovery by WAL replay.

The whole layer sits *on top of* the existing modules - nothing
outside this package imports it - and is guarded by the
``REPRO_SERVICE`` kill switch (see :mod:`repro.service.runtime`).
See docs/RESILIENCE.md ("Service layer") for the operational guide.
"""

from .breaker import BREAKER_STATES, CircuitBreaker
from .checkpoints import (
    CheckpointStoreBase,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
    SESSION_CHECKPOINT_VERSION,
    open_store,
)
from .errors import (
    CheckpointCorruptError,
    ServiceClosedError,
    ServiceDisabledError,
    ServiceError,
    TenantOverloadError,
)
from .registry import Session, SessionRegistry
from .runtime import resolve_enabled, service_enabled
from .service import (
    DetectionService,
    ServiceConfig,
    ServiceDetection,
    serve_events,
)

__all__ = [
    "DetectionService",
    "ServiceConfig",
    "ServiceDetection",
    "serve_events",
    "CircuitBreaker",
    "BREAKER_STATES",
    "SessionRegistry",
    "Session",
    "CheckpointStoreBase",
    "MemoryCheckpointStore",
    "DirectoryCheckpointStore",
    "SESSION_CHECKPOINT_VERSION",
    "open_store",
    "ServiceError",
    "ServiceDisabledError",
    "ServiceClosedError",
    "TenantOverloadError",
    "CheckpointCorruptError",
    "service_enabled",
    "resolve_enabled",
]
