"""Durable session state: generational checkpoints plus a WAL.

An evicted session must cost almost nothing while idle and survive a
crashed worker.  Both properties come from the same store:

* :meth:`save` writes a session's checkpoint payload atomically
  (temp file + ``os.replace``) as a new *generation*, keeping the
  previous ``keep_generations - 1`` files.  A torn or deliberately
  corrupted newest generation therefore never strands the session:
  :meth:`load` falls back to the last readable generation (counting
  the fallback) and only raises
  :class:`~repro.service.errors.CheckpointCorruptError` when *no*
  generation parses.

* :meth:`append_wal` records every accepted event (``[seq, etype,
  time]``) *before* it is fed to the matcher, so crash recovery is
  "restore the last durable checkpoint, then replay the WAL suffix
  with ``seq`` greater than the checkpoint's".  :meth:`save`
  truncates the WAL through the checkpointed sequence number.  A torn
  final WAL line (the classic mid-write crash artefact) is skipped,
  not fatal.

Two implementations share the contract: :class:`DirectoryCheckpointStore`
persists under a root directory (one subdirectory per session, named
by a content hash of the ``(tenant, key)`` pair, with a ``meta.json``
so :meth:`sessions` can enumerate them back); and
:class:`MemoryCheckpointStore` keeps the same generational structure
in process memory - the default when no ``checkpoint_dir`` is
configured, where eviction still works but nothing survives the
process.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..obs import counter
from .errors import CheckpointCorruptError

#: Session checkpoint wrapper version.
SESSION_CHECKPOINT_VERSION = 1

_CHECKPOINTS_WRITTEN = counter(
    "repro_service_checkpoints_written_total",
    "Session checkpoints written by the service store",
)
_WAL_APPENDS = counter(
    "repro_service_wal_appends_total",
    "Events appended to session write-ahead logs",
)
_FALLBACKS = counter(
    "repro_service_checkpoint_fallbacks_total",
    "Loads that skipped an unreadable checkpoint generation",
)

WalEntry = Tuple[int, str, int]


def session_payload(
    tenant: str, key: str, seq: int, matcher_checkpoint: Dict[str, Any]
) -> Dict[str, Any]:
    """Wrap a matcher checkpoint with its service-level coordinates."""
    return {
        "version": SESSION_CHECKPOINT_VERSION,
        "tenant": tenant,
        "key": key,
        "seq": seq,
        "matcher": matcher_checkpoint,
    }


def _validate_payload(payload: Any) -> Dict[str, Any]:
    """Reject payloads that parsed as JSON but are not checkpoints."""
    if (
        not isinstance(payload, dict)
        or payload.get("version") != SESSION_CHECKPOINT_VERSION
        or not isinstance(payload.get("seq"), int)
        or not isinstance(payload.get("matcher"), dict)
    ):
        raise ValueError("not a session checkpoint payload")
    return payload


class CheckpointStoreBase:
    """The shared generation/WAL bookkeeping; subclasses do the I/O."""

    def __init__(self, keep_generations: int = 2):
        if keep_generations < 1:
            raise ValueError("keep_generations must be >= 1")
        self.keep_generations = keep_generations

    # -- subclass I/O primitives ---------------------------------------
    def _generations(self, tenant: str, key: str) -> List[int]:
        """Generation numbers present for a session, ascending."""
        raise NotImplementedError

    def _read_generation(self, tenant: str, key: str, gen: int) -> Any:
        """Parse one generation; raises ValueError when unreadable."""
        raise NotImplementedError

    def _write_generation(
        self, tenant: str, key: str, gen: int, payload: Dict[str, Any]
    ) -> None:
        raise NotImplementedError

    def _drop_generation(self, tenant: str, key: str, gen: int) -> None:
        raise NotImplementedError

    def _read_wal(self, tenant: str, key: str) -> List[WalEntry]:
        raise NotImplementedError

    def _write_wal(
        self, tenant: str, key: str, entries: List[WalEntry]
    ) -> None:
        raise NotImplementedError

    def _append_wal_entry(
        self, tenant: str, key: str, entry: WalEntry
    ) -> None:
        raise NotImplementedError

    # -- the contract ---------------------------------------------------
    def _generation_seq(self, tenant: str, key: str, gen: int):
        """The ``seq`` a generation covers, or None if unreadable."""
        try:
            return int(
                _validate_payload(
                    self._read_generation(tenant, key, gen)
                )["seq"]
            )
        except (ValueError, TypeError, KeyError):
            return None

    def save(
        self,
        tenant: str,
        key: str,
        seq: int,
        matcher_checkpoint: Dict[str, Any],
    ) -> None:
        """Write a new checkpoint generation; prune old ones and the
        WAL prefix they make redundant.

        The WAL keeps every entry newer than the *oldest retained*
        generation - not just the newest - so that when corruption
        forces :meth:`load` back a generation, the replay suffix to
        reach the present is still on disk.
        """
        generations = self._generations(tenant, key)
        gen = (generations[-1] + 1) if generations else 1
        self._write_generation(
            tenant, key, gen,
            session_payload(tenant, key, seq, matcher_checkpoint),
        )
        _CHECKPOINTS_WRITTEN.inc()
        for old in generations[: max(0, len(generations) + 1
                                     - self.keep_generations)]:
            self._drop_generation(tenant, key, old)
        covered = [
            cover for cover in (
                self._generation_seq(tenant, key, g)
                for g in self._generations(tenant, key)
            )
            if cover is not None
        ]
        floor = min(covered) if covered else seq
        self._write_wal(
            tenant, key,
            [entry for entry in self._read_wal(tenant, key)
             if entry[0] > floor],
        )

    def load(self, tenant: str, key: str) -> Optional[Dict[str, Any]]:
        """The newest readable checkpoint payload, or None.

        Unreadable generations are skipped newest-first (each skip
        counted); if generations exist but none parses, the session is
        genuinely lost and :class:`CheckpointCorruptError` is raised.
        """
        generations = self._generations(tenant, key)
        if not generations:
            return None
        detail = "no generations"
        for gen in reversed(generations):
            try:
                return _validate_payload(
                    self._read_generation(tenant, key, gen)
                )
            except ValueError as exc:
                detail = str(exc) or type(exc).__name__
                _FALLBACKS.inc()
        raise CheckpointCorruptError(tenant, key, detail)

    def append_wal(
        self, tenant: str, key: str, seq: int, etype: str, time: int
    ) -> None:
        """Record one accepted event ahead of feeding it."""
        self._append_wal_entry(tenant, key, (seq, etype, time))
        _WAL_APPENDS.inc()

    def wal_suffix(self, tenant: str, key: str, seq: int) -> List[WalEntry]:
        """WAL entries newer than ``seq``, in sequence order."""
        return sorted(
            (entry for entry in self._read_wal(tenant, key)
             if entry[0] > seq),
            key=lambda entry: entry[0],
        )

    def has(self, tenant: str, key: str) -> bool:
        """Does any durable state exist for the session?

        A WAL with no checkpoint yet still counts - a session that
        crashed before its first checkpoint recovers by replaying the
        WAL into a fresh matcher.
        """
        return bool(self._generations(tenant, key)) or bool(
            self._read_wal(tenant, key)
        )

    def discard(self, tenant: str, key: str) -> None:
        """Forget a session entirely (clean close)."""
        for gen in self._generations(tenant, key):
            self._drop_generation(tenant, key, gen)
        self._write_wal(tenant, key, [])

    def sessions(self) -> List[Tuple[str, str]]:
        """Every ``(tenant, key)`` with durable state, sorted."""
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStoreBase):
    """In-process store: eviction without durability (the default)."""

    def __init__(self, keep_generations: int = 2):
        super().__init__(keep_generations)
        self._data: Dict[Tuple[str, str], Dict[int, str]] = {}
        self._wals: Dict[Tuple[str, str], List[WalEntry]] = {}

    def _generations(self, tenant, key):
        return sorted(self._data.get((tenant, key), ()))

    def _read_generation(self, tenant, key, gen):
        return json.loads(self._data[(tenant, key)][gen])

    def _write_generation(self, tenant, key, gen, payload):
        self._data.setdefault((tenant, key), {})[gen] = json.dumps(payload)

    def _drop_generation(self, tenant, key, gen):
        slot = self._data.get((tenant, key), {})
        slot.pop(gen, None)
        if not slot:
            self._data.pop((tenant, key), None)

    def _read_wal(self, tenant, key):
        return list(self._wals.get((tenant, key), ()))

    def _write_wal(self, tenant, key, entries):
        if entries:
            self._wals[(tenant, key)] = list(entries)
        else:
            self._wals.pop((tenant, key), None)

    def _append_wal_entry(self, tenant, key, entry):
        self._wals.setdefault((tenant, key), []).append(entry)

    def sessions(self):
        return sorted(set(self._data) | set(self._wals))

    def corrupt_latest(self, tenant: str, key: str) -> None:
        """Chaos-test hook: truncate the newest generation mid-write."""
        generations = self._generations(tenant, key)
        if not generations:
            raise KeyError((tenant, key))
        gen = generations[-1]
        text = self._data[(tenant, key)][gen]
        self._data[(tenant, key)][gen] = text[: len(text) // 2]


class DirectoryCheckpointStore(CheckpointStoreBase):
    """Disk-backed store under one root directory.

    Layout: ``root/<sha1(tenant,key)>/`` holding ``meta.json`` (the
    coordinates, for :meth:`sessions`), ``ckpt-<n>.json`` generations
    and ``wal.jsonl``.  Checkpoint writes go through a temp file and
    ``os.replace`` so a crash never leaves a half-written *current*
    generation - and if external corruption strikes anyway, the
    previous generation is still there.
    """

    def __init__(self, root: str, keep_generations: int = 2):
        super().__init__(keep_generations)
        self.root = root
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    def _session_dir(self, tenant: str, key: str, create: bool = False):
        digest = hashlib.sha1(
            json.dumps([tenant, key]).encode("utf-8")
        ).hexdigest()[:24]
        path = os.path.join(self.root, digest)
        if create and not os.path.isdir(path):
            os.makedirs(path, exist_ok=True)
            self._atomic_write(
                os.path.join(path, "meta.json"),
                json.dumps({"tenant": tenant, "key": key}, sort_keys=True),
            )
        return path

    @staticmethod
    def _atomic_write(path: str, text: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _generations(self, tenant, key):
        path = self._session_dir(tenant, key)
        if not os.path.isdir(path):
            return []
        found = []
        for name in os.listdir(path):
            if name.startswith("ckpt-") and name.endswith(".json"):
                try:
                    found.append(int(name[5:-5]))
                except ValueError:
                    continue
        return sorted(found)

    def _gen_path(self, tenant, key, gen):
        return os.path.join(
            self._session_dir(tenant, key), "ckpt-%d.json" % gen
        )

    def _read_generation(self, tenant, key, gen):
        try:
            with open(self._gen_path(tenant, key, gen),
                      encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(str(exc))

    def _write_generation(self, tenant, key, gen, payload):
        self._session_dir(tenant, key, create=True)
        self._atomic_write(
            self._gen_path(tenant, key, gen),
            json.dumps(payload, sort_keys=True),
        )

    def _drop_generation(self, tenant, key, gen):
        try:
            os.remove(self._gen_path(tenant, key, gen))
        except OSError:
            pass

    def _wal_path(self, tenant, key):
        return os.path.join(self._session_dir(tenant, key), "wal.jsonl")

    def _read_wal(self, tenant, key):
        path = self._wal_path(tenant, key)
        if not os.path.isfile(path):
            return []
        entries: List[WalEntry] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    seq, etype, time = json.loads(line)
                    entries.append((int(seq), str(etype), int(time)))
                except (ValueError, TypeError):
                    # A torn final line from a mid-append crash; the
                    # event it described was never fed, so skipping it
                    # matches the matcher's actual state.
                    continue
        return entries

    def _write_wal(self, tenant, key, entries):
        path = self._wal_path(tenant, key)
        if not entries:
            try:
                os.remove(path)
            except OSError:
                pass
            return
        self._session_dir(tenant, key, create=True)
        self._atomic_write(
            path,
            "".join(json.dumps(list(entry)) + "\n" for entry in entries),
        )

    def _append_wal_entry(self, tenant, key, entry):
        self._session_dir(tenant, key, create=True)
        with open(self._wal_path(tenant, key), "a",
                  encoding="utf-8") as handle:
            handle.write(json.dumps(list(entry)) + "\n")

    def sessions(self):
        found = []
        for name in sorted(os.listdir(self.root)):
            meta = os.path.join(self.root, name, "meta.json")
            if not os.path.isfile(meta):
                continue
            try:
                with open(meta, encoding="utf-8") as handle:
                    record = json.load(handle)
                found.append((str(record["tenant"]), str(record["key"])))
            except (OSError, ValueError, KeyError):
                continue
        return sorted(found)


def open_store(
    checkpoint_dir: Optional[str], keep_generations: int = 2
) -> CheckpointStoreBase:
    """The store for a config: directory-backed when a path is given."""
    if checkpoint_dir:
        return DirectoryCheckpointStore(checkpoint_dir, keep_generations)
    return MemoryCheckpointStore(keep_generations)
