"""Resident-session management: LRU eviction backed by checkpoints.

A thousand tenants cannot all keep live :class:`StreamingMatcher`
state in memory.  The registry keeps at most ``max_resident`` sessions
resident; acquiring one beyond that evicts the least-recently-used
session by checkpointing it to the store and dropping the matcher.
The next event for an evicted session transparently *rehydrates* it
(under a ``service.rehydrate`` span): load the last durable
checkpoint, then replay the WAL suffix - events accepted after that
checkpoint - through the restored matcher.  Replay re-emits the
detections those events completed, tagged with their sequence numbers,
giving at-least-once delivery across evictions and crashes; consumers
that need exactly-once dedupe on ``(tenant, key, seq)``.

Recency is a logical use counter, not wall time, so eviction order is
deterministic and the differential suite can force churn by setting
``max_resident=1``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..automata.streaming import Detection, StreamingMatcher
from ..obs import TraceContext, counter, gauge, linked_span
from .checkpoints import CheckpointStoreBase

_EVICTIONS = counter(
    "repro_service_evictions_total",
    "Resident sessions spilled to the checkpoint store",
)
_REHYDRATIONS = counter(
    "repro_service_rehydrations_total",
    "Sessions restored from the checkpoint store",
)
_REPLAYED_EVENTS = counter(
    "repro_service_replayed_events_total",
    "WAL events replayed during rehydration",
)
_SESSIONS_RESIDENT = gauge(
    "repro_service_sessions",
    "Detection sessions by residency state",
    labels={"state": "resident"},
)
_SESSIONS_EVICTED = gauge(
    "repro_service_sessions",
    "Detection sessions by residency state",
    labels={"state": "evicted"},
)


class Session:
    """One resident ``(tenant, key)`` detection session."""

    __slots__ = (
        "tenant", "key", "matcher", "seq", "checkpointed_seq", "last_use",
    )

    def __init__(self, tenant: str, key: str, matcher: StreamingMatcher):
        self.tenant = tenant
        self.key = key
        self.matcher = matcher
        #: Sequence number of the last accepted event (0 before any).
        self.seq = 0
        #: Sequence the last durable checkpoint reflects.
        self.checkpointed_seq = 0
        self.last_use = 0


class SessionRegistry:
    """Keyed matchers with bounded residency and transparent spill.

    ``matcher_factory`` builds a fresh matcher for a session with no
    durable state; rehydration needs no factory because checkpoints
    carry the pattern.
    """

    def __init__(
        self,
        store: CheckpointStoreBase,
        matcher_factory: Callable[[], StreamingMatcher],
        max_resident: int = 64,
        system=None,
        context_for: Optional[
            Callable[[str], Optional[TraceContext]]
        ] = None,
    ):
        if max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        self.store = store
        self.matcher_factory = matcher_factory
        self.max_resident = max_resident
        #: Maps a tenant to the span identity its rehydrate spans
        #: should parent under (the service wires the tenant's
        #: originating-submit context in) - None falls back to stack
        #: nesting.
        self.context_for = context_for
        self.system = system
        self._resident: Dict[Tuple[str, str], Session] = {}
        self._evicted_keys: set = set()
        self._use_counter = 0
        self.evictions = 0
        self.rehydrations = 0

    # ------------------------------------------------------------------
    def acquire(
        self, tenant: str, key: str
    ) -> Tuple[Session, List[Tuple[int, int, Detection]]]:
        """The session for ``(tenant, key)``, rehydrating if spilled.

        Returns the session plus any detections re-emitted by WAL
        replay (``(seq, ordinal, detection)`` triples) - non-empty only
        when the durable state was behind the WAL, i.e. after a crash.
        """
        self._use_counter += 1
        session = self._resident.get((tenant, key))
        replayed: List[Tuple[int, int, Detection]] = []
        if session is None:
            if self.store.has(tenant, key):
                session, replayed = self._rehydrate(tenant, key)
            else:
                session = Session(tenant, key, self.matcher_factory())
            self._resident[(tenant, key)] = session
            self._evicted_keys.discard((tenant, key))
            session.last_use = self._use_counter
            self._enforce_residency(keep=(tenant, key))
        else:
            session.last_use = self._use_counter
        self._export_gauges()
        return session, replayed

    def _rehydrate(
        self, tenant: str, key: str
    ) -> Tuple[Session, List[Tuple[int, int, Detection]]]:
        parent = self.context_for(tenant) if self.context_for else None
        with linked_span(
            "service.rehydrate", parent, tenant=tenant, key=key
        ):
            payload = self.store.load(tenant, key)
            if payload is None:
                # WAL with no checkpoint yet: replay from a fresh matcher.
                session = Session(tenant, key, self.matcher_factory())
            else:
                session = Session(
                    tenant, key,
                    StreamingMatcher.from_checkpoint(
                        payload["matcher"], system=self.system
                    ),
                )
                session.seq = int(payload["seq"])
                session.checkpointed_seq = session.seq
            replayed: List[Tuple[int, int, Detection]] = []
            for seq, etype, time in self.store.wal_suffix(
                tenant, key, session.seq
            ):
                try:
                    found = session.matcher.feed(etype, time)
                except (ValueError, RuntimeError):
                    # The event also failed when first fed; its WAL
                    # entry records the attempt, not a state change.
                    found = []
                session.seq = seq
                base = session.matcher.detections_emitted - len(found)
                replayed.extend(
                    (seq, base + offset, detection)
                    for offset, detection in enumerate(found)
                )
                _REPLAYED_EVENTS.inc()
            self.rehydrations += 1
            _REHYDRATIONS.inc()
            return session, replayed

    # ------------------------------------------------------------------
    def _enforce_residency(self, keep: Tuple[str, str]) -> None:
        while len(self._resident) > self.max_resident:
            victim_key = min(
                (k for k in self._resident if k != keep),
                key=lambda k: self._resident[k].last_use,
            )
            self.evict(*victim_key)

    def evict(self, tenant: str, key: str) -> None:
        """Checkpoint one resident session and drop its matcher."""
        session = self._resident.pop((tenant, key))
        self.checkpoint(session)
        self._evicted_keys.add((tenant, key))
        self.evictions += 1
        _EVICTIONS.inc()
        self._export_gauges()

    def checkpoint(self, session: Session) -> None:
        """Write a session's durable checkpoint (truncates its WAL)."""
        self.store.save(
            session.tenant, session.key, session.seq,
            session.matcher.checkpoint(),
        )
        session.checkpointed_seq = session.seq

    def maybe_checkpoint(self, session: Session, interval: int) -> None:
        """Checkpoint when ``interval`` events accrued since the last,
        bounding how much WAL a crash replays."""
        if interval > 0 and session.seq - session.checkpointed_seq >= interval:
            self.checkpoint(session)

    def checkpoint_all(self) -> None:
        """Flush every resident session to the store (service close)."""
        for session in self._resident.values():
            self.checkpoint(session)

    # ------------------------------------------------------------------
    def resident_sessions(self) -> List[Session]:
        """Resident sessions, most recently used first."""
        return sorted(
            self._resident.values(),
            key=lambda s: s.last_use,
            reverse=True,
        )

    def session_keys(self) -> List[Tuple[str, str]]:
        """Every session this registry has ever held, resident or
        spilled, as sorted ``(tenant, key)`` pairs."""
        return sorted(set(self._resident) | self._evicted_keys)

    def resident_for_tenant(self, tenant: str) -> List[Session]:
        return [
            session for (t, _), session in self._resident.items()
            if t == tenant
        ]

    def is_resident(self, tenant: str, key: str) -> bool:
        return (tenant, key) in self._resident

    def _export_gauges(self) -> None:
        _SESSIONS_RESIDENT.set(len(self._resident))
        _SESSIONS_EVICTED.set(len(self._evicted_keys))

    def stats(self) -> Dict[str, int]:
        return {
            "resident": len(self._resident),
            "evicted": len(self._evicted_keys),
            "evictions": self.evictions,
            "rehydrations": self.rehydrations,
        }
