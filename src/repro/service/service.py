"""The multi-tenant streaming detection service.

:class:`DetectionService` multiplexes many independent event feeds
over one process.  Events are submitted as ``(tenant, sequence_key,
etype, time)``; the service routes each to the
:class:`~repro.automata.streaming.StreamingMatcher` session keyed by
``(tenant, sequence_key)`` and collects the detections it completes.
Three robustness mechanisms keep tenants from hurting each other:

**Fault isolation.**  Each tenant gets its own ingress queue, its own
:class:`asyncio` worker task and its own
:class:`~repro.service.breaker.CircuitBreaker`.  Malformed events go
to the shared dead-letter :class:`~repro.resilience.Quarantine` (they
never touch matcher state) and count as breaker failures; a tenant
whose feed keeps failing trips its breaker and has further events
*parked* in its queue - in arrival order, never dropped - until the
cooldown admits probes again.  Other tenants never notice.

**Backpressure.**  Queues are bounded by ``queue_capacity``; overflow
behaviour reuses the anchor-overflow policies (``raise`` surfaces
:class:`~repro.service.errors.TenantOverloadError` to the offending
tenant's producer, ``shed-oldest`` / ``shed-newest`` / ``sample``
shed and count).  The live-anchor and watermark-lag gauges of the
tenant's resident sessions act as a capacity signal: a session running
hot (anchors near ``max_live_anchors``, or watermark lag beyond twice
``max_lateness``) halves the tenant's effective queue capacity so
shedding starts before the matcher itself degrades.

**Checkpoint-backed eviction.**  Session residency is bounded by
``max_resident_sessions``; see :mod:`repro.service.registry` for the
LRU spill / rehydrate / WAL-replay cycle, and
:meth:`DetectionService.recover` for crash recovery from a
:class:`~repro.service.checkpoints.DirectoryCheckpointStore`.

Because parked events keep their arrival order and only invalid events
are quarantined, each session's matcher consumes exactly the valid
subsequence of its feed - so per-tenant detections are *bit-identical*
to a standalone matcher run (the differential suite in
``tests/differential/test_service_vs_direct.py`` enforces this, across
forced evictions and breaker trips).
"""

from __future__ import annotations

import asyncio
import os
import re
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..automata.builder import TagBuild
from ..automata.streaming import Detection, StreamingMatcher
from ..obs import (
    Counter,
    TraceContext,
    counter,
    current_context,
    gauge,
    global_recorder,
    linked_span,
)
from ..resilience import Quarantine, apply_overflow, validate_event
from ..resilience.policies import normalize_overflow_policy
from .breaker import BREAKER_STATES, OPEN, CircuitBreaker
from .checkpoints import CheckpointStoreBase, open_store
from .errors import (
    ServiceClosedError,
    ServiceDisabledError,
    TenantOverloadError,
)
from .registry import SessionRegistry
from .runtime import resolve_enabled, tenant_label_limit

_EVENTS = counter(
    "repro_service_events_total", "Events submitted to the service"
)
_DETECTIONS = counter(
    "repro_service_detections_total", "Detections emitted by the service"
)
_QUARANTINED = counter(
    "repro_service_quarantined_total",
    "Events rejected to the dead-letter channel",
)
_SHED = counter(
    "repro_service_queue_shed_total",
    "Events shed from tenant ingress queues",
)
_QUEUE_DEPTH = gauge(
    "repro_service_queue_depth",
    "Events waiting in tenant ingress queues (all tenants)",
)
_BREAKER_GAUGES = {
    state: gauge(
        "repro_service_breaker_state",
        "Tenants whose circuit breaker is in this state",
        labels={"state": state},
    )
    for state in BREAKER_STATES
}


@dataclass
class ServiceConfig:
    """Knobs of a :class:`DetectionService`.

    ``enabled=None`` defers to the ``REPRO_SERVICE`` environment
    variable (the kill switch); an explicit boolean always wins.
    """

    # Backpressure.
    queue_capacity: int = 256
    shed_policy: str = "raise"
    pressure_threshold: float = 0.8
    # Residency / durability.
    max_resident_sessions: int = 64
    checkpoint_dir: Optional[str] = None
    checkpoint_interval: int = 256
    keep_generations: int = 2
    # Circuit breaker.
    breaker_failure_threshold: int = 5
    breaker_reset_seconds: float = 30.0
    breaker_half_open_probes: int = 1
    breaker_clock: Optional[Callable[[], float]] = None
    # Matcher construction (mirrors StreamingMatcher).
    strict: bool = False
    horizon_seconds: Optional[int] = None
    max_live_anchors: int = 10_000
    max_lateness: Optional[int] = None
    overflow_policy: str = "raise"
    # Observability.  ``recorder_dir`` (or ``REPRO_OBS_RECORDER_DIR``)
    # receives a flight-recorder dump whenever a breaker trips;
    # ``tenant_labels`` overrides ``REPRO_OBS_TENANT_LABELS`` (top-N
    # tenants by submitted volume get labelled counter children).
    recorder_dir: Optional[str] = None
    tenant_labels: Optional[int] = None
    # Kill switch.
    enabled: Optional[bool] = None


@dataclass(frozen=True)
class ServiceDetection:
    """One detection with its service coordinates.

    ``seq`` is the per-session sequence number of the event that
    completed the detection; ``ordinal`` is the session's running
    detection count at emission (the matcher's ``detections_emitted``
    counter, which round-trips through checkpoints, so WAL replay
    reproduces it exactly - even for the two *identical* detections a
    duplicated root event can complete on one input).  Rehydration
    replay may re-emit a detection (``replayed=True``); exactly-once
    consumers dedupe on :meth:`dedupe_key`.
    """

    tenant: str
    key: str
    seq: int
    detection: Detection
    replayed: bool = False
    ordinal: int = 0

    def dedupe_key(self) -> Tuple:
        return (
            self.tenant, self.key, self.seq, self.ordinal,
            self.detection.anchor_time, self.detection.detected_at,
            tuple(sorted(self.detection.bindings.items())),
        )


class _TenantCounters:
    """Bounded-cardinality ``{tenant="..."}`` children of the hottest
    service counters (received / detections / shed).

    The aggregate families keep counting regardless; only the ``limit``
    highest-volume tenants (by submitted events) additionally carry a
    labelled child.  When a newcomer outgrows the coldest labelled
    tenant it takes the slot; the demoted tenant's children stay
    registered at their last value (Prometheus counters are
    monotonic), they just stop advancing - so scrape cardinality grows
    only on promotion, never per tenant.
    """

    __slots__ = ("limit", "_volumes", "_members")

    _FAMILIES = (
        ("received", "repro_service_events_total"),
        ("detections", "repro_service_detections_total"),
        ("shed", "repro_service_queue_shed_total"),
    )

    def __init__(self, limit: int) -> None:
        self.limit = max(0, limit)
        self._volumes: Dict[str, int] = {}
        self._members: Dict[str, Dict[str, Counter]] = {}

    def _family(self, tenant: str) -> Dict[str, Counter]:
        return {
            short: counter(name, labels={"tenant": tenant})
            for short, name in self._FAMILIES
        }

    def record(self, tenant: str, received: int = 0,
               detections: int = 0, shed: int = 0) -> None:
        if not self.limit:
            return
        volume = self._volumes.get(tenant, 0) + received
        self._volumes[tenant] = volume
        members = self._members
        family = members.get(tenant)
        if family is None:
            if len(members) < self.limit:
                family = members[tenant] = self._family(tenant)
            else:
                coldest = min(
                    members, key=lambda t: self._volumes.get(t, 0)
                )
                if volume <= self._volumes.get(coldest, 0):
                    return
                del members[coldest]
                family = members[tenant] = self._family(tenant)
        if received:
            family["received"].add(received)
        if detections:
            family["detections"].add(detections)
        if shed:
            family["shed"].add(shed)

    def labelled_tenants(self) -> List[str]:
        return sorted(self._members)


class _TenantState:
    """Everything the service keeps per tenant."""

    __slots__ = (
        "pending", "breaker", "worker", "wake", "stop",
        "submitted", "processed", "quarantined", "shed", "context",
    )

    def __init__(self, breaker: CircuitBreaker):
        self.pending: Deque[Tuple[str, str, int]] = deque()
        self.breaker = breaker
        self.worker: Optional[asyncio.Task] = None
        self.wake: Optional[asyncio.Event] = None
        self.stop = False
        self.submitted = 0
        self.processed = 0
        self.quarantined = 0
        self.shed = 0
        #: Identity of the span that first submitted this tenant's
        #: events: later drains (which run from the event loop, outside
        #: the submitting span) re-parent ``service.route`` under it.
        self.context: Optional[TraceContext] = None


class DetectionService:
    """Route multi-tenant event streams to per-session matchers.

    Construction raises :class:`ServiceDisabledError` under
    ``REPRO_SERVICE=off`` unless the config forces ``enabled=True``.
    Use :meth:`submit` / :meth:`drain` / :meth:`close` from a running
    event loop, or the synchronous :func:`serve_events` facade.
    """

    def __init__(
        self,
        build: TagBuild,
        config: Optional[ServiceConfig] = None,
        store: Optional[CheckpointStoreBase] = None,
        system=None,
    ):
        config = config if config is not None else ServiceConfig()
        if not resolve_enabled(config.enabled):
            raise ServiceDisabledError()
        if config.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.build = build
        self.config = config
        self.shed_policy = normalize_overflow_policy(config.shed_policy)
        self.store = store if store is not None else open_store(
            config.checkpoint_dir, config.keep_generations
        )
        self.registry = SessionRegistry(
            self.store,
            self._new_matcher,
            max_resident=config.max_resident_sessions,
            system=system,
            context_for=self._tenant_context,
        )
        self.quarantine = Quarantine(source="service")
        self.detections: List[ServiceDetection] = []
        self._tenants: Dict[str, _TenantState] = {}
        self._tenant_counters = _TenantCounters(
            tenant_label_limit() if config.tenant_labels is None
            else config.tenant_labels
        )
        self._closed = False

    def _tenant_context(self, tenant: str) -> Optional[TraceContext]:
        """The span identity this tenant's work re-parents under."""
        state = self._tenants.get(tenant)
        return state.context if state is not None else None

    def _new_matcher(self) -> StreamingMatcher:
        cfg = self.config
        return StreamingMatcher(
            self.build,
            strict=cfg.strict,
            horizon_seconds=cfg.horizon_seconds,
            max_live_anchors=cfg.max_live_anchors,
            max_lateness=cfg.max_lateness,
            overflow_policy=cfg.overflow_policy,
        )

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    def _tenant(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(
                CircuitBreaker(
                    failure_threshold=self.config.breaker_failure_threshold,
                    reset_seconds=self.config.breaker_reset_seconds,
                    half_open_probes=self.config.breaker_half_open_probes,
                    clock=self.config.breaker_clock,
                )
            )
            self._tenants[tenant] = state
        return state

    def _ensure_worker(self, state: _TenantState, tenant: str) -> None:
        if state.wake is None:
            state.wake = asyncio.Event()
        if state.worker is None or state.worker.done():
            # A fresh task also resurrects a worker that died - one
            # tenant's crash never takes the service down.
            state.worker = asyncio.get_running_loop().create_task(
                self._worker_loop(tenant, state)
            )

    def effective_capacity(self, tenant: str) -> int:
        """The tenant's queue bound under the current capacity signal.

        Halved (minimum 1) while any of the tenant's resident sessions
        runs hot: live anchors at ``pressure_threshold`` of the limit,
        or watermark lag beyond twice ``max_lateness``.
        """
        capacity = self.config.queue_capacity
        limit = max(1, self.config.max_live_anchors)
        lateness = self.config.max_lateness
        for session in self.registry.resident_for_tenant(tenant):
            matcher = session.matcher
            if (
                matcher.live_anchors / limit
                >= self.config.pressure_threshold
            ) or (
                lateness is not None
                and matcher.watermark_lag > 2 * lateness
            ):
                return max(1, capacity // 2)
        return capacity

    async def submit(
        self, tenant: str, key: str, etype: Any, time: Any
    ) -> None:
        """Enqueue one event for ``(tenant, key)``.

        Applies the shed policy when the tenant's queue is at its
        effective capacity (``raise`` -> :class:`TenantOverloadError`),
        then yields to the tenant's worker.
        """
        if self._closed:
            raise ServiceClosedError("the service is closed")
        state = self._tenant(tenant)
        if state.context is None:
            state.context = current_context()
        state.submitted += 1
        _EVENTS.inc()
        self._tenant_counters.record(tenant, received=1)
        capacity = self.effective_capacity(tenant)
        if len(state.pending) >= capacity:
            if self.shed_policy == "raise":
                _SHED.inc()
                state.shed += 1
                self._tenant_counters.record(tenant, shed=1)
                raise TenantOverloadError(tenant, capacity)
            items = list(state.pending)
            items.append((key, etype, time))
            kept, shed = apply_overflow(items, capacity, self.shed_policy)
            state.pending = deque(kept)
            state.shed += shed
            _SHED.add(shed)
            self._tenant_counters.record(tenant, shed=shed)
        else:
            state.pending.append((key, etype, time))
        self._ensure_worker(state, tenant)
        state.wake.set()
        self._export_gauges()
        await asyncio.sleep(0)  # let the worker run

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------
    async def _worker_loop(self, tenant: str, state: _TenantState) -> None:
        while True:
            await state.wake.wait()
            state.wake.clear()
            self._drain_tenant(tenant, state)
            if state.stop:
                break

    def _drain_tenant(self, tenant: str, state: _TenantState) -> None:
        """Process the tenant's queue until empty or breaker-parked.

        Synchronous (no awaits), so per-tenant event order can never
        interleave - the backbone of the bit-identity guarantee.
        """
        if not state.pending:
            return
        with linked_span(
            "service.route", state.context,
            tenant=tenant, batch=len(state.pending),
        ):
            while state.pending:
                if not state.breaker.allow():
                    break  # parked until cooldown admits probes
                key, etype, time = state.pending.popleft()
                self._process(tenant, state, key, etype, time)
        self._export_gauges()

    def _process(
        self, tenant: str, state: _TenantState,
        key: str, etype: Any, time: Any,
    ) -> None:
        state.processed += 1
        try:
            validate_event(etype, time)
        except ValueError as exc:
            self._reject(tenant, state, key, etype, time, exc)
            return
        session, replayed = self.registry.acquire(tenant, key)
        self.detections.extend(
            ServiceDetection(
                tenant, key, seq, detection, replayed=True, ordinal=ordinal
            )
            for seq, ordinal, detection in replayed
        )
        session.seq += 1
        self.store.append_wal(tenant, key, session.seq, etype, time)
        try:
            found = session.matcher.feed(etype, time)
        except (ValueError, RuntimeError) as exc:
            self._reject(tenant, state, key, etype, time, exc)
            return
        state.breaker.record_success()
        base = session.matcher.detections_emitted - len(found)
        self.detections.extend(
            ServiceDetection(
                tenant, key, session.seq, detection,
                ordinal=base + offset,
            )
            for offset, detection in enumerate(found)
        )
        _DETECTIONS.add(len(found))
        self._tenant_counters.record(tenant, detections=len(found))
        self.registry.maybe_checkpoint(
            session, self.config.checkpoint_interval
        )

    def _reject(
        self, tenant: str, state: _TenantState,
        key: str, etype: Any, time: Any, exc: Exception,
    ) -> None:
        reason = "%s: %s" % (type(exc).__name__, exc)
        self.quarantine.add(
            reason=reason,
            raw={"tenant": tenant, "key": key,
                 "etype": etype, "time": time},
        )
        state.quarantined += 1
        _QUARANTINED.inc()
        # Leave evidence in the black box even when nobody is tracing:
        # an error-status note hits the recorder's capture trigger.
        global_recorder().note(
            "service.reject", status="error",
            tenant=tenant, key=key, reason=reason,
        )
        trips_before = state.breaker.trips
        state.breaker.record_failure()
        if state.breaker.trips > trips_before:
            self._on_breaker_trip(tenant, state)

    def _on_breaker_trip(self, tenant: str, state: _TenantState) -> None:
        """Persist a flight-recorder dump when a breaker opens.

        The dump lands in ``config.recorder_dir`` (falling back to
        ``REPRO_OBS_RECORDER_DIR``); with neither set the trip is still
        noted in the ring but nothing is written.
        """
        directory = self.config.recorder_dir or os.environ.get(
            "REPRO_OBS_RECORDER_DIR", ""
        ).strip()
        recorder = global_recorder()
        recorder.note(
            "service.breaker_trip", status="error",
            tenant=tenant, trips=state.breaker.trips,
        )
        if not directory or not recorder.active:
            return
        os.makedirs(directory, exist_ok=True)
        safe = re.sub(r"[^A-Za-z0-9._-]", "_", tenant) or "tenant"
        path = os.path.join(
            directory,
            "flightrec-%s-%03d.json" % (safe, state.breaker.trips),
        )
        recorder.dump(path, reason="breaker-trip tenant=%s" % tenant)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Process until every queue is empty or breaker-parked.

        Re-consults each breaker, so after its cooldown elapses a call
        to drain is what releases a parked backlog.
        """
        while True:
            progressed = False
            for tenant, state in self._tenants.items():
                before = len(state.pending)
                self._drain_tenant(tenant, state)
                if len(state.pending) != before:
                    progressed = True
            await asyncio.sleep(0)
            if not progressed:
                return

    async def flush(self) -> None:
        """Drain, then flush every session's reorder buffer (end of
        stream) - only meaningful with ``max_lateness`` configured.

        Spilled sessions are rehydrated to flush too: their buffered
        events are part of the stream, and eviction must not change
        what gets detected.
        """
        await self.drain()
        for tenant, key in self.registry.session_keys():
            session, replayed = self.registry.acquire(tenant, key)
            self.detections.extend(
                ServiceDetection(
                    tenant, key, seq, detection,
                    replayed=True, ordinal=ordinal,
                )
                for seq, ordinal, detection in replayed
            )
            found = session.matcher.flush()
            base = session.matcher.detections_emitted - len(found)
            self.detections.extend(
                ServiceDetection(
                    tenant, key, session.seq, detection,
                    ordinal=base + offset,
                )
                for offset, detection in enumerate(found)
            )
            _DETECTIONS.add(len(found))

    async def close(self) -> None:
        """Stop workers and checkpoint every resident session."""
        if self._closed:
            return
        self._closed = True
        workers = []
        for state in self._tenants.values():
            state.stop = True
            if state.wake is not None:
                state.wake.set()
            if state.worker is not None:
                workers.append(state.worker)
        if workers:
            await asyncio.gather(*workers, return_exceptions=True)
        self.registry.checkpoint_all()
        self._export_gauges()

    def recover(self) -> List[ServiceDetection]:
        """Rehydrate every session the store knows about.

        The crash-recovery entry point: restores each session from its
        last durable checkpoint and replays its WAL suffix, returning
        the re-emitted detections (also appended to
        :attr:`detections`, flagged ``replayed=True``).  At-least-once:
        a detection delivered just before the crash may appear again.
        """
        recovered: List[ServiceDetection] = []
        for tenant, key in self.store.sessions():
            _, replayed = self.registry.acquire(tenant, key)
            recovered.extend(
                ServiceDetection(
                    tenant, key, seq, detection,
                    replayed=True, ordinal=ordinal,
                )
                for seq, ordinal, detection in replayed
            )
        self.detections.extend(recovered)
        _DETECTIONS.add(len(recovered))
        return recovered

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _export_gauges(self) -> None:
        _QUEUE_DEPTH.set(
            sum(len(state.pending) for state in self._tenants.values())
        )
        counts = {state: 0 for state in BREAKER_STATES}
        for state in self._tenants.values():
            counts[state.breaker.state] += 1
        for name, value in counts.items():
            _BREAKER_GAUGES[name].set(value)

    def parked(self, tenant: str) -> int:
        """Events waiting in a tenant's queue (parked or unprocessed)."""
        state = self._tenants.get(tenant)
        return len(state.pending) if state else 0

    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    def stats(self) -> Dict[str, Any]:
        """One JSON-friendly operational snapshot."""
        per_tenant = {}
        for tenant, state in sorted(self._tenants.items()):
            per_tenant[tenant] = {
                "submitted": state.submitted,
                "processed": state.processed,
                "quarantined": state.quarantined,
                "shed": state.shed,
                "parked": len(state.pending),
                "breaker": state.breaker.snapshot(),
            }
        return {
            "tenants": per_tenant,
            "sessions": self.registry.stats(),
            "detections": len(self.detections),
            "quarantined": len(self.quarantine),
            "labelled_tenants": self._tenant_counters.labelled_tenants(),
            "closed": self._closed,
        }


def serve_events(
    build: TagBuild,
    events: Iterable[Tuple[str, str, Any, Any]],
    config: Optional[ServiceConfig] = None,
    store: Optional[CheckpointStoreBase] = None,
    system=None,
) -> DetectionService:
    """Synchronous facade: run a whole multi-tenant stream.

    ``events`` yields ``(tenant, key, etype, time)`` tuples.  Submits
    everything, drains (flushing reorder buffers at end of stream),
    closes, and returns the closed service for inspection
    (``.detections``, ``.stats()``, ``.quarantine``).
    """

    async def _run() -> DetectionService:
        service = DetectionService(
            build, config=config, store=store, system=system
        )
        for tenant, key, etype, time in events:
            await service.submit(tenant, key, etype, time)
        await service.flush()
        await service.close()
        return service

    return asyncio.run(_run())
