"""The service-layer kill switch (``REPRO_SERVICE``).

The multi-tenant detection service is a new product surface on top of
battle-tested layers; operators get one environment variable to turn
it off wholesale.  Set ``REPRO_SERVICE=off`` (also ``0``, ``false``,
``no``, ``disabled``) and every :class:`~repro.service.DetectionService`
construction raises :class:`~repro.service.ServiceDisabledError`
unless the caller explicitly forces ``ServiceConfig(enabled=True)``
(the override the test suite uses so the rest of the system can be
exercised under the kill switch).

Nothing outside :mod:`repro.service` consults this flag, so the switch
cannot change the behaviour of existing code paths - the CI ``service``
job runs the whole tier-1 suite under ``REPRO_SERVICE=off`` to prove
it.
"""

from __future__ import annotations

import os
from typing import Optional

_OFF_VALUES = ("off", "0", "false", "no", "disabled")


def service_enabled() -> bool:
    """Is the service layer allowed to start (``REPRO_SERVICE``)?"""
    value = os.environ.get("REPRO_SERVICE", "on").strip().lower()
    return value not in _OFF_VALUES


def resolve_enabled(enabled: Optional[bool]) -> bool:
    """An explicit setting wins; ``None`` defers to the environment."""
    if enabled is None:
        return service_enabled()
    return bool(enabled)


def tenant_label_limit() -> int:
    """Cardinality bound for per-tenant metric labels.

    ``REPRO_OBS_TENANT_LABELS=N`` lets the N highest-volume tenants
    carry ``{tenant="..."}`` children on the hottest ``repro_service_*``
    counters; unset, ``0`` or any off-value disables the labels (the
    default - aggregate families are always exported either way).
    """
    value = os.environ.get("REPRO_OBS_TENANT_LABELS", "").strip().lower()
    if not value or value in _OFF_VALUES:
        return 0
    try:
        return max(0, int(value))
    except ValueError:
        return 0
