"""Sliding-window episode frequency (the original MTV95 semantics).

:mod:`repro.mining.episodes` uses reference-anchored frequencies to be
comparable with the paper's discovery problems; this module implements
the *original* Mannila-Toivonen-Verkamo definition for completeness:

    the frequency of an episode is the fraction of all windows of width
    ``w`` in which the episode occurs,

where the windows are ``[t, t + w)`` for ``t`` ranging over
``[first - w + 1, last]`` (every window overlapping the sequence,
following MTV95's convention that each event is in exactly ``w``
windows).

The implementation counts the windows containing a serial episode in
``O(|sigma| * |episode|)`` by computing, for each window start, the
earliest completion of the episode inside it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from .episodes import SerialEpisode
from .events import EventSequence


def earliest_completion(
    sequence: EventSequence, episode: SerialEpisode, from_index: int
) -> Optional[int]:
    """Index of the earliest completion of the episode starting at or
    after ``from_index`` (greedy leftmost matching, which minimises the
    completion time of serial episodes)."""
    position = from_index - 1
    for etype in episode.types:
        position = _next_of_type_at_or_after(sequence, etype, position + 1)
        if position is None:
            return None
    return position


def _next_of_type_at_or_after(sequence, etype, from_index):
    indices = sequence.occurrence_indices(etype)
    slot = bisect_left(list(indices), from_index)
    if slot < len(indices):
        return indices[slot]
    return None


def sliding_window_count(
    sequence: EventSequence, episode: SerialEpisode, window_seconds: int
) -> Tuple[int, int]:
    """(windows containing the episode, total windows).

    A window ``[t, t + w)`` contains the episode iff some occurrence
    starts and completes inside it.  For each possible first event of
    an occurrence, the greedy completion gives the minimal end time;
    the containing window starts range over an interval of ``t``
    values, unioned across first events by an interval sweep.
    """
    if window_seconds <= 0:
        raise ValueError("window width must be positive")
    if len(sequence) == 0:
        return 0, 0
    first_time, last_time = sequence.span()
    window_lo = first_time - window_seconds + 1
    window_hi = last_time  # inclusive start of the last window
    total = window_hi - window_lo + 1
    intervals: List[Tuple[int, int]] = []
    for start_index in sequence.occurrence_indices(episode.types[0]):
        completion = earliest_completion(sequence, episode, start_index)
        if completion is None:
            break  # no completion from any later start either
        start_time = sequence[start_index].time
        end_time = sequence[completion].time
        # Window starts t with t <= start_time and end_time < t + w.
        lo = max(window_lo, end_time - window_seconds + 1)
        hi = min(window_hi, start_time)
        if lo <= hi:
            intervals.append((lo, hi))
    covered = _union_length(intervals)
    return covered, total


def _union_length(intervals: List[Tuple[int, int]]) -> int:
    if not intervals:
        return 0
    intervals.sort()
    covered = 0
    current_lo, current_hi = intervals[0]
    for lo, hi in intervals[1:]:
        if lo > current_hi + 1:
            covered += current_hi - current_lo + 1
            current_lo, current_hi = lo, hi
        else:
            current_hi = max(current_hi, hi)
    covered += current_hi - current_lo + 1
    return covered


def sliding_window_frequency(
    sequence: EventSequence, episode: SerialEpisode, window_seconds: int
) -> float:
    """MTV95 frequency: covered windows / total windows."""
    covered, total = sliding_window_count(sequence, episode, window_seconds)
    if total == 0:
        return 0.0
    return covered / total


def frequent_episodes_sliding(
    sequence: EventSequence,
    window_seconds: int,
    min_frequency: float,
    max_length: int = 3,
) -> Dict[SerialEpisode, float]:
    """A-priori mining under the sliding-window frequency.

    Anti-monotone in the episode (any window containing the episode
    contains each prefix), so level-wise candidate generation applies.
    """
    if not 0 <= min_frequency <= 1:
        raise ValueError("min_frequency must be within [0, 1]")
    occurring = sorted(sequence.types())
    frequent: Dict[SerialEpisode, float] = {}
    level: List[SerialEpisode] = []
    for etype in occurring:
        episode = SerialEpisode((etype,))
        frequency = sliding_window_frequency(
            sequence, episode, window_seconds
        )
        if frequency > min_frequency:
            frequent[episode] = frequency
            level.append(episode)
    for _ in range(1, max_length):
        next_level: List[SerialEpisode] = []
        for episode in level:
            for etype in occurring:
                extended = SerialEpisode(episode.types + (etype,))
                frequency = sliding_window_frequency(
                    sequence, extended, window_seconds
                )
                if frequency > min_frequency:
                    frequent[extended] = frequency
                    next_level.append(extended)
        if not next_level:
            break
        level = next_level
    return frequent
