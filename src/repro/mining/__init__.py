"""Frequent complex-event discovery (paper Section 5).

Exports the event/sequence model, the discovery problem and both
solvers, the pruning steps, the MTV95-style baseline, and synthetic
workload generators.
"""

from .discovery import (
    DiscoveryOutcome,
    EventDiscoveryProblem,
    TypeConstraint,
    candidate_assignments,
    discover,
    naive_discover,
)
from .episodes import (
    SerialEpisode,
    episode_frequency,
    frequent_serial_episodes,
    occurs_within,
)
from .evaluation import Evaluation, evaluate_anchors, labelled_planted_workload
from .events import Event, EventSequence
from .extensions import (
    constrained_assignments,
    discover_any_reference,
    tick_anchor_events,
    unroll,
    unrolled_assignment,
    with_anchors,
)
from .incremental import CandidateState, IncrementalDiscovery
from .generator import (
    ATM_TYPES,
    PLANT_TYPES,
    STOCK_TYPES,
    atm_sequence,
    instance_windows,
    plant_log_sequence,
    planted_sequence,
    random_noise,
    sample_instance,
    stock_sequence,
)
from .windows import (
    frequent_episodes_sliding,
    sliding_window_count,
    sliding_window_frequency,
)
from .pruning import (
    PruningStats,
    consistency_gate,
    filter_reference_occurrences,
    reduce_sequence,
    required_granularities,
    screen_candidate_pairs,
    screen_candidates,
    seconds_windows,
)

__all__ = [
    "Event",
    "EventSequence",
    "EventDiscoveryProblem",
    "DiscoveryOutcome",
    "discover",
    "naive_discover",
    "candidate_assignments",
    "PruningStats",
    "consistency_gate",
    "reduce_sequence",
    "required_granularities",
    "filter_reference_occurrences",
    "screen_candidates",
    "screen_candidate_pairs",
    "seconds_windows",
    "SerialEpisode",
    "occurs_within",
    "episode_frequency",
    "frequent_serial_episodes",
    "IncrementalDiscovery",
    "CandidateState",
    "Evaluation",
    "evaluate_anchors",
    "labelled_planted_workload",
    "sliding_window_count",
    "sliding_window_frequency",
    "frequent_episodes_sliding",
    "random_noise",
    "sample_instance",
    "instance_windows",
    "planted_sequence",
    "stock_sequence",
    "atm_sequence",
    "plant_log_sequence",
    "TypeConstraint",
    "constrained_assignments",
    "discover_any_reference",
    "tick_anchor_events",
    "with_anchors",
    "unroll",
    "unrolled_assignment",
    "STOCK_TYPES",
    "ATM_TYPES",
    "PLANT_TYPES",
]
