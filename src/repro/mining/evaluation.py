"""Evaluation utilities for mining experiments.

Planted-pattern workloads come with ground truth; these helpers turn
per-anchor predictions into the precision/recall/F1 numbers the
benchmark experiments report, and build labelled workloads in one call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

from ..constraints.structure import ComplexEventType
from ..granularity.registry import GranularitySystem
from .events import EventSequence
from .generator import planted_sequence


@dataclass(frozen=True)
class Evaluation:
    """Binary-classification counts with the usual derived metrics."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )
        correct = self.true_positives + self.true_negatives
        return correct / total if total else 1.0

    def __str__(self) -> str:
        return "P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d tn=%d)" % (
            self.precision,
            self.recall,
            self.f1,
            self.true_positives,
            self.false_positives,
            self.false_negatives,
            self.true_negatives,
        )


def frontier_frequencies(
    hit_counts: Iterable[int], total_roots: int
) -> Tuple[float, ...]:
    """Per-candidate frequencies from batched hit counters.

    The batched scan engine (``REPRO_BATCH=on``) counts hits per
    candidate while sharing one traversal across the whole frontier;
    the split back to per-candidate support is exact - each counter is
    incremented only for its own candidate's accepting runs - so the
    frequency definition is unchanged from the per-candidate path:
    ``hits / total_roots``, with the empty-sequence convention of 0.0
    when there are no reference occurrences.
    """
    if total_roots <= 0:
        return tuple(0.0 for _ in hit_counts)
    return tuple(hits / total_roots for hits in hit_counts)


def evaluate_anchors(
    truth: Mapping[int, bool],
    predict: Callable[[int], bool],
) -> Evaluation:
    """Score a per-anchor predictor against ground-truth labels.

    ``truth`` maps anchor identifiers (e.g. timestamps or indices) to
    whether a genuine occurrence anchors there; ``predict`` is called
    with each identifier.
    """
    tp = fp = fn = tn = 0
    for anchor, expected in truth.items():
        predicted = predict(anchor)
        if predicted and expected:
            tp += 1
        elif predicted:
            fp += 1
        elif expected:
            fn += 1
        else:
            tn += 1
    return Evaluation(tp, fp, fn, tn)


def labelled_planted_workload(
    complex_event_type: ComplexEventType,
    system: GranularitySystem,
    n_roots: int,
    confidence: float,
    seed: int,
    noise_types: Iterable[str] = (),
    noise_events_per_root: int = 5,
    root_spacing_seconds: int = 30 * 86400,
) -> Tuple[EventSequence, Dict[int, bool]]:
    """A planted workload plus per-anchor ground truth.

    Returns the sequence and ``{root timestamp: anchors a planted
    occurrence}``.  Ground truth is recovered with the exact reference
    matcher (so "planted" means *actually realised*, even if the
    generator's sampling placed extra coincidental matches - those are
    labelled True as well, which is the honest labelling for
    evaluating matchers).
    """
    from ..automata.structmatch import occurs_at

    rng = random.Random(seed)
    sequence, _ = planted_sequence(
        complex_event_type,
        system,
        n_roots=n_roots,
        confidence=confidence,
        rng=rng,
        noise_types=list(noise_types),
        noise_events_per_root=noise_events_per_root,
        root_spacing_seconds=root_spacing_seconds,
    )
    root_type = complex_event_type.event_type(
        complex_event_type.structure.root
    )
    truth = {
        sequence[index].time: occurs_at(complex_event_type, sequence, index)
        for index in sequence.occurrence_indices(root_type)
    }
    return sequence, truth
