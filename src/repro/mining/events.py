"""Events and event sequences (paper Section 2).

An event is a pair ``(event type, timestamp)`` with the timestamp a
non-negative integer (seconds of the absolute timeline).  An event
sequence is a time-ordered finite list of events; ties are kept in
insertion order.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, Iterator, List, NamedTuple, Set, Tuple


class Event(NamedTuple):
    """A typed, timestamped occurrence."""

    etype: str
    time: int

    def __str__(self) -> str:
        return "(%s, %d)" % (self.etype, self.time)


class EventSequence:
    """An immutable, time-sorted sequence of events with index helpers.

    Provides the access paths the mining layer needs: events by type,
    events in a half-open time window, and positional iteration.
    """

    def __init__(self, events: Iterable[Event]):
        events = [
            e if isinstance(e, Event) else Event(*e) for e in events
        ]
        for event in events:
            if event.time < 0:
                raise ValueError("negative timestamp in %s" % (event,))
        self._events: List[Event] = sorted(events, key=lambda e: e.time)
        self._times: List[int] = [e.time for e in self._events]
        self._by_type: Dict[str, List[int]] = {}
        self._times_by_type: Dict[str, List[int]] = {}
        for index, event in enumerate(self._events):
            self._by_type.setdefault(event.etype, []).append(index)
            self._times_by_type.setdefault(event.etype, []).append(
                event.time
            )
        self._anchor_index = None
        self._columnar = None

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventSequence):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(str(e) for e in self._events[:4])
        suffix = ", ..." if len(self._events) > 4 else ""
        return "<EventSequence %d events [%s%s]>" % (
            len(self._events),
            preview,
            suffix,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def types(self) -> Set[str]:
        """The set of event types occurring in the sequence."""
        return set(self._by_type)

    def occurrence_indices(self, etype: str) -> Tuple[int, ...]:
        """Positions of all events of a type, in time order."""
        return tuple(self._by_type.get(etype, ()))

    def count(self, etype: str) -> int:
        """Number of occurrences of a type."""
        return len(self._by_type.get(etype, ()))

    def first_index_at_or_after(self, time: int) -> int:
        """Position of the first event with timestamp >= ``time``."""
        return bisect_left(self._times, time)

    def last_index_at_or_before(self, time: int) -> int:
        """Position just past the last event with timestamp <= ``time``."""
        return bisect_right(self._times, time)

    def window(self, start: int, stop: int) -> List[Event]:
        """Events with ``start <= time <= stop`` (inclusive bounds)."""
        lo = bisect_left(self._times, start)
        hi = bisect_right(self._times, stop)
        return self._events[lo:hi]

    def has_type_in_window(self, etype: str, start: int, stop: int) -> bool:
        """Is there an event of ``etype`` with timestamp in [start, stop]?

        One O(log occurrences) bisect on the per-type timestamp list -
        the hot primitive behind root filtering, candidate screening
        and anchor viability.
        """
        times = self._times_by_type.get(etype)
        if not times:
            return False
        pos = bisect_left(times, start)
        return pos < len(times) and times[pos] <= stop

    def count_type_in_window(self, etype: str, start: int, stop: int) -> int:
        """Number of ``etype`` events with timestamp in [start, stop]."""
        times = self._times_by_type.get(etype)
        if not times or stop < start:
            return 0
        return bisect_right(times, stop) - bisect_left(times, start)

    def anchor_index(self) -> "AnchorIndex":
        """The per-type posting-list/skip index (built once, cached)."""
        if self._anchor_index is None:
            from ..store.anchorindex import AnchorIndex

            self._anchor_index = AnchorIndex.from_events(
                (e.etype, e.time) for e in self._events
            )
        return self._anchor_index

    def columnar(self) -> "ColumnarEventStore":
        """The cached columnar view of this sequence.

        Positions in the view equal positions in the sequence (both are
        time-sorted with ties in insertion order), so the dense batch
        matcher and the object matcher agree index for index.  Built
        once and cached - the sequence is immutable.
        """
        if self._columnar is None:
            from ..store.columnar import ColumnarEventStore

            self._columnar = ColumnarEventStore.from_sequence(self)
        return self._columnar

    def adopt_columnar(self, store: "ColumnarEventStore") -> None:
        """Install an externally built columnar view for this sequence.

        The parallel engine's workers attach to the parent's columns
        over shared memory (:meth:`~repro.store.columnar.
        ColumnarEventStore.to_shared`) and adopt the attached store
        here instead of rebuilding it.  The store must hold exactly
        this sequence's events in order - positions are the contract
        every consumer relies on - so only the event count is cheap
        enough to verify eagerly.
        """
        if len(store) != len(self._events):
            raise ValueError(
                "columnar view holds %d events, sequence holds %d"
                % (len(store), len(self._events))
            )
        self._columnar = store

    def slice_positions(self, lo: int, hi: int) -> "EventSequence":
        """A new sequence holding positions ``[lo, hi)`` of this one.

        Position ``p`` of the parent maps to ``p - lo`` in the slice
        (order is preserved: a slice of a time-sorted list is sorted,
        and the constructor's sort is stable).  The parallel engine's
        slice mode uses this to hand a worker only its shard's window.
        """
        return EventSequence(self._events[lo:hi])

    def filtered(self, keep) -> "EventSequence":
        """A new sequence with the events satisfying the predicate."""
        return EventSequence([e for e in self._events if keep(e)])

    def merged_with(self, other: "EventSequence") -> "EventSequence":
        """The union of two sequences (duplicates kept, time-merged)."""
        return EventSequence(list(self._events) + list(other))

    def shifted(self, delta: int) -> "EventSequence":
        """All timestamps moved by ``delta`` seconds (must stay >= 0)."""
        return EventSequence(
            Event(e.etype, e.time + delta) for e in self._events
        )

    def relabelled(self, mapping: Dict[str, str]) -> "EventSequence":
        """Event types renamed through a mapping (others unchanged)."""
        return EventSequence(
            Event(mapping.get(e.etype, e.etype), e.time)
            for e in self._events
        )

    def span(self) -> Tuple[int, int]:
        """(first, last) timestamps; raises on an empty sequence."""
        if not self._events:
            raise ValueError("empty sequence has no span")
        return self._times[0], self._times[-1]
