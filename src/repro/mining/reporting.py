"""Plain-text reports for discovery outcomes and structure analyses.

Formatting helpers shared by the CLI, the examples and interactive use:
everything returns a string (no printing), fixed-width layout, no
third-party dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..constraints.analysis import TightnessRow
from ..constraints.propagation import PropagationResult
from .discovery import DiscoveryOutcome


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A minimal fixed-width table (left-aligned, two-space gutters)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]

    def line(values):
        return "  ".join(
            value.ljust(widths[i]) for i, value in enumerate(values)
        ).rstrip()

    out = [line(headers), line("-" * width for width in widths)]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def discovery_report(outcome: DiscoveryOutcome) -> str:
    """Solutions plus the per-step pipeline statistics."""
    sections: List[str] = []
    if not outcome.stats.consistent:
        return "structure is inconsistent; nothing to mine"
    if outcome.solutions:
        rows = []
        for cet in outcome.solutions:
            assignment = ", ".join(
                "%s=%s" % (variable, cet.assignment[variable])
                for variable in cet.structure.variables
            )
            rows.append(
                ("%.3f" % outcome.frequencies[cet], assignment)
            )
        sections.append(format_table(("freq", "assignment"), rows))
    else:
        sections.append("no complex event type exceeded the threshold")
    stats = outcome.stats
    rows = [
        ("events", stats.sequence_events_before, stats.sequence_events_after),
        ("anchors", stats.roots_before, stats.roots_after),
    ]
    for variable in sorted(stats.candidates_before):
        rows.append(
            (
                "candidates[%s]" % variable,
                stats.candidates_before[variable],
                stats.candidates_after_depth1.get(
                    variable, stats.candidates_before[variable]
                ),
            )
        )
    sections.append(format_table(("stage", "before", "after"), rows))
    sections.append(
        "candidate types scanned: %d   automaton starts: %d"
        % (outcome.candidates_evaluated, outcome.automaton_starts)
    )
    return "\n\n".join(sections)


def propagation_report(result: PropagationResult) -> str:
    """The derived constraint network, one row per ordered pair."""
    if not result.consistent:
        return "INCONSISTENT (refuted after %d iterations)" % result.iterations
    structure = result.structure
    rows = []
    for x in structure.variables:
        for y in structure.variables:
            if x == y or not structure.has_path(x, y):
                continue
            tcgs = result.derived_tcgs(x, y)
            if tcgs:
                rows.append(
                    ("%s -> %s" % (x, y), " & ".join(str(c) for c in tcgs))
                )
    header = (
        "consistent (fixpoint after %d iterations, %d conversions "
        "attempted: %d cached, %d computed; engine=%s)"
        % (
            result.iterations,
            result.conversions_performed,
            result.conversion_cache_hits,
            result.conversion_cache_misses,
            result.engine,
        )
    )
    return header + "\n" + format_table(("pair", "derived TCGs"), rows)


def tightness_table(rows: Sequence[TightnessRow]) -> str:
    """Approximate vs exact minimal intervals, flagged when loose."""
    formatted = []
    for row in rows:
        formatted.append(
            (
                "%s -> %s" % row.pair,
                _interval(row.approximate),
                _interval(row.exact),
                "tight" if row.is_tight else "slack=%s" % row.slack,
            )
        )
    return format_table(
        ("pair", "approximate", "exact", "verdict"), formatted
    )


def _interval(value: Optional[tuple]) -> str:
    if value is None:
        return "-"
    return "[%d, %d]" % value
