"""Search-space reduction for event discovery (paper Section 5, steps 1-4).

Each function implements one optimisation step and returns enough
bookkeeping for the benchmarks to report its effect:

1. :func:`consistency_gate` - discard inconsistent structures before any
   scanning (approximate propagation, Theorem 2);
2. :func:`reduce_sequence` - drop events that cannot instantiate any
   variable (wrong type for every slot, or timestamp in a granularity
   gap required by the slot's constraints);
3. :func:`filter_reference_occurrences` - drop root occurrences whose
   derived per-variable windows contain no candidate event;
4. :func:`screen_candidates` (depth 1) and
   :func:`screen_candidate_pairs` (depth 2) - the MTV95-style a-priori
   screening on induced approximated sub-structures (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..constraints.propagation import PropagationResult, propagate
from ..constraints.structure import ComplexEventType, EventStructure
from ..granularity.calendar import second
from ..granularity.registry import GranularitySystem
from ..automata.structmatch import find_occurrence
from .events import EventSequence

Window = Tuple[int, int]


@dataclass
class PruningStats:
    """Bookkeeping of how much each step removed."""

    consistent: bool = True
    sequence_events_before: int = 0
    sequence_events_after: int = 0
    roots_before: int = 0
    roots_after: int = 0
    candidates_before: Dict[str, int] = field(default_factory=dict)
    candidates_after_depth1: Dict[str, int] = field(default_factory=dict)
    pairs_screened: int = 0
    pairs_kept: int = 0


def consistency_gate(
    structure: EventStructure,
    system: GranularitySystem,
    engine: str = "auto",
) -> Tuple[bool, PropagationResult]:
    """Step 1: propagate; report detected inconsistency and the derived
    constraints (reused by every later step).  ``engine`` selects the
    propagation engine (see :func:`repro.constraints.propagate`)."""
    result = propagate(
        structure, system, extra_granularities=[second()], engine=engine
    )
    return result.consistent, result


def seconds_windows(result: PropagationResult) -> Dict[str, Window]:
    """Derived [lo, hi] second windows from the root to each variable."""
    root = result.structure.root
    seconds = result.groups.get("second", {})
    windows = {}
    for variable in result.structure.variables:
        if variable == root:
            continue
        interval = seconds.get((root, variable))
        if interval is not None:
            windows[variable] = interval
    return windows


def required_granularities(
    structure: EventStructure,
) -> Dict[str, List]:
    """Per variable: granularities whose coverage any binding needs.

    A TCG on an arc incident to X requires ``ceil(t_X)`` to be defined
    in its granularity, so an event uncovered by one of these types can
    never instantiate X - the generalisation of the paper's "discard
    events not occurring in a business day" rule.
    """
    needed: Dict[str, Dict[str, object]] = {
        v: {} for v in structure.variables
    }
    for (src, dst), tcgs in structure.constraints.items():
        for tcg in tcgs:
            needed[src].setdefault(tcg.label, tcg.granularity)
            needed[dst].setdefault(tcg.label, tcg.granularity)
    return {v: list(types.values()) for v, types in needed.items()}


def reduce_sequence(
    structure: EventStructure,
    sequence: EventSequence,
    allowed_types: Dict[str, Optional[FrozenSet[str]]],
) -> EventSequence:
    """Step 2: keep only events that could instantiate some variable.

    ``allowed_types[X]`` is the candidate set for X (None = any type).
    Sound with the matcher's lazy clock semantics: skipped events never
    influence guards, so removing non-instantiable ones cannot change
    any match.
    """
    required = required_granularities(structure)

    def keep(event) -> bool:
        for variable in structure.variables:
            allowed = allowed_types.get(variable)
            if allowed is not None and event.etype not in allowed:
                continue
            if all(
                ttype.tick_of(event.time) is not None
                for ttype in required[variable]
            ):
                return True
        return False

    return sequence.filtered(keep)


def filter_reference_occurrences(
    structure: EventStructure,
    sequence: EventSequence,
    root_indices: Sequence[int],
    windows: Dict[str, Window],
    allowed_types: Dict[str, Optional[FrozenSet[str]]],
) -> List[int]:
    """Step 3: keep roots whose windows can possibly be filled.

    For each non-root variable with a finite derived window, the window
    anchored at the root occurrence must contain at least one event of
    an allowed type; otherwise no match can anchor there and no
    automaton needs to start (the paper's "no event in the next
    business day of an IBM-rise" rule, generalised).
    """
    all_types = sequence.types()
    survivors = []
    for index in root_indices:
        t0 = sequence[index].time
        viable = True
        for variable, (lo, hi) in windows.items():
            allowed = allowed_types.get(variable)
            types_to_try = allowed if allowed is not None else all_types
            if not any(
                sequence.has_type_in_window(etype, t0 + lo, t0 + hi)
                for etype in types_to_try
            ):
                viable = False
                break
        if viable:
            survivors.append(index)
    return survivors


def screen_candidates(
    structure: EventStructure,
    sequence: EventSequence,
    root_indices: Sequence[int],
    total_roots: int,
    windows: Dict[str, Window],
    allowed_types: Dict[str, Optional[FrozenSet[str]]],
    min_confidence: float,
) -> Dict[str, Set[str]]:
    """Step 4 at depth 1: per-variable type screening.

    For each non-root variable X and candidate type E, the frequency of
    "an E event falls in X's window" over all reference occurrences
    upper-bounds the frequency of any complex type assigning E to X
    (anti-monotonicity); types at or below the confidence threshold are
    screened out.
    """
    all_types = sequence.types()
    survivors: Dict[str, Set[str]] = {}
    for variable in structure.variables:
        if variable == structure.root:
            continue
        window = windows.get(variable)
        allowed = allowed_types.get(variable)
        pool = set(allowed) if allowed is not None else set(all_types)
        pool &= all_types  # a type absent from the data can never match
        if window is None:
            survivors[variable] = pool
            continue
        lo, hi = window
        kept = set()
        threshold = min_confidence * total_roots
        for etype in pool:
            hits = sum(
                1
                for index in root_indices
                if sequence.has_type_in_window(
                    etype,
                    sequence[index].time + lo,
                    sequence[index].time + hi,
                )
            )
            if hits > threshold:
                kept.add(etype)
        survivors[variable] = kept
    return survivors


def chain_pairs(structure: EventStructure) -> List[Tuple[str, str]]:
    """Ordered variable pairs lying on a common root chain (Section 5.1's
    sub-chain condition for k = 2), root excluded."""
    pairs = []
    for chain in structure.chains():
        inner = [v for v in chain if v != structure.root]
        for i, x in enumerate(inner):
            for y in inner[i + 1:]:
                if (x, y) not in pairs:
                    pairs.append((x, y))
    return pairs


def screen_candidate_pairs(
    result: PropagationResult,
    sequence: EventSequence,
    root_indices: Sequence[int],
    total_roots: int,
    survivors: Dict[str, Set[str]],
    reference_type: str,
    min_confidence: float,
    max_pair_candidates: int = 400,
) -> Dict[Tuple[str, str], Set[Tuple[str, str]]]:
    """Step 4 at depth 2: screen pairs of assignments on sub-chains.

    For each pair of variables on a common chain, solve the induced
    3-variable discovery problem exactly (reference matcher on the
    induced approximated sub-structure) and keep only type pairs whose
    frequency clears the threshold.  Pairs of variables whose candidate
    product exceeds ``max_pair_candidates`` are skipped (screening is an
    optimisation; skipping is always sound).
    """
    structure = result.structure
    allowed_pairs: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
    threshold = min_confidence * total_roots
    for x, y in chain_pairs(structure):
        pool_x = survivors.get(x, set())
        pool_y = survivors.get(y, set())
        if len(pool_x) * len(pool_y) > max_pair_candidates:
            continue
        sub = result.induced_substructure([structure.root, x, y])
        if sub is None:
            continue
        kept: Set[Tuple[str, str]] = set()
        for ex in pool_x:
            for ey in pool_y:
                cet = ComplexEventType(
                    sub, {structure.root: reference_type, x: ex, y: ey}
                )
                hits = 0
                remaining = len(root_indices)
                for index in root_indices:
                    if hits + remaining <= threshold:
                        break  # cannot clear the threshold any more
                    remaining -= 1
                    if find_occurrence(cet, sequence, index) is not None:
                        hits += 1
                if hits > threshold:
                    kept.add((ex, ey))
        allowed_pairs[(x, y)] = kept
    return allowed_pairs
