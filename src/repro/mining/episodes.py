"""MTV95-style serial-episode baseline.

The paper positions itself against Mannila-Toivonen-Verkamo's frequent
episodes: simple patterns (here: serial episodes - ordered type tuples)
whose total extent must fit inside one fixed window of *w seconds*.
This module implements that baseline with the same reference-anchored
frequency the discovery problems use, enabling a like-for-like
comparison of single-window patterns against TCG patterns (the paper's
"one day is not 24 hours" argument, quantified in experiment X8).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from .events import EventSequence


@dataclass(frozen=True)
class SerialEpisode:
    """An ordered tuple of event types to occur within one window."""

    types: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.types:
            raise ValueError("an episode needs at least one event type")

    def __len__(self) -> int:
        return len(self.types)

    def prefix(self) -> "SerialEpisode":
        """The episode without its last type."""
        return SerialEpisode(self.types[:-1])

    def __str__(self) -> str:
        return " -> ".join(self.types)


def occurs_within(
    sequence: EventSequence,
    episode: SerialEpisode,
    start_index: int,
    window_seconds: int,
) -> bool:
    """Does the episode occur starting at this event within the window?

    The anchored event must be the episode's first type; the remaining
    types must appear in order, each strictly after the previous event's
    position, all within ``window_seconds`` of the anchor (greedy
    leftmost matching, which is complete for serial episodes).
    """
    anchor = sequence[start_index]
    if anchor.etype != episode.types[0]:
        return False
    deadline = anchor.time + window_seconds
    position = start_index
    for etype in episode.types[1:]:
        position = _next_of_type(sequence, etype, position + 1, deadline)
        if position is None:
            return False
    return True


def _next_of_type(sequence, etype, from_index, deadline):
    for index in sequence.occurrence_indices(etype):
        if index >= from_index:
            if sequence[index].time > deadline:
                return None
            return index
    return None


def episode_frequency(
    sequence: EventSequence,
    episode: SerialEpisode,
    window_seconds: int,
) -> float:
    """Reference-anchored frequency: the fraction of first-type
    occurrences that begin an occurrence of the episode."""
    anchors = sequence.occurrence_indices(episode.types[0])
    if not anchors:
        return 0.0
    hits = sum(
        1
        for index in anchors
        if occurs_within(sequence, episode, index, window_seconds)
    )
    return hits / len(anchors)


def frequent_serial_episodes(
    sequence: EventSequence,
    window_seconds: int,
    min_frequency: float,
    max_length: int = 3,
    anchor_type: str = None,
) -> Dict[SerialEpisode, float]:
    """A-priori mining of frequent serial episodes.

    Candidate episodes of length k+1 are generated only from frequent
    episodes of length k (anti-monotonicity of the anchored frequency
    in the episode suffix).  ``anchor_type`` pins the first type, which
    matches the reference-anchored discovery problems; otherwise every
    occurring type may anchor.
    """
    if not 0 <= min_frequency <= 1:
        raise ValueError("min_frequency must be within [0, 1]")
    occurring = sorted(sequence.types())
    anchors = [anchor_type] if anchor_type is not None else occurring
    frequent: Dict[SerialEpisode, float] = {}
    level: List[SerialEpisode] = []
    for anchor in anchors:
        episode = SerialEpisode((anchor,))
        frequency = episode_frequency(sequence, episode, window_seconds)
        if frequency > min_frequency:
            frequent[episode] = frequency
            level.append(episode)
    for _ in range(1, max_length):
        next_level: List[SerialEpisode] = []
        for episode, etype in itertools.product(level, occurring):
            extended = SerialEpisode(episode.types + (etype,))
            frequency = episode_frequency(
                sequence, extended, window_seconds
            )
            if frequency > min_frequency:
                frequent[extended] = frequency
                next_level.append(extended)
        if not next_level:
            break
        level = next_level
    return frequent
