"""Synthetic event-sequence generators.

The paper's motivating workloads (stock ticks, ATM transactions,
industrial plant logs) are not published datasets; these generators
produce the closest synthetic equivalents: background noise streams plus
*planted* occurrences of a complex event type at a controlled
confidence, which exercises exactly the code paths the paper's
data-mining procedure runs on.
"""

from __future__ import annotations

import random
import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..constraints.propagation import propagate
from ..constraints.structure import ComplexEventType
from ..granularity.calendar import second
from ..granularity.registry import GranularitySystem
from .events import Event, EventSequence


def random_noise(
    types: Sequence[str],
    start: int,
    stop: int,
    count: int,
    rng: random.Random,
    align: int = 60,
) -> List[Event]:
    """``count`` uniformly random events of random types in [start, stop].

    Timestamps are aligned to ``align`` seconds (minutes by default),
    which keeps generated data realistic for tick-style feeds.
    """
    if stop < start:
        raise ValueError("empty noise window")
    events = []
    for _ in range(count):
        t = rng.randrange(start, stop + 1)
        events.append(Event(rng.choice(list(types)), t - t % align))
    return events


def sample_instance(
    complex_event_type: ComplexEventType,
    system: GranularitySystem,
    root_time: int,
    rng: random.Random,
    attempts: int = 500,
    align: int = 60,
) -> Optional[List[Event]]:
    """Sample events realising one occurrence with the root at a time.

    Uses the propagated second-windows as sampling envelopes and
    rejection-samples each variable against the actual TCGs.  Returns
    None when no realisation is found within the attempt budget (e.g.
    the root time sits badly within the calendar); callers simply try
    another root time.
    """
    structure = complex_event_type.structure
    windows = instance_windows(structure, system)
    order = structure.topological_order()
    assert order is not None

    for _ in range(attempts):
        times: Dict[str, int] = {structure.root: root_time}
        ok = True
        for variable in order[1:]:
            lo, hi = windows.get(variable, (0, 0))
            lo += root_time
            hi += root_time
            lo = max(
                lo,
                max(
                    times[p]
                    for p in structure.predecessors(variable)
                    if p in times
                ),
            )
            if lo > hi:
                ok = False
                break
            placed = False
            for _ in range(40):
                t = rng.randrange(lo, hi + 1)
                t -= t % align
                if t < lo:
                    t += align
                if t > hi:
                    t = lo
                if _satisfies_parents(structure, times, variable, t):
                    times[variable] = t
                    placed = True
                    break
            if not placed:
                ok = False
                break
        if ok and structure.is_satisfied_by(times):
            return [
                Event(complex_event_type.event_type(v), times[v])
                for v in order
            ]
    return None


_WINDOW_CACHE: "weakref.WeakKeyDictionary" = None  # initialised below


def instance_windows(structure, system) -> Dict[str, Tuple[int, int]]:
    """Second-granularity windows root -> variable (cached per object).

    Cached in nested weak dictionaries so entries die with their
    structure/system objects (no id-reuse hazards).
    """
    global _WINDOW_CACHE
    if _WINDOW_CACHE is None:
        _WINDOW_CACHE = weakref.WeakKeyDictionary()
    per_system = _WINDOW_CACHE.get(structure)
    if per_system is None:
        per_system = weakref.WeakKeyDictionary()
        _WINDOW_CACHE[structure] = per_system
    cached = per_system.get(system)
    if cached is not None:
        return cached
    result = propagate(structure, system, extra_granularities=[second()])
    if not result.consistent:
        raise ValueError("cannot sample from an inconsistent structure")
    windows = {}
    seconds = result.groups.get("second", {})
    for variable in structure.variables:
        if variable == structure.root:
            continue
        interval = seconds.get((structure.root, variable))
        if interval is None:
            raise ValueError(
                "no finite second window for %r; add constraints"
                % (variable,)
            )
        windows[variable] = interval
    per_system[system] = windows
    return windows


def _satisfies_parents(structure, times, variable, t) -> bool:
    for pred in structure.predecessors(variable):
        if pred in times:
            for tcg in structure.tcgs(pred, variable):
                if not tcg.is_satisfied(times[pred], t):
                    return False
    return True


def planted_sequence(
    complex_event_type: ComplexEventType,
    system: GranularitySystem,
    n_roots: int,
    confidence: float,
    rng: random.Random,
    noise_types: Sequence[str] = (),
    noise_events_per_root: int = 5,
    root_spacing_seconds: int = 30 * 86400,
    start_time: int = 0,
) -> Tuple[EventSequence, int]:
    """A sequence with ``n_roots`` root events, a ``confidence`` fraction
    of which anchor a full planted occurrence.

    Returns the sequence and the number of *complete* plants (the ground
    truth for precision/recall experiments).  Root events are spaced
    ``root_spacing_seconds`` apart with jitter; background noise is
    sprinkled around each root.
    """
    if not 0 <= confidence <= 1:
        raise ValueError("confidence must be within [0, 1]")
    structure = complex_event_type.structure
    root_type = complex_event_type.event_type(structure.root)
    events: List[Event] = []
    planted = 0
    want_complete = round(n_roots * confidence)
    for i in range(n_roots):
        base = start_time + i * root_spacing_seconds
        root_time = base + rng.randrange(0, root_spacing_seconds // 4)
        root_time -= root_time % 60
        complete = planted < want_complete
        if complete:
            # Some root positions cannot anchor an instance (e.g. a
            # weekend for business-day constraints); retry a few spots.
            instance = None
            for _ in range(12):
                instance = sample_instance(
                    complex_event_type, system, root_time, rng
                )
                if instance is not None:
                    break
                root_time = base + rng.randrange(
                    0, root_spacing_seconds // 4
                )
                root_time -= root_time % 60
            if instance is None:
                complete = False
            else:
                events.extend(instance)
                planted += 1
        if not complete:
            events.append(Event(root_type, root_time))
        if noise_types:
            events.extend(
                random_noise(
                    noise_types,
                    base,
                    base + root_spacing_seconds - 1,
                    noise_events_per_root,
                    rng,
                )
            )
    return EventSequence(events), planted


# ----------------------------------------------------------------------
# Domain-flavoured generators (the paper's motivating applications)
# ----------------------------------------------------------------------

STOCK_TYPES = (
    "IBM-rise",
    "IBM-fall",
    "HP-rise",
    "HP-fall",
    "IBM-earnings-report",
)

ATM_TYPES = (
    "deposit",
    "withdrawal",
    "balance-check",
    "card-retained",
    "large-withdrawal",
)

PLANT_TYPES = (
    "sensor-overheat",
    "valve-open",
    "pressure-drop",
    "malfunction",
    "shutdown",
)


def stock_sequence(
    days: int, rng: random.Random, events_per_day: int = 8
) -> EventSequence:
    """Stock-style feed: rises/falls on a 15-minute grid during b-days,
    occasional earnings reports - the Example 1 backdrop."""
    events = []
    for day in range(days):
        if day % 7 in (5, 6):
            continue  # markets closed on weekends
        open_t = day * 86400 + 9 * 3600 + 1800  # 09:30
        for _ in range(events_per_day):
            offset = rng.randrange(0, 26) * 900  # 15-minute grid, 6.5h
            etype = rng.choice(STOCK_TYPES[:4])
            events.append(Event(etype, open_t + offset))
        if rng.random() < 0.05:
            events.append(
                Event("IBM-earnings-report", open_t + 7 * 3600)
            )
    return EventSequence(events)


def atm_sequence(
    days: int, rng: random.Random, events_per_day: int = 12
) -> EventSequence:
    """ATM transaction log: dense, around-the-clock activity."""
    events = []
    for day in range(days):
        for _ in range(events_per_day):
            t = day * 86400 + rng.randrange(0, 86400)
            weights = [0.3, 0.4, 0.2, 0.02, 0.08]
            etype = rng.choices(ATM_TYPES, weights=weights)[0]
            events.append(Event(etype, t - t % 60))
    return EventSequence(events)


def plant_log_sequence(
    days: int, rng: random.Random, events_per_day: int = 6
) -> EventSequence:
    """Industrial plant log with sporadic malfunction cascades."""
    events = []
    for day in range(days):
        for _ in range(events_per_day):
            t = day * 86400 + rng.randrange(0, 86400)
            etype = rng.choices(PLANT_TYPES, weights=[3, 3, 2, 1, 1])[0]
            events.append(Event(etype, t - t % 60))
    return EventSequence(events)
