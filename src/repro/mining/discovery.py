"""Event-discovery problems and their solvers (paper Section 5).

An event-discovery problem ``(S, alpha, E0, psi)`` asks for every
complex event type derived from structure ``S`` - root assigned the
reference type ``E0``, other variables assigned within ``psi`` - whose
frequency in a sequence exceeds ``alpha``.  Frequency is the fraction of
``E0`` occurrences anchoring at least one occurrence of the type.

Two solvers are provided:

* :func:`naive_discover` - the paper's baseline: enumerate every
  candidate assignment and run its TAG from every ``E0`` occurrence;
* :func:`discover` - the optimised five-step pipeline (consistency
  gate, sequence reduction, reference reduction, candidate screening at
  depths 1 and 2, then the TAG scan on what is left).

Both return identical solution sets (verified by the test suite); the
benchmarks quantify the difference in work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..automata.builder import build_tag
from ..automata.matching import TagMatcher
from ..constraints.structure import ComplexEventType, EventStructure
from ..granularity.registry import GranularitySystem
from ..obs import counter, span
from .events import EventSequence
from .pruning import (
    PruningStats,
    consistency_gate,
    filter_reference_occurrences,
    reduce_sequence,
    screen_candidate_pairs,
    screen_candidates,
    seconds_windows,
)


_MINE_RUNS = counter(
    "repro_mine_runs_total", "Discovery pipeline invocations"
)
_CANDIDATES_EVALUATED = counter(
    "repro_mine_candidates_evaluated_total",
    "Candidate assignments that reached the TAG scan",
)
_AUTOMATON_STARTS = counter(
    "repro_mine_automaton_starts_total",
    "Anchored automaton runs started by discovery",
)
_SOLUTIONS = counter(
    "repro_mine_solutions_total", "Frequent complex event types found"
)


class TypeConstraint:
    """``same`` or ``distinct`` event types across a group of variables.

    The paper's Section 6: "two or more variables could be constrained
    to be assigned to the same (or different) event types".  Attach
    instances to ``EventDiscoveryProblem.type_constraints``; both
    solvers honour them when enumerating candidates.
    """

    SAME = "same"
    DISTINCT = "distinct"

    def __init__(self, kind: str, variables):
        if kind not in (self.SAME, self.DISTINCT):
            raise ValueError("kind must be 'same' or 'distinct'")
        variables = tuple(variables)
        if len(variables) < 2:
            raise ValueError("a type constraint needs >= 2 variables")
        self.kind = kind
        self.variables = variables

    def is_satisfied(self, assignment: Mapping[str, str]) -> bool:
        """Does a full variable->type assignment satisfy the constraint?"""
        types = [assignment[v] for v in self.variables]
        if self.kind == self.SAME:
            return len(set(types)) == 1
        return len(set(types)) == len(types)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeConstraint):
            return NotImplemented
        return (self.kind, self.variables) == (other.kind, other.variables)

    def __hash__(self) -> int:
        return hash((self.kind, self.variables))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TypeConstraint(%r, %r)" % (self.kind, self.variables)


@dataclass(frozen=True)
class EventDiscoveryProblem:
    """The quadruple ``(S, alpha, E0, psi)``.

    ``candidates`` maps non-root variables to their allowed event types;
    a missing entry (or None value) leaves the variable unrestricted
    (the paper's ``psi = empty`` variant - any type occurring in the
    sequence may be assigned).  ``type_constraints`` optionally require
    groups of variables to share (or differ in) their assigned types
    (Section 6).
    """

    structure: EventStructure
    min_confidence: float
    reference_type: str
    candidates: Mapping[str, Optional[FrozenSet[str]]] = field(
        default_factory=dict
    )
    type_constraints: Tuple[TypeConstraint, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.min_confidence <= 1:
            raise ValueError("min_confidence must be within [0, 1]")
        unknown = set(self.candidates) - set(self.structure.variables)
        if unknown:
            raise ValueError("candidates for unknown variables %r" % unknown)
        if self.structure.root in self.candidates:
            raise ValueError(
                "the root variable is always assigned the reference type"
            )
        object.__setattr__(
            self, "type_constraints", tuple(self.type_constraints)
        )
        constrained = {
            variable
            for constraint in self.type_constraints
            for variable in constraint.variables
        }
        unknown = constrained - set(self.structure.variables)
        if unknown:
            raise ValueError(
                "type constraints on unknown variables %r" % unknown
            )

    def allowed_types(self) -> Dict[str, Optional[FrozenSet[str]]]:
        """Per-variable allowed types (root pinned to the reference)."""
        allowed: Dict[str, Optional[FrozenSet[str]]] = {
            self.structure.root: frozenset([self.reference_type])
        }
        for variable in self.structure.variables:
            if variable == self.structure.root:
                continue
            pool = self.candidates.get(variable)
            allowed[variable] = frozenset(pool) if pool is not None else None
        return allowed


@dataclass
class DiscoveryOutcome:
    """Solutions plus the per-step work statistics of the pipeline.

    ``parallelism`` describes how the TAG scan was executed (workers,
    shards, tasks, executor mode) when the parallel engine ran; it is
    None for plain serial scans and excluded from serial-vs-parallel
    equivalence comparisons - everything else is bit-identical.
    """

    solutions: List[ComplexEventType]
    frequencies: Dict[ComplexEventType, float]
    stats: PruningStats
    automaton_starts: int = 0
    candidates_evaluated: int = 0
    parallelism: Optional[Dict[str, object]] = field(
        default=None, compare=False
    )

    def solution_assignments(self) -> List[Dict[str, str]]:
        """Plain dict form of the solutions, for display and tests."""
        return [dict(cet.assignment) for cet in self.solutions]


def candidate_assignments(
    problem: EventDiscoveryProblem,
    sequence: EventSequence,
    survivors: Optional[Dict[str, set]] = None,
    allowed_pairs: Optional[Dict[Tuple[str, str], set]] = None,
) -> Iterable[Dict[str, str]]:
    """Enumerate candidate assignments (optionally pre-screened).

    Follows the paper: only event types occurring in the sequence are
    considered.  ``survivors`` (per-variable) and ``allowed_pairs``
    (per-chain-pair) restrict the product when screening ran.
    """
    structure = problem.structure
    occurring = sequence.types()
    variables = [v for v in structure.variables if v != structure.root]
    pools = []
    allowed = problem.allowed_types()
    for variable in variables:
        if survivors is not None:
            pool = set(survivors.get(variable, ()))
        else:
            pool = (
                set(allowed[variable])
                if allowed[variable] is not None
                else set(occurring)
            )
            pool &= occurring
        if not pool:
            return
        pools.append(sorted(pool))
    for combo in itertools.product(*pools):
        assignment = dict(zip(variables, combo))
        assignment[structure.root] = problem.reference_type
        if allowed_pairs is not None:
            ok = all(
                (assignment[x], assignment[y]) in kept
                for (x, y), kept in allowed_pairs.items()
            )
            if not ok:
                continue
        if not all(
            constraint.is_satisfied(assignment)
            for constraint in problem.type_constraints
        ):
            continue
        yield assignment


def _batched_scan(
    problem: EventDiscoveryProblem,
    outcome: DiscoveryOutcome,
    reduced: EventSequence,
    system: GranularitySystem,
    candidates: List[Dict[str, str]],
    windows,
    roots: List[int],
    total: int,
    horizon: Optional[int],
    strict: bool,
    anchor_screen: bool,
) -> None:
    """Step 5 via the banked multi-candidate engine (``REPRO_BATCH``).

    Per-candidate anchor screening is unchanged (the identical viable
    root sets the per-candidate path computes); what is shared is the
    traversal - one :class:`~repro.automata.dense.BatchRuntime` sweep
    per root advances every candidate for which that root is viable.
    Per-candidate hits and starts split back exactly, so solutions,
    frequencies and ``automaton_starts`` are bit-identical to the
    ``REPRO_BATCH=off`` reference (held by the differential suite).
    """
    from ..automata.dense import BatchRuntime, compile_dense_batch
    from ..mining.evaluation import frontier_frequencies
    from ..parallel.engine import candidate_requirements

    structure = problem.structure
    view = reduced.columnar()
    root_times = [reduced[root].time for root in roots]
    builds = [
        build_tag(ComplexEventType(structure, assignment), system=system)
        for assignment in candidates
    ]
    hit_counts = [0] * len(candidates)
    start_counts = [0] * len(candidates)
    for positions, batch in compile_dense_batch(
        [build.tag for build in builds]
    ):
        viable_lists = []
        for position in positions:
            requirements = (
                candidate_requirements(
                    candidates[position], windows, structure.root
                )
                if anchor_screen and windows
                else ()
            )
            if requirements:
                mask = view.screen_anchors(root_times, requirements)
                viable = [
                    root for root, ok in zip(roots, mask) if ok
                ]
            else:
                viable = list(roots)
            viable_lists.append(viable)
        runtime = BatchRuntime(
            batch,
            view,
            builds[positions[0]].root_symbol,
            structure.root,
            strict=strict,
            horizon_seconds=horizon,
        )
        matched = runtime.scan_roots(viable_lists)
        for k, position in enumerate(positions):
            hit_counts[position] = len(matched[k])
            start_counts[position] = len(viable_lists[k])
    frequencies = frontier_frequencies(hit_counts, total)
    for position, assignment in enumerate(candidates):
        cet = ComplexEventType(structure, assignment)
        outcome.candidates_evaluated += 1
        outcome.automaton_starts += start_counts[position]
        frequency = frequencies[position]
        frequent = frequency > problem.min_confidence
        with span(
            "mine.candidate",
            assignment=" ".join(
                "%s=%s" % item for item in sorted(assignment.items())
            ),
        ) as candidate_span:
            candidate_span.set(
                frequency=round(frequency, 6), frequent=frequent
            )
        if frequent:
            outcome.solutions.append(cet)
            outcome.frequencies[cet] = frequency


def _frequency(
    matcher: TagMatcher,
    sequence: EventSequence,
    root_indices: Iterable[int],
    total_roots: int,
) -> Tuple[float, int]:
    """Fraction of reference occurrences anchoring a match."""
    hits = 0
    starts = 0
    with span("tag.match", total_roots=total_roots) as match_span:
        for index in root_indices:
            starts += 1
            if matcher.occurs_at(sequence, index):
                hits += 1
        match_span.set(starts=starts, hits=hits)
    if total_roots == 0:
        return 0.0, starts
    return hits / total_roots, starts


def naive_discover(
    problem: EventDiscoveryProblem,
    sequence: EventSequence,
    system: GranularitySystem,
    strict: bool = False,
) -> DiscoveryOutcome:
    """The paper's naive algorithm: every candidate, every root."""
    structure = problem.structure
    with span(
        "mine.naive",
        variables=len(structure.variables),
        events=len(sequence),
    ) as mine_span:
        roots = sequence.occurrence_indices(problem.reference_type)
        total = len(roots)
        stats = PruningStats(
            sequence_events_before=len(sequence),
            sequence_events_after=len(sequence),
            roots_before=total,
            roots_after=total,
        )
        outcome = DiscoveryOutcome(
            solutions=[], frequencies={}, stats=stats
        )
        if total > 0:
            for assignment in candidate_assignments(problem, sequence):
                cet = ComplexEventType(structure, assignment)
                matcher = TagMatcher(
                    build_tag(cet, system=system), strict=strict
                )
                outcome.candidates_evaluated += 1
                frequency, starts = _frequency(
                    matcher, sequence, roots, total
                )
                outcome.automaton_starts += starts
                if frequency > problem.min_confidence:
                    outcome.solutions.append(cet)
                    outcome.frequencies[cet] = frequency
        mine_span.set(
            candidates=outcome.candidates_evaluated,
            solutions=len(outcome.solutions),
        )
    _record_outcome(outcome)
    return outcome


def _record_outcome(outcome: DiscoveryOutcome) -> None:
    """Flush one discovery run's work counts to the registry."""
    _MINE_RUNS.inc()
    _CANDIDATES_EVALUATED.add(outcome.candidates_evaluated)
    _AUTOMATON_STARTS.add(outcome.automaton_starts)
    _SOLUTIONS.add(len(outcome.solutions))


def discover(
    problem: EventDiscoveryProblem,
    sequence: EventSequence,
    system: GranularitySystem,
    screen_depth: int = 2,
    strict: bool = False,
    engine: str = "auto",
    parallel: Optional[object] = None,
    shard_size: Optional[object] = "auto",
    anchor_screen: bool = True,
) -> DiscoveryOutcome:
    """The optimised pipeline (Section 5 steps 1-5).

    ``screen_depth`` 0 disables candidate screening, 1 enables the
    per-variable windows screen, 2 adds the sub-chain pair screen.
    ``engine`` selects the propagation engine used by the consistency
    gate (every engine derives identical windows).

    ``parallel`` requests the sharded scan engine: an int worker count,
    ``"auto"`` (one per CPU), or None (serial unless ``REPRO_PARALLEL``
    sets a default; ``REPRO_PARALLEL=off`` always forces serial).
    ``shard_size`` is roots per time shard (``"auto"`` load-balances).
    ``anchor_screen`` toggles the posting-list anchor viability filter;
    it runs in both the serial and parallel engines, so results are
    bit-identical for any worker count.
    """
    with span(
        "mine",
        variables=len(problem.structure.variables),
        events=len(sequence),
        screen_depth=screen_depth,
    ) as mine_span:
        outcome = _discover(
            problem,
            sequence,
            system,
            screen_depth,
            strict,
            engine,
            parallel=parallel,
            shard_size=shard_size,
            anchor_screen=anchor_screen,
        )
        mine_span.set(
            consistent=outcome.stats.consistent,
            candidates=outcome.candidates_evaluated,
            automaton_starts=outcome.automaton_starts,
            solutions=len(outcome.solutions),
        )
    _record_outcome(outcome)
    return outcome


def _discover(
    problem: EventDiscoveryProblem,
    sequence: EventSequence,
    system: GranularitySystem,
    screen_depth: int,
    strict: bool,
    engine: str,
    parallel: Optional[object] = None,
    shard_size: Optional[object] = "auto",
    anchor_screen: bool = True,
) -> DiscoveryOutcome:
    structure = problem.structure
    allowed = problem.allowed_types()
    roots_all = sequence.occurrence_indices(problem.reference_type)
    total = len(roots_all)
    stats = PruningStats(
        sequence_events_before=len(sequence), roots_before=total
    )
    outcome = DiscoveryOutcome(solutions=[], frequencies={}, stats=stats)
    if total == 0:
        stats.sequence_events_after = len(sequence)
        return outcome

    # Step 1: consistency gate.
    with span("mine.consistency_gate", engine=engine):
        consistent, propagation = consistency_gate(
            structure, system, engine=engine
        )
    stats.consistent = consistent
    if not consistent:
        stats.sequence_events_after = len(sequence)
        return outcome
    windows = seconds_windows(propagation)

    # Step 2: sequence reduction.
    with span("mine.reduce", events_before=len(sequence)) as reduce_span:
        reduced = reduce_sequence(structure, sequence, allowed)
        stats.sequence_events_after = len(reduced)
        roots = list(reduced.occurrence_indices(problem.reference_type))

        # Step 3: reference-occurrence reduction.
        roots = filter_reference_occurrences(
            structure, reduced, roots, windows, allowed
        )
        reduce_span.set(
            events_after=len(reduced), roots_after=len(roots)
        )
    stats.roots_after = len(roots)
    if not roots:
        return outcome

    # Step 4: candidate screening.
    survivors = None
    allowed_pairs = None
    for variable in structure.variables:
        if variable == structure.root:
            continue
        pool = allowed[variable]
        stats.candidates_before[variable] = (
            len(pool & reduced.types())
            if pool is not None
            else len(reduced.types())
        )
    if screen_depth >= 1:
        with span("mine.screen", depth=1):
            survivors = screen_candidates(
                structure,
                reduced,
                roots,
                total,
                windows,
                allowed,
                problem.min_confidence,
            )
        stats.candidates_after_depth1 = {
            v: len(pool) for v, pool in survivors.items()
        }
        if any(not pool for pool in survivors.values()):
            return outcome
    if screen_depth >= 2 and survivors is not None:
        with span("mine.screen", depth=2):
            allowed_pairs = screen_candidate_pairs(
                propagation,
                reduced,
                roots,
                total,
                survivors,
                problem.reference_type,
                problem.min_confidence,
            )
        stats.pairs_screened = len(allowed_pairs)
        stats.pairs_kept = sum(len(kept) for kept in allowed_pairs.values())

    # Step 5: TAG scan over the surviving candidates and roots.
    horizon = None
    if windows and len(windows) == len(structure.variables) - 1:
        horizon = max(hi for _, hi in windows.values())
    from ..parallel.engine import (
        candidate_requirements,
        parallel_scan,
        resolve_workers,
    )

    workers = resolve_workers(parallel)
    with span("mine.scan", roots=len(roots), workers=workers) as scan_span:
        if workers > 1:
            candidates = list(
                candidate_assignments(
                    problem,
                    reduced,
                    survivors=survivors,
                    allowed_pairs=allowed_pairs,
                )
            )
            results, report = parallel_scan(
                reduced,
                system,
                structure,
                candidates,
                windows,
                roots,
                horizon,
                strict=strict,
                workers=workers,
                shard_size=shard_size,
                anchor_screen=anchor_screen,
            )
            outcome.parallelism = report
            for result in results:  # candidate-enumeration order
                cet = ComplexEventType(structure, result.assignment)
                outcome.candidates_evaluated += 1
                outcome.automaton_starts += result.starts
                frequency = result.hits / total if total else 0.0
                frequent = frequency > problem.min_confidence
                with span(
                    "mine.candidate",
                    assignment=" ".join(
                        "%s=%s" % item
                        for item in sorted(result.assignment.items())
                    ),
                ) as candidate_span:
                    candidate_span.set(
                        frequency=round(frequency, 6), frequent=frequent
                    )
                if frequent:
                    outcome.solutions.append(cet)
                    outcome.frequencies[cet] = frequency
            scan_span.set(candidates=outcome.candidates_evaluated)
            return outcome
        from ..automata.dense import batch_active

        if batch_active():
            candidates = list(
                candidate_assignments(
                    problem,
                    reduced,
                    survivors=survivors,
                    allowed_pairs=allowed_pairs,
                )
            )
            if len(candidates) > 1:
                _batched_scan(
                    problem,
                    outcome,
                    reduced,
                    system,
                    candidates,
                    windows,
                    roots,
                    total,
                    horizon,
                    strict,
                    anchor_screen,
                )
                scan_span.set(candidates=outcome.candidates_evaluated)
                return outcome
            # A frontier of one gains nothing from banking; fall
            # through to the per-candidate path below.
        view = None
        index = None
        if anchor_screen and windows:
            from ..store.columnar import columnar_active

            if columnar_active():
                # Batched screen: one searchsorted sweep per requirement
                # over the whole anchor column (same viable set as the
                # per-anchor posting-list probes).
                view = reduced.columnar()
                root_times = [reduced[root].time for root in roots]
            else:
                index = reduced.anchor_index()
        for assignment in candidate_assignments(
            problem, reduced, survivors=survivors, allowed_pairs=allowed_pairs
        ):
            cet = ComplexEventType(structure, assignment)
            with span(
                "mine.candidate",
                assignment=" ".join(
                    "%s=%s" % item for item in sorted(assignment.items())
                ),
            ) as candidate_span:
                matcher = TagMatcher(
                    build_tag(cet, system=system),
                    strict=strict,
                    horizon_seconds=horizon,
                )
                outcome.candidates_evaluated += 1
                # The anchor screen: start automata only at roots whose
                # propagated windows the posting-list index can witness
                # for *this* assignment (the parallel engine applies the
                # identical filter, keeping the two bit-identical).
                viable = roots
                if view is not None:
                    mask = view.screen_anchors(
                        root_times,
                        candidate_requirements(
                            assignment, windows, structure.root
                        ),
                    )
                    viable = [
                        root for root, ok in zip(roots, mask) if ok
                    ]
                elif index is not None:
                    viable = index.viable_anchors(
                        [(root, reduced[root].time) for root in roots],
                        candidate_requirements(
                            assignment, windows, structure.root
                        ),
                    )
                frequency, starts = _frequency(
                    matcher, reduced, viable, total
                )
                outcome.automaton_starts += starts
                frequent = frequency > problem.min_confidence
                candidate_span.set(
                    frequency=round(frequency, 6), frequent=frequent
                )
            if frequent:
                outcome.solutions.append(cet)
                outcome.frequencies[cet] = frequency
        scan_span.set(candidates=outcome.candidates_evaluated)
    return outcome
