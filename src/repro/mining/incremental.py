"""Incremental event discovery over live streams.

Batch discovery re-scans a stored sequence; this module maintains a
discovery problem's candidate frequencies *online*: one
:class:`~repro.automata.streaming.StreamingMatcher` per candidate
complex event type consumes each arriving event, and per-candidate
matched-anchor counts update as detections fire.  At any moment
:meth:`IncrementalDiscovery.solutions` reports the candidates currently
above the confidence threshold.

Candidates are fixed up front (from the problem's ``psi`` candidate
sets - the screening steps need a stored sequence, so unrestricted
variables are not supported here; pre-screen on a history window and
pass the survivors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..automata.builder import build_tag
from ..automata.streaming import StreamingMatcher
from ..constraints.propagation import propagate
from ..constraints.structure import ComplexEventType
from ..granularity.calendar import second
from ..granularity.registry import GranularitySystem
from .discovery import EventDiscoveryProblem
from .events import Event


@dataclass
class CandidateState:
    """Live counters for one candidate complex event type."""

    pattern: ComplexEventType
    matcher: StreamingMatcher
    matched_anchors: int = 0

    def frequency(self, total_anchors: int) -> float:
        if total_anchors == 0:
            return 0.0
        return self.matched_anchors / total_anchors


class IncrementalDiscovery:
    """Maintain a discovery problem's answer over an event stream."""

    def __init__(
        self,
        problem: EventDiscoveryProblem,
        system: GranularitySystem,
        horizon_seconds: Optional[int] = None,
    ):
        self.problem = problem
        self.system = system
        structure = problem.structure
        allowed = problem.allowed_types()
        unrestricted = [
            variable
            for variable, pool in allowed.items()
            if pool is None
        ]
        if unrestricted:
            raise ValueError(
                "incremental discovery needs explicit candidate sets; "
                "unrestricted variables: %r (pre-screen on a history "
                "window first)" % (unrestricted,)
            )
        if horizon_seconds is None:
            result = propagate(
                structure, self.system, extra_granularities=[second()]
            )
            if result.consistent:
                seconds = result.groups.get("second", {})
                bounds = [
                    seconds.get((structure.root, v))
                    for v in structure.variables
                    if v != structure.root
                ]
                if bounds and all(b is not None for b in bounds):
                    horizon_seconds = max(hi for _, hi in bounds)
        self.horizon_seconds = horizon_seconds
        self.candidates: List[CandidateState] = []
        import itertools

        variables = [
            v for v in structure.variables if v != structure.root
        ]
        pools = [sorted(allowed[v]) for v in variables]
        for combo in itertools.product(*pools):
            assignment = dict(zip(variables, combo))
            assignment[structure.root] = problem.reference_type
            if not all(
                constraint.is_satisfied(assignment)
                for constraint in problem.type_constraints
            ):
                continue
            pattern = ComplexEventType(structure, assignment)
            self.candidates.append(
                CandidateState(
                    pattern=pattern,
                    matcher=StreamingMatcher(
                        build_tag(pattern),
                        horizon_seconds=self.horizon_seconds,
                    ),
                )
            )
        self.total_anchors = 0
        self.events_processed = 0

    # ------------------------------------------------------------------
    def feed(self, etype: str, time: int) -> None:
        """Consume one event (non-decreasing timestamps)."""
        self.events_processed += 1
        if etype == self.problem.reference_type:
            self.total_anchors += 1
        for candidate in self.candidates:
            detections = candidate.matcher.feed(etype, time)
            candidate.matched_anchors += len(detections)

    def feed_sequence(self, events: Iterable[Event]) -> None:
        """Consume an iterable of events."""
        for event in events:
            self.feed(event.etype, event.time)

    # ------------------------------------------------------------------
    def frequencies(self) -> Dict[Tuple[Tuple[str, str], ...], float]:
        """Current frequency of every candidate, keyed by assignment."""
        return {
            tuple(sorted(candidate.pattern.assignment.items())): (
                candidate.frequency(self.total_anchors)
            )
            for candidate in self.candidates
        }

    def solutions(self) -> List[Tuple[ComplexEventType, float]]:
        """Candidates currently above the confidence threshold.

        Note: anchors whose windows are still open may yet complete, so
        a frequency can only grow until its anchors expire; treat the
        report as a monotone lower bound per anchor set.
        """
        result = []
        for candidate in self.candidates:
            frequency = candidate.frequency(self.total_anchors)
            if frequency > self.problem.min_confidence:
                result.append((candidate.pattern, frequency))
        result.sort(key=lambda pair: -pair[1])
        return result
