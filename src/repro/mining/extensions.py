"""Section 6 extensions of the event-discovery framework.

The paper's discussion section sketches several extensions "we can
easily adapt our procedure to accommodate"; this module implements
them:

* **structural reference events** - the reference type "needs not be a
  regular event type; it can be ... 'the beginning of a week'":
  :func:`tick_anchor_events` materialises granularity boundaries as
  pseudo-events so problems like "what happens in most weeks?" become
  ordinary discovery problems;
* **reference-type sets** - "the reference type E0 can be extended to
  be a set of types": :func:`discover_any_reference`;
* **type constraints between variables** - "two or more variables could
  be constrained to be assigned the same (or different) event types":
  :class:`TypeConstraint`, honoured by
  :func:`constrained_assignments` and the solvers via
  ``EventDiscoveryProblem.type_constraints``;
* **repetitive structures** - "it is not difficult to extend event
  structures to include such repetitive types": :func:`unroll` chains
  ``k`` copies of a structure with user-supplied inter-occurrence TCGs,
  turning bounded repetition into an ordinary (larger) structure.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..constraints.structure import ComplexEventType, EventStructure
from ..constraints.tcg import TCG
from ..granularity.base import TemporalType
from ..granularity.registry import GranularitySystem
from ..automata.builder import build_tag
from ..automata.matching import TagMatcher
from .discovery import (
    EventDiscoveryProblem,
    TypeConstraint,
    candidate_assignments,
)
from .events import Event, EventSequence


# ----------------------------------------------------------------------
# Structural reference events
# ----------------------------------------------------------------------
def tick_anchor_events(
    ttype: TemporalType,
    start: int,
    stop: int,
    etype: Optional[str] = None,
) -> List[Event]:
    """Pseudo-events at every tick start of a granularity in a window.

    The default event type is ``"@<label>"`` (e.g. ``"@week"``), kept
    distinct from ordinary types by convention.
    """
    if stop < start:
        raise ValueError("empty anchor window")
    name = etype if etype is not None else "@%s" % ttype.label
    events = []
    index = ttype.first_tick_at_or_after(start)
    while True:
        try:
            first, _ = ttype.tick_bounds(index)
        except ValueError:
            break
        if first > stop:
            break
        events.append(Event(name, first))
        index += 1
    return events


def with_anchors(
    sequence: EventSequence,
    ttype: TemporalType,
    etype: Optional[str] = None,
) -> EventSequence:
    """The sequence merged with tick anchors spanning its extent."""
    start, stop = sequence.span()
    return EventSequence(
        list(sequence) + tick_anchor_events(ttype, start, stop, etype=etype)
    )


# ----------------------------------------------------------------------
# Reference-type sets
# ----------------------------------------------------------------------
def discover_any_reference(
    structure: EventStructure,
    min_confidence: float,
    reference_types: Iterable[str],
    sequence: EventSequence,
    system: GranularitySystem,
    candidates: Optional[Mapping[str, Optional[FrozenSet[str]]]] = None,
) -> Dict[Tuple[Tuple[str, str], ...], float]:
    """Discovery with a *set* of reference types.

    The root may be instantiated by any of ``reference_types``;
    frequency is counted over the union of their occurrences.  Returns
    the solutions as ``{sorted non-root assignment items: frequency}``
    (the root slot varies per anchor, so it is not part of the key).
    """
    reference_types = sorted(set(reference_types))
    if not reference_types:
        raise ValueError("at least one reference type is required")
    anchors = []
    for etype in reference_types:
        anchors.extend(sequence.occurrence_indices(etype))
    total = len(anchors)
    results: Dict[Tuple[Tuple[str, str], ...], float] = {}
    if total == 0:
        return results
    root = structure.root
    # Enumerate candidate assignments once (reference-agnostic).
    probe_problem = EventDiscoveryProblem(
        structure,
        min_confidence,
        reference_types[0],
        dict(candidates) if candidates else {},
    )
    for assignment in candidate_assignments(probe_problem, sequence):
        non_root = {
            variable: etype
            for variable, etype in assignment.items()
            if variable != root
        }
        matchers = {
            etype: TagMatcher(
                build_tag(
                    ComplexEventType(structure, dict(non_root, **{root: etype}))
                )
            )
            for etype in reference_types
        }
        hits = 0
        for index in anchors:
            matcher = matchers[sequence[index].etype]
            if matcher.occurs_at(sequence, index):
                hits += 1
        frequency = hits / total
        if frequency > min_confidence:
            results[tuple(sorted(non_root.items()))] = frequency
    return results


# ----------------------------------------------------------------------
# Type constraints between variables
# ----------------------------------------------------------------------
# TypeConstraint lives in repro.mining.discovery (it is a field of
# EventDiscoveryProblem); re-exported here with the other Section 6
# extensions for discoverability.


def constrained_assignments(
    problem: EventDiscoveryProblem,
    sequence: EventSequence,
    type_constraints: Sequence[TypeConstraint],
    **kwargs,
):
    """Candidate assignments filtered by type constraints."""
    unknown = {
        variable
        for constraint in type_constraints
        for variable in constraint.variables
    } - set(problem.structure.variables)
    if unknown:
        raise ValueError("type constraints on unknown variables %r" % unknown)
    for assignment in candidate_assignments(problem, sequence, **kwargs):
        if all(c.is_satisfied(assignment) for c in type_constraints):
            yield assignment


# ----------------------------------------------------------------------
# Repetitive structures
# ----------------------------------------------------------------------
def unroll(
    structure: EventStructure,
    copies: int,
    link_tcgs: Sequence[TCG],
    separator: str = "@",
) -> EventStructure:
    """Chain ``copies`` renamed copies of a structure.

    Copy ``i``'s variables are renamed ``<var>@<i>``; ``link_tcgs``
    constrain each copy's root to the next copy's root.  The result is
    an ordinary event structure (rooted at ``<root>@0``) expressing
    bounded repetition - the paper's "repetitive kind of frequent
    events" made mineable with the unchanged machinery.
    """
    if copies < 1:
        raise ValueError("at least one copy is required")
    if copies > 1 and not link_tcgs:
        raise ValueError("link TCGs are required to chain copies")

    def rename(variable: str, copy: int) -> str:
        return "%s%s%d" % (variable, separator, copy)

    variables: List[str] = []
    constraints: Dict[Tuple[str, str], List[TCG]] = {}
    for copy in range(copies):
        for variable in structure.variables:
            variables.append(rename(variable, copy))
        for (src, dst), tcgs in structure.constraints.items():
            constraints[(rename(src, copy), rename(dst, copy))] = list(tcgs)
    for copy in range(copies - 1):
        arc = (
            rename(structure.root, copy),
            rename(structure.root, copy + 1),
        )
        constraints[arc] = list(link_tcgs)
    return EventStructure(variables, constraints)


def unrolled_assignment(
    assignment: Mapping[str, str], copies: int, separator: str = "@"
) -> Dict[str, str]:
    """Replicate a per-copy type assignment across all copies."""
    return {
        "%s%s%d" % (variable, separator, copy): etype
        for copy in range(copies)
        for variable, etype in assignment.items()
    }
