"""Dense TAG compilation and the columnar batch-matching runtime.

Franceschet & Montanari's automaton view of granularity matching says a
TAG is just a transition table; this module compiles the object graph of
:class:`~repro.automata.tag.TAG` into exactly that - integer state ids,
integer symbol ids, integer clock ids, per-state transition lists, and
guards lowered to threshold programs over clock indexes - and then runs
that table over the int64 columns of a
:class:`~repro.store.columnar.ColumnarEventStore`.

Three layers:

``compile_dense(tag)``
    the pure compilation step.  :meth:`DenseTAG.step` mirrors
    :meth:`repro.automata.tag.TAG.step` configuration for
    configuration (the property suite replays both state-by-state).

``ColumnPlan``
    one (dense TAG, columnar store) pairing: the store's alphabet
    events gathered into contiguous position/time/symbol columns, with
    per-clock *tick columns* precomputed through the PR-5 O(log period)
    bisection, so every clock guard in the scan is an integer
    subtraction instead of a granularity conversion.

``DenseRuntime``
    the batched anchored matcher: vectorized anchor screening over the
    whole anchor column, then a dense NFA sweep per surviving anchor
    over only the plan's events.  Its match decisions and bindings are
    bit-identical to :class:`~repro.automata.matching.TagMatcher`'s
    object path, which stays the differential reference and the
    ``REPRO_COLUMNAR=off`` kill switch.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from ..granularity.normalform import clock_distance, clock_tick_of
from ..obs import counter, span
from .clocks import And, Atom, Not, Or, TrueConstraint
from .tag import ANY, TAG

#: Symbol id of the ANY pseudo-symbol in dense transition tables.
ANY_ID = -1

# The same metric families the object matcher reports (the registry
# get-or-creates by name, so both paths share one counter).
_RUNS = counter("repro_tag_runs_total", "Anchored TAG runs started")
_MATCHES = counter("repro_tag_matches_total", "Anchored runs that matched")
_EVENTS_SCANNED = counter(
    "repro_tag_events_scanned_total", "Events scanned by anchored runs"
)
_TRANSITIONS = counter(
    "repro_tag_transitions_total", "Non-skip transitions taken"
)
_SKIPS = counter(
    "repro_tag_skips_total", "ANY self-loop survivals (skipped events)"
)
_GUARD_REJECTIONS = counter(
    "repro_tag_guard_rejections_total",
    "Transitions rejected by a clock guard",
)
_BATCHES = counter(
    "repro_tag_batch_runs_total", "Batched (columnar) root sweeps"
)


class DenseGuard:
    """A clock guard lowered to threshold checks over clock indexes.

    The builder only emits conjunctions of interval atoms, which
    compile to a flat ``atoms`` tuple evaluated with early exit; the
    general boolean closure (Or/Not, the paper's full Phi(C)) compiles
    to a small node tree.  ``None`` clock values falsify atoms exactly
    as :meth:`repro.automata.clocks.Atom.evaluate` does.
    """

    __slots__ = ("atoms", "tree", "clock_ids")

    def __init__(self, constraint, clock_index: Dict[str, int]):
        self.atoms = _flatten_conjunction(constraint, clock_index)
        self.tree = (
            None
            if self.atoms is not None
            else _compile_node(constraint, clock_index)
        )
        self.clock_ids = tuple(
            sorted(clock_index[name] for name in constraint.clocks())
        )

    def evaluate(self, values: Sequence[Optional[int]]) -> bool:
        """Truth under a dense valuation (one entry per clock id)."""
        if self.atoms is not None:
            for cidx, is_le, k in self.atoms:
                value = values[cidx]
                if value is None:
                    return False
                if is_le:
                    if value > k:
                        return False
                elif value < k:
                    return False
            return True
        return _eval_node(self.tree, values)


def _flatten_conjunction(constraint, clock_index):
    """``((clock_id, is_le, k), ...)`` when the guard is a pure
    conjunction of atoms (or trivially true), else None."""
    if isinstance(constraint, TrueConstraint):
        return ()
    if isinstance(constraint, Atom):
        return (
            (clock_index[constraint.clock], constraint.op == "le",
             constraint.k),
        )
    if isinstance(constraint, And):
        atoms: List[Tuple[int, bool, int]] = []
        for part in constraint.parts:
            flat = _flatten_conjunction(part, clock_index)
            if flat is None:
                return None
            atoms.extend(flat)
        return tuple(atoms)
    return None


def _compile_node(constraint, clock_index):
    if isinstance(constraint, TrueConstraint):
        return ("true",)
    if isinstance(constraint, Atom):
        return (
            "atom",
            clock_index[constraint.clock],
            constraint.op == "le",
            constraint.k,
        )
    if isinstance(constraint, And):
        return (
            "and",
            tuple(_compile_node(p, clock_index) for p in constraint.parts),
        )
    if isinstance(constraint, Or):
        return (
            "or",
            tuple(_compile_node(p, clock_index) for p in constraint.parts),
        )
    if isinstance(constraint, Not):
        return ("not", _compile_node(constraint.part, clock_index))
    raise TypeError(
        "cannot compile clock constraint %r" % (constraint,)
    )


def _eval_node(node, values) -> bool:
    kind = node[0]
    if kind == "true":
        return True
    if kind == "atom":
        _, cidx, is_le, k = node
        value = values[cidx]
        if value is None:
            return False
        return value <= k if is_le else value >= k
    if kind == "and":
        return all(_eval_node(part, values) for part in node[1])
    if kind == "or":
        return any(_eval_node(part, values) for part in node[1])
    return not _eval_node(node[1], values)


class DenseTransition:
    """One compiled transition: integer target/symbol, reset clock ids,
    compiled guard, and the variables it binds."""

    __slots__ = ("target", "symbol_id", "resets", "guard", "variables")

    def __init__(self, target, symbol_id, resets, guard, variables):
        self.target = target
        self.symbol_id = symbol_id
        self.resets = resets
        self.guard = guard
        self.variables = variables


class DenseTAG:
    """The transition-table form of a TAG.

    States, symbols and clocks are renumbered to dense integer ids;
    transition lists preserve the source TAG's per-state order, so a
    replay takes transitions in exactly the order the interpreted
    automaton does (bindings and dedup survivors come out identical).
    """

    __slots__ = (
        "tag",
        "states",
        "state_index",
        "symbols",
        "symbol_index",
        "clock_names",
        "clock_types",
        "start",
        "accepting",
        "by_source",
        "consuming_by_source",
    )

    def __init__(self, tag: TAG):
        self.tag = tag
        self.states: Tuple[object, ...] = tuple(tag.states)
        self.state_index: Dict[object, int] = {
            state: index for index, state in enumerate(self.states)
        }
        self.symbols: Tuple[str, ...] = tuple(sorted(tag.alphabet))
        self.symbol_index: Dict[str, int] = {
            symbol: index for index, symbol in enumerate(self.symbols)
        }
        self.clock_names: Tuple[str, ...] = tuple(sorted(tag.clocks))
        clock_index = {
            name: index for index, name in enumerate(self.clock_names)
        }
        self.clock_types = tuple(
            tag.clocks[name].granularity for name in self.clock_names
        )
        # match_from anchors at next(iter(start_states)); replicate the
        # exact same choice so multi-start TAGs stay bit-identical.
        self.start = self.state_index[next(iter(tag.start_states))]
        self.accepting = frozenset(
            self.state_index[state] for state in tag.accepting
        )
        by_source: List[List[DenseTransition]] = [
            [] for _ in self.states
        ]
        consuming: List[List[DenseTransition]] = [[] for _ in self.states]
        for state_id, state in enumerate(self.states):
            for transition in tag.transitions_from(state):
                dense = DenseTransition(
                    self.state_index[transition.target],
                    ANY_ID
                    if transition.symbol == ANY
                    else self.symbol_index[transition.symbol],
                    tuple(
                        clock_index[name]
                        for name in sorted(transition.resets)
                    ),
                    DenseGuard(transition.guard, clock_index),
                    transition.variables,
                )
                by_source[state_id].append(dense)
                if dense.symbol_id != ANY_ID:
                    consuming[state_id].append(dense)
        self.by_source = tuple(tuple(ts) for ts in by_source)
        self.consuming_by_source = tuple(tuple(ts) for ts in consuming)

    @property
    def n_clocks(self) -> int:
        return len(self.clock_names)

    def symbol_id(self, symbol: str) -> Optional[int]:
        return self.symbol_index.get(symbol)

    # ------------------------------------------------------------------
    # Definition-level replay (the property-test surface)
    # ------------------------------------------------------------------
    def step(
        self,
        state: int,
        reset_times: Tuple[int, ...],
        symbol: str,
        timestamp: int,
        strict: bool = False,
    ) -> List[Tuple[int, Tuple[int, ...]]]:
        """Dense mirror of :meth:`repro.automata.tag.TAG.step`.

        Takes and returns ``(state_id, per-clock reset times)``
        configurations; the property suite replays this against the
        interpreted automaton state-by-state (catching off-by-one guard
        evaluation, not just final matches).
        """
        if strict:
            for ttype in self.clock_types:
                if clock_tick_of(ttype, timestamp) is None:
                    return []
        values = [
            _clock_value(ttype, reset_times[index], timestamp)
            for index, ttype in enumerate(self.clock_types)
        ]
        symbol_id = self.symbol_index.get(symbol)
        successors: List[Tuple[int, Tuple[int, ...]]] = []
        for transition in self.by_source[state]:
            if (
                transition.symbol_id != ANY_ID
                and transition.symbol_id != symbol_id
            ):
                continue
            if not transition.guard.evaluate(values):
                continue
            resets = list(reset_times)
            for cidx in transition.resets:
                resets[cidx] = timestamp
            successors.append((transition.target, tuple(resets)))
        return successors


def _clock_value(ttype, reset_time: int, now: int) -> Optional[int]:
    return clock_distance(ttype, reset_time, now)


def compile_dense(tag: TAG) -> DenseTAG:
    """Compile a TAG's object graph to dense transition tables."""
    return DenseTAG(tag)


class ColumnPlan:
    """Alphabet events of one columnar store gathered for one dense TAG.

    ``positions``/``times``/``symbol_ids`` hold only the events whose
    type is in the TAG's alphabet (everything else can only take the
    ANY self-loop, which leaves configurations unchanged), and
    ``ticks[c][j]`` caches ``tick_of(times[j])`` per clock - computed
    once per (store, granularity) via the compiled normal form's
    bisection.  ``strict_bad`` lists the *global* positions (over the
    full store) whose timestamp some clock granularity does not cover;
    a strict run is truncated at the first such position after its
    anchor, exactly where the object path kills every configuration.
    """

    __slots__ = (
        "dense",
        "positions",
        "times",
        "symbol_ids",
        "ticks",
        "strict_bad",
    )

    def __init__(self, dense: DenseTAG, store, strict: bool):
        with span(
            "columnar.scan",
            events=len(store),
            alphabet=len(dense.symbols),
        ) as scan_span:
            merged: List[Tuple[int, int, int]] = []
            for sid, symbol in enumerate(dense.symbols):
                positions, times = store.postings(symbol)
                merged.extend(
                    (position, times[k], sid)
                    for k, position in enumerate(positions)
                )
            merged.sort()
            self.dense = dense
            self.positions = [m[0] for m in merged]
            self.times = [m[1] for m in merged]
            self.symbol_ids = [m[2] for m in merged]
            self.ticks: List[List[Optional[int]]] = []
            for ttype in dense.clock_types:
                memo: Dict[int, Optional[int]] = {}
                column: List[Optional[int]] = []
                for t in self.times:
                    if t in memo:
                        column.append(memo[t])
                    else:
                        z = clock_tick_of(ttype, t)
                        memo[t] = z
                        column.append(z)
                self.ticks.append(column)
            self.strict_bad: Optional[List[int]] = None
            if strict and dense.clock_types:
                bad: List[int] = []
                memo_all: Dict[int, bool] = {}
                for position in range(len(store)):
                    t = store.time_at(position)
                    covered = memo_all.get(t)
                    if covered is None:
                        covered = all(
                            clock_tick_of(ttype, t) is not None
                            for ttype in dense.clock_types
                        )
                        memo_all[t] = covered
                    if not covered:
                        bad.append(position)
                self.strict_bad = bad
            scan_span.set(plan_events=len(self.positions))

    def plan_index_of(self, global_position: int) -> Optional[int]:
        """Plan offset of a global store position (None when the event
        at that position is not an alphabet event)."""
        index = bisect_left(self.positions, global_position)
        if (
            index < len(self.positions)
            and self.positions[index] == global_position
        ):
            return index
        return None


def _plan_for(dense: DenseTAG, store, strict: bool) -> ColumnPlan:
    cache = store.plan_cache()
    key = (id(dense), bool(strict))
    entry = cache.get(key)
    if entry is not None and entry[0] is dense:
        return entry[1]
    plan = ColumnPlan(dense, store, strict)
    # The strong reference to ``dense`` keeps the id key stable.
    cache[key] = (dense, plan)
    return plan


class DenseRuntime:
    """Anchored batch matching of one dense TAG over one columnar store.

    Mirrors :meth:`repro.automata.matching.TagMatcher.match_from` /
    ``_scan`` decision for decision: same anchor step, same
    configuration dedup by (state, reset times), same transition order,
    same early accept, same horizon and strict-kill cuts - over integer
    columns instead of Python objects.
    """

    __slots__ = (
        "dense",
        "store",
        "plan",
        "strict",
        "horizon_seconds",
        "max_configurations",
        "root_symbol",
        "root_variable",
        "_root_symbol_id",
    )

    def __init__(
        self,
        dense: DenseTAG,
        store,
        root_symbol: str,
        root_variable: str,
        strict: bool = False,
        horizon_seconds: Optional[int] = None,
        max_configurations: int = 100_000,
    ):
        self.dense = dense
        self.store = store
        self.plan = _plan_for(dense, store, strict)
        self.strict = strict
        self.horizon_seconds = horizon_seconds
        self.max_configurations = max_configurations
        self.root_symbol = root_symbol
        self.root_variable = root_variable
        self._root_symbol_id = dense.symbol_id(root_symbol)

    # ------------------------------------------------------------------
    # Anchor enumeration (vectorized screen)
    # ------------------------------------------------------------------
    def viable_roots(
        self, requirements: Sequence[Tuple[str, int, int]]
    ) -> List[int]:
        """Global positions of root-symbol events surviving the anchor
        screen, computed over the whole anchor column in one sweep."""
        positions, times = self.store.postings(self.root_symbol)
        if not requirements:
            return list(positions)
        mask = self.store.screen_anchors(times, requirements)
        return [
            position
            for position, keep in zip(positions, mask)
            if keep
        ]

    # ------------------------------------------------------------------
    # The batched anchored run
    # ------------------------------------------------------------------
    def match(
        self, root_position: int
    ) -> Tuple[bool, Optional[Dict[str, int]]]:
        """(matched, bindings) for one anchored run - bit-identical to
        the object path's :class:`MatchResult` fields."""
        store = self.store
        if store.type_at(root_position) != self.root_symbol:
            return False, None
        _RUNS.inc()
        root_time = store.time_at(root_position)
        dense = self.dense
        plan = self.plan
        root_plan = plan.plan_index_of(root_position)
        if root_plan is None:  # pragma: no cover - root is in alphabet
            return False, None
        ticks = plan.ticks
        n_clocks = dense.n_clocks
        root_ticks = [ticks[c][root_plan] for c in range(n_clocks)]
        if self.strict and any(z is None for z in root_ticks):
            # The anchor step dies: some clock granularity does not
            # cover the root timestamp (TAG.step's strict clause).
            _EVENTS_SCANNED.inc()
            return False, None
        # Anchor step: all clocks reset at the root; a clock value is
        # tick(now) - tick(reset) with now == reset == root.
        values = [
            0 if root_ticks[c] is not None else None
            for c in range(n_clocks)
        ]
        reset0 = tuple([root_time] * n_clocks)
        tick0 = tuple(root_ticks)
        configs: List[Tuple[int, Tuple[int, ...], Tuple[Optional[int], ...],
                            Tuple[Tuple[str, int], ...]]] = []
        for transition in dense.by_source[dense.start]:
            if transition.symbol_id != self._root_symbol_id:
                continue
            if not (
                transition.variables
                and transition.variables[0] == self.root_variable
            ):
                continue
            if not transition.guard.evaluate(values):
                continue
            bindings = tuple(
                (variable, root_time)
                for variable in transition.variables
            )
            configs.append((transition.target, reset0, tick0, bindings))
        if not configs:
            _EVENTS_SCANNED.inc()
            return False, None
        matched, bindings, scanned = self._scan(
            root_position, root_plan, root_time, configs
        )
        _EVENTS_SCANNED.add(scanned)
        if matched:
            _MATCHES.inc()
        return matched, bindings

    def occurs_at(self, root_position: int) -> bool:
        return self.match(root_position)[0]

    def _scan(self, root_position, root_plan, root_time, configs):
        dense = self.dense
        plan = self.plan
        accepting = dense.accepting
        for config in configs:
            if config[0] in accepting:
                return True, dict(config[3]), 1
        times = plan.times
        end = len(times)
        deadline = (
            root_time + self.horizon_seconds
            if self.horizon_seconds is not None
            else None
        )
        if deadline is not None:
            end = bisect_right(times, deadline)
        if plan.strict_bad is not None:
            bad = plan.strict_bad
            k = bisect_right(bad, root_position)
            if k < len(bad):
                bad_position = bad[k]
                if deadline is None or (
                    self.store.time_at(bad_position) <= deadline
                ):
                    # The run dies at the uncovered event; no plan
                    # event at or past that global position can fire.
                    end = min(
                        end, bisect_left(plan.positions, bad_position)
                    )
        scanned = 1
        transitions_taken = 0
        skips = 0
        guard_rejections = 0
        consuming = dense.consuming_by_source
        ticks = plan.ticks
        symbol_ids = plan.symbol_ids
        n_clocks = dense.n_clocks
        accepted = None
        max_configurations = self.max_configurations
        for j in range(root_plan + 1, end):
            scanned += 1
            symbol_id = symbol_ids[j]
            now = times[j]
            seen = set()
            next_configs = []
            for config in configs:
                state, resets, rticks, bindings = config
                key = (state, resets)
                if key not in seen:
                    seen.add(key)
                    next_configs.append(config)
                    skips += 1
                values = None
                for transition in consuming[state]:
                    if transition.symbol_id != symbol_id:
                        continue
                    if values is None:
                        values = [None] * n_clocks
                        for cidx in transition.guard.clock_ids:
                            reset_tick = rticks[cidx]
                            now_tick = ticks[cidx][j]
                            if (
                                reset_tick is not None
                                and now_tick is not None
                            ):
                                values[cidx] = now_tick - reset_tick
                    else:
                        for cidx in transition.guard.clock_ids:
                            if values[cidx] is None:
                                reset_tick = rticks[cidx]
                                now_tick = ticks[cidx][j]
                                if (
                                    reset_tick is not None
                                    and now_tick is not None
                                ):
                                    values[cidx] = (
                                        now_tick - reset_tick
                                    )
                    if not transition.guard.evaluate(values):
                        guard_rejections += 1
                        continue
                    transitions_taken += 1
                    if transition.resets:
                        new_resets = list(resets)
                        new_ticks = list(rticks)
                        for cidx in transition.resets:
                            new_resets[cidx] = now
                            new_ticks[cidx] = ticks[cidx][j]
                        new_resets = tuple(new_resets)
                        new_ticks = tuple(new_ticks)
                    else:
                        new_resets = resets
                        new_ticks = rticks
                    new_bindings = bindings + tuple(
                        (variable, now)
                        for variable in transition.variables
                    )
                    successor = (
                        transition.target,
                        new_resets,
                        new_ticks,
                        new_bindings,
                    )
                    if transition.target in accepting:
                        accepted = successor
                        break
                    key = (transition.target, new_resets)
                    if key in seen:
                        continue
                    seen.add(key)
                    next_configs.append(successor)
                if accepted is not None:
                    break
            if accepted is not None:
                break
            configs = next_configs
            if len(configs) > max_configurations:
                raise RuntimeError(
                    "configuration set exceeded %d; tighten the horizon"
                    % max_configurations
                )
            if not configs:
                break
        _TRANSITIONS.add(transitions_taken)
        _SKIPS.add(skips)
        _GUARD_REJECTIONS.add(guard_rejections)
        if accepted is not None:
            return True, dict(accepted[3]), scanned
        return False, None, scanned

    # ------------------------------------------------------------------
    # Whole-store sweeps
    # ------------------------------------------------------------------
    def matching_roots(
        self, requirements: Sequence[Tuple[str, int, int]] = ()
    ) -> List[int]:
        """Global positions of root occurrences anchoring a match."""
        _BATCHES.inc()
        with span(
            "tag.batch", roots=self.store.count(self.root_symbol)
        ) as batch_span:
            viable = self.viable_roots(requirements)
            hits = [
                position
                for position in viable
                if self.occurs_at(position)
            ]
            batch_span.set(starts=len(viable), hits=len(hits))
        return hits
