"""Dense TAG compilation and the columnar batch-matching runtime.

Franceschet & Montanari's automaton view of granularity matching says a
TAG is just a transition table; this module compiles the object graph of
:class:`~repro.automata.tag.TAG` into exactly that - integer state ids,
integer symbol ids, integer clock ids, per-state transition lists, and
guards lowered to threshold programs over clock indexes - and then runs
that table over the int64 columns of a
:class:`~repro.store.columnar.ColumnarEventStore`.

Three layers:

``compile_dense(tag)``
    the pure compilation step.  :meth:`DenseTAG.step` mirrors
    :meth:`repro.automata.tag.TAG.step` configuration for
    configuration (the property suite replays both state-by-state).

``ColumnPlan``
    one (dense TAG, columnar store) pairing: the store's alphabet
    events gathered into contiguous position/time/symbol columns, with
    per-clock *tick columns* precomputed through the PR-5 O(log period)
    bisection, so every clock guard in the scan is an integer
    subtraction instead of a granularity conversion.

``DenseRuntime``
    the batched anchored matcher: vectorized anchor screening over the
    whole anchor column, then a dense NFA sweep per surviving anchor
    over only the plan's events.  Its match decisions and bindings are
    bit-identical to :class:`~repro.automata.matching.TagMatcher`'s
    object path, which stays the differential reference and the
    ``REPRO_COLUMNAR=off`` kill switch.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..granularity.normalform import clock_distance, clock_tick_of
from ..obs import counter, span
from .clocks import And, Atom, Not, Or, TrueConstraint
from .tag import ANY, TAG

#: Symbol id of the ANY pseudo-symbol in dense transition tables.
ANY_ID = -1

# The same metric families the object matcher reports (the registry
# get-or-creates by name, so both paths share one counter).
_RUNS = counter("repro_tag_runs_total", "Anchored TAG runs started")
_MATCHES = counter("repro_tag_matches_total", "Anchored runs that matched")
_EVENTS_SCANNED = counter(
    "repro_tag_events_scanned_total", "Events scanned by anchored runs"
)
_TRANSITIONS = counter(
    "repro_tag_transitions_total", "Non-skip transitions taken"
)
_SKIPS = counter(
    "repro_tag_skips_total", "ANY self-loop survivals (skipped events)"
)
_GUARD_REJECTIONS = counter(
    "repro_tag_guard_rejections_total",
    "Transitions rejected by a clock guard",
)
_BATCHES = counter(
    "repro_tag_batch_runs_total", "Batched (columnar) root sweeps"
)
_BATCH_CANDIDATES = counter(
    "repro_batch_candidates_total",
    "Candidates evaluated through batched frontier scans",
)

#: Recognised values of ``REPRO_BATCH``.
BATCH_MODES = ("auto", "on", "off")

#: Shared miss entry for :meth:`BatchRuntime.match_many` results.
_NO_MATCH: Tuple[bool, None] = (False, None)


def resolve_batch(mode: Optional[str] = None) -> str:
    """Effective multi-candidate batching mode: ``on`` or ``off``.

    ``REPRO_BATCH`` follows the same taxonomy as ``REPRO_COLUMNAR``:
    ``auto`` (the default) resolves to ``on``; ``off`` is the kill
    switch and the differential reference the batch-vs-single suite
    holds the banked scan against.
    """
    value = mode if mode is not None else os.environ.get(
        "REPRO_BATCH", "auto"
    )
    value = value.strip().lower() or "auto"
    if value not in BATCH_MODES:
        raise ValueError(
            "REPRO_BATCH must be one of %s, got %r"
            % ("|".join(BATCH_MODES), value)
        )
    return "off" if value == "off" else "on"


def batch_active() -> bool:
    """True when candidate frontiers should scan through one
    :class:`BatchRuntime` traversal.  Batching rides on the columnar
    plan, so it is only effective when the columnar backend is too."""
    from ..store.columnar import columnar_active

    return resolve_batch() == "on" and columnar_active()


class DenseGuard:
    """A clock guard lowered to threshold checks over clock indexes.

    The builder only emits conjunctions of interval atoms, which
    compile to a flat ``atoms`` tuple evaluated with early exit; the
    general boolean closure (Or/Not, the paper's full Phi(C)) compiles
    to a small node tree.  ``None`` clock values falsify atoms exactly
    as :meth:`repro.automata.clocks.Atom.evaluate` does.
    """

    __slots__ = ("atoms", "tree", "clock_ids")

    def __init__(self, constraint, clock_index: Dict[str, int]):
        self.atoms = _flatten_conjunction(constraint, clock_index)
        self.tree = (
            None
            if self.atoms is not None
            else _compile_node(constraint, clock_index)
        )
        self.clock_ids = tuple(
            sorted(clock_index[name] for name in constraint.clocks())
        )

    def evaluate(self, values: Sequence[Optional[int]]) -> bool:
        """Truth under a dense valuation (one entry per clock id)."""
        if self.atoms is not None:
            for cidx, is_le, k in self.atoms:
                value = values[cidx]
                if value is None:
                    return False
                if is_le:
                    if value > k:
                        return False
                elif value < k:
                    return False
            return True
        return _eval_node(self.tree, values)


def _flatten_conjunction(constraint, clock_index):
    """``((clock_id, is_le, k), ...)`` when the guard is a pure
    conjunction of atoms (or trivially true), else None."""
    if isinstance(constraint, TrueConstraint):
        return ()
    if isinstance(constraint, Atom):
        return (
            (clock_index[constraint.clock], constraint.op == "le",
             constraint.k),
        )
    if isinstance(constraint, And):
        atoms: List[Tuple[int, bool, int]] = []
        for part in constraint.parts:
            flat = _flatten_conjunction(part, clock_index)
            if flat is None:
                return None
            atoms.extend(flat)
        return tuple(atoms)
    return None


def _compile_node(constraint, clock_index):
    if isinstance(constraint, TrueConstraint):
        return ("true",)
    if isinstance(constraint, Atom):
        return (
            "atom",
            clock_index[constraint.clock],
            constraint.op == "le",
            constraint.k,
        )
    if isinstance(constraint, And):
        return (
            "and",
            tuple(_compile_node(p, clock_index) for p in constraint.parts),
        )
    if isinstance(constraint, Or):
        return (
            "or",
            tuple(_compile_node(p, clock_index) for p in constraint.parts),
        )
    if isinstance(constraint, Not):
        return ("not", _compile_node(constraint.part, clock_index))
    raise TypeError(
        "cannot compile clock constraint %r" % (constraint,)
    )


def _eval_node(node, values) -> bool:
    kind = node[0]
    if kind == "true":
        return True
    if kind == "atom":
        _, cidx, is_le, k = node
        value = values[cidx]
        if value is None:
            return False
        return value <= k if is_le else value >= k
    if kind == "and":
        return all(_eval_node(part, values) for part in node[1])
    if kind == "or":
        return any(_eval_node(part, values) for part in node[1])
    return not _eval_node(node[1], values)


class DenseTransition:
    """One compiled transition: integer target/symbol, reset clock ids,
    compiled guard, and the variables it binds."""

    __slots__ = ("target", "symbol_id", "resets", "guard", "variables")

    def __init__(self, target, symbol_id, resets, guard, variables):
        self.target = target
        self.symbol_id = symbol_id
        self.resets = resets
        self.guard = guard
        self.variables = variables


class DenseTAG:
    """The transition-table form of a TAG.

    States, symbols and clocks are renumbered to dense integer ids;
    transition lists preserve the source TAG's per-state order, so a
    replay takes transitions in exactly the order the interpreted
    automaton does (bindings and dedup survivors come out identical).
    """

    __slots__ = (
        "tag",
        "states",
        "state_index",
        "symbols",
        "symbol_index",
        "clock_names",
        "clock_types",
        "start",
        "accepting",
        "by_source",
        "consuming_by_source",
    )

    def __init__(self, tag: TAG):
        self.tag = tag
        self.states: Tuple[object, ...] = tuple(tag.states)
        self.state_index: Dict[object, int] = {
            state: index for index, state in enumerate(self.states)
        }
        self.symbols: Tuple[str, ...] = tuple(sorted(tag.alphabet))
        self.symbol_index: Dict[str, int] = {
            symbol: index for index, symbol in enumerate(self.symbols)
        }
        self.clock_names: Tuple[str, ...] = tuple(sorted(tag.clocks))
        clock_index = {
            name: index for index, name in enumerate(self.clock_names)
        }
        self.clock_types = tuple(
            tag.clocks[name].granularity for name in self.clock_names
        )
        # match_from anchors at next(iter(start_states)); replicate the
        # exact same choice so multi-start TAGs stay bit-identical.
        self.start = self.state_index[next(iter(tag.start_states))]
        self.accepting = frozenset(
            self.state_index[state] for state in tag.accepting
        )
        by_source: List[List[DenseTransition]] = [
            [] for _ in self.states
        ]
        consuming: List[List[DenseTransition]] = [[] for _ in self.states]
        for state_id, state in enumerate(self.states):
            for transition in tag.transitions_from(state):
                dense = DenseTransition(
                    self.state_index[transition.target],
                    ANY_ID
                    if transition.symbol == ANY
                    else self.symbol_index[transition.symbol],
                    tuple(
                        clock_index[name]
                        for name in sorted(transition.resets)
                    ),
                    DenseGuard(transition.guard, clock_index),
                    transition.variables,
                )
                by_source[state_id].append(dense)
                if dense.symbol_id != ANY_ID:
                    consuming[state_id].append(dense)
        self.by_source = tuple(tuple(ts) for ts in by_source)
        self.consuming_by_source = tuple(tuple(ts) for ts in consuming)

    @property
    def n_clocks(self) -> int:
        return len(self.clock_names)

    def symbol_id(self, symbol: str) -> Optional[int]:
        return self.symbol_index.get(symbol)

    # ------------------------------------------------------------------
    # Definition-level replay (the property-test surface)
    # ------------------------------------------------------------------
    def step(
        self,
        state: int,
        reset_times: Tuple[int, ...],
        symbol: str,
        timestamp: int,
        strict: bool = False,
    ) -> List[Tuple[int, Tuple[int, ...]]]:
        """Dense mirror of :meth:`repro.automata.tag.TAG.step`.

        Takes and returns ``(state_id, per-clock reset times)``
        configurations; the property suite replays this against the
        interpreted automaton state-by-state (catching off-by-one guard
        evaluation, not just final matches).
        """
        if strict:
            for ttype in self.clock_types:
                if clock_tick_of(ttype, timestamp) is None:
                    return []
        values = [
            _clock_value(ttype, reset_times[index], timestamp)
            for index, ttype in enumerate(self.clock_types)
        ]
        symbol_id = self.symbol_index.get(symbol)
        successors: List[Tuple[int, Tuple[int, ...]]] = []
        for transition in self.by_source[state]:
            if (
                transition.symbol_id != ANY_ID
                and transition.symbol_id != symbol_id
            ):
                continue
            if not transition.guard.evaluate(values):
                continue
            resets = list(reset_times)
            for cidx in transition.resets:
                resets[cidx] = timestamp
            successors.append((transition.target, tuple(resets)))
        return successors


def _clock_value(ttype, reset_time: int, now: int) -> Optional[int]:
    return clock_distance(ttype, reset_time, now)


def compile_dense(tag: TAG) -> DenseTAG:
    """Compile a TAG's object graph to dense transition tables."""
    return DenseTAG(tag)


class ColumnPlan:
    """Alphabet events of one columnar store gathered for one dense TAG.

    ``positions``/``times``/``symbol_ids`` hold only the events whose
    type is in the TAG's alphabet (everything else can only take the
    ANY self-loop, which leaves configurations unchanged), and
    ``ticks[c][j]`` caches ``tick_of(times[j])`` per clock - computed
    once per (store, granularity) via the compiled normal form's
    bisection.  ``strict_bad`` lists the *global* positions (over the
    full store) whose timestamp some clock granularity does not cover;
    a strict run is truncated at the first such position after its
    anchor, exactly where the object path kills every configuration.
    """

    __slots__ = (
        "dense",
        "positions",
        "times",
        "symbol_ids",
        "ticks",
        "strict_bad",
    )

    def __init__(self, dense: DenseTAG, store, strict: bool):
        with span(
            "columnar.scan",
            events=len(store),
            alphabet=len(dense.symbols),
        ) as scan_span:
            merged: List[Tuple[int, int, int]] = []
            for sid, symbol in enumerate(dense.symbols):
                positions, times = store.postings(symbol)
                merged.extend(
                    (position, times[k], sid)
                    for k, position in enumerate(positions)
                )
            merged.sort()
            self.dense = dense
            self.positions = [m[0] for m in merged]
            self.times = [m[1] for m in merged]
            self.symbol_ids = [m[2] for m in merged]
            self.ticks: List[List[Optional[int]]] = []
            for ttype in dense.clock_types:
                memo: Dict[int, Optional[int]] = {}
                column: List[Optional[int]] = []
                for t in self.times:
                    if t in memo:
                        column.append(memo[t])
                    else:
                        z = clock_tick_of(ttype, t)
                        memo[t] = z
                        column.append(z)
                self.ticks.append(column)
            self.strict_bad: Optional[List[int]] = None
            if strict and dense.clock_types:
                bad: List[int] = []
                memo_all: Dict[int, bool] = {}
                for position in range(len(store)):
                    t = store.time_at(position)
                    covered = memo_all.get(t)
                    if covered is None:
                        covered = all(
                            clock_tick_of(ttype, t) is not None
                            for ttype in dense.clock_types
                        )
                        memo_all[t] = covered
                    if not covered:
                        bad.append(position)
                self.strict_bad = bad
            scan_span.set(plan_events=len(self.positions))

    def plan_index_of(self, global_position: int) -> Optional[int]:
        """Plan offset of a global store position (None when the event
        at that position is not an alphabet event)."""
        index = bisect_left(self.positions, global_position)
        if (
            index < len(self.positions)
            and self.positions[index] == global_position
        ):
            return index
        return None


def _plan_for(dense: DenseTAG, store, strict: bool) -> ColumnPlan:
    cache = store.plan_cache()
    key = (id(dense), bool(strict))
    entry = cache.get(key)
    if entry is not None and entry[0] is dense:
        return entry[1]
    plan = ColumnPlan(dense, store, strict)
    # The strong reference to ``dense`` keeps the id key stable.
    cache[key] = (dense, plan)
    return plan


class DenseRuntime:
    """Anchored batch matching of one dense TAG over one columnar store.

    Mirrors :meth:`repro.automata.matching.TagMatcher.match_from` /
    ``_scan`` decision for decision: same anchor step, same
    configuration dedup by (state, reset times), same transition order,
    same early accept, same horizon and strict-kill cuts - over integer
    columns instead of Python objects.
    """

    __slots__ = (
        "dense",
        "store",
        "plan",
        "strict",
        "horizon_seconds",
        "max_configurations",
        "root_symbol",
        "root_variable",
        "_root_symbol_id",
    )

    def __init__(
        self,
        dense: DenseTAG,
        store,
        root_symbol: str,
        root_variable: str,
        strict: bool = False,
        horizon_seconds: Optional[int] = None,
        max_configurations: int = 100_000,
    ):
        self.dense = dense
        self.store = store
        self.plan = _plan_for(dense, store, strict)
        self.strict = strict
        self.horizon_seconds = horizon_seconds
        self.max_configurations = max_configurations
        self.root_symbol = root_symbol
        self.root_variable = root_variable
        self._root_symbol_id = dense.symbol_id(root_symbol)

    # ------------------------------------------------------------------
    # Anchor enumeration (vectorized screen)
    # ------------------------------------------------------------------
    def viable_roots(
        self, requirements: Sequence[Tuple[str, int, int]]
    ) -> List[int]:
        """Global positions of root-symbol events surviving the anchor
        screen, computed over the whole anchor column in one sweep."""
        positions, times = self.store.postings(self.root_symbol)
        if not requirements:
            return list(positions)
        mask = self.store.screen_anchors(times, requirements)
        return [
            position
            for position, keep in zip(positions, mask)
            if keep
        ]

    # ------------------------------------------------------------------
    # The batched anchored run
    # ------------------------------------------------------------------
    def match(
        self, root_position: int
    ) -> Tuple[bool, Optional[Dict[str, int]]]:
        """(matched, bindings) for one anchored run - bit-identical to
        the object path's :class:`MatchResult` fields."""
        store = self.store
        if store.type_at(root_position) != self.root_symbol:
            return False, None
        _RUNS.inc()
        root_time = store.time_at(root_position)
        dense = self.dense
        plan = self.plan
        root_plan = plan.plan_index_of(root_position)
        if root_plan is None:  # pragma: no cover - root is in alphabet
            return False, None
        ticks = plan.ticks
        n_clocks = dense.n_clocks
        root_ticks = [ticks[c][root_plan] for c in range(n_clocks)]
        if self.strict and any(z is None for z in root_ticks):
            # The anchor step dies: some clock granularity does not
            # cover the root timestamp (TAG.step's strict clause).
            _EVENTS_SCANNED.inc()
            return False, None
        # Anchor step: all clocks reset at the root; a clock value is
        # tick(now) - tick(reset) with now == reset == root.
        values = [
            0 if root_ticks[c] is not None else None
            for c in range(n_clocks)
        ]
        reset0 = tuple([root_time] * n_clocks)
        tick0 = tuple(root_ticks)
        configs: List[Tuple[int, Tuple[int, ...], Tuple[Optional[int], ...],
                            Tuple[Tuple[str, int], ...]]] = []
        for transition in dense.by_source[dense.start]:
            if transition.symbol_id != self._root_symbol_id:
                continue
            if not (
                transition.variables
                and transition.variables[0] == self.root_variable
            ):
                continue
            if not transition.guard.evaluate(values):
                continue
            bindings = tuple(
                (variable, root_time)
                for variable in transition.variables
            )
            configs.append((transition.target, reset0, tick0, bindings))
        if not configs:
            _EVENTS_SCANNED.inc()
            return False, None
        matched, bindings, scanned = self._scan(
            root_position, root_plan, root_time, configs
        )
        _EVENTS_SCANNED.add(scanned)
        if matched:
            _MATCHES.inc()
        return matched, bindings

    def occurs_at(self, root_position: int) -> bool:
        return self.match(root_position)[0]

    def _scan(self, root_position, root_plan, root_time, configs):
        dense = self.dense
        plan = self.plan
        accepting = dense.accepting
        for config in configs:
            if config[0] in accepting:
                return True, dict(config[3]), 1
        times = plan.times
        end = len(times)
        deadline = (
            root_time + self.horizon_seconds
            if self.horizon_seconds is not None
            else None
        )
        if deadline is not None:
            end = bisect_right(times, deadline)
        if plan.strict_bad is not None:
            bad = plan.strict_bad
            k = bisect_right(bad, root_position)
            if k < len(bad):
                bad_position = bad[k]
                if deadline is None or (
                    self.store.time_at(bad_position) <= deadline
                ):
                    # The run dies at the uncovered event; no plan
                    # event at or past that global position can fire.
                    end = min(
                        end, bisect_left(plan.positions, bad_position)
                    )
        scanned = 1
        transitions_taken = 0
        skips = 0
        guard_rejections = 0
        consuming = dense.consuming_by_source
        ticks = plan.ticks
        symbol_ids = plan.symbol_ids
        n_clocks = dense.n_clocks
        accepted = None
        max_configurations = self.max_configurations
        for j in range(root_plan + 1, end):
            scanned += 1
            symbol_id = symbol_ids[j]
            now = times[j]
            seen = set()
            next_configs = []
            for config in configs:
                state, resets, rticks, bindings = config
                key = (state, resets)
                if key not in seen:
                    seen.add(key)
                    next_configs.append(config)
                    skips += 1
                values = None
                for transition in consuming[state]:
                    if transition.symbol_id != symbol_id:
                        continue
                    if values is None:
                        values = [None] * n_clocks
                        for cidx in transition.guard.clock_ids:
                            reset_tick = rticks[cidx]
                            now_tick = ticks[cidx][j]
                            if (
                                reset_tick is not None
                                and now_tick is not None
                            ):
                                values[cidx] = now_tick - reset_tick
                    else:
                        for cidx in transition.guard.clock_ids:
                            if values[cidx] is None:
                                reset_tick = rticks[cidx]
                                now_tick = ticks[cidx][j]
                                if (
                                    reset_tick is not None
                                    and now_tick is not None
                                ):
                                    values[cidx] = (
                                        now_tick - reset_tick
                                    )
                    if not transition.guard.evaluate(values):
                        guard_rejections += 1
                        continue
                    transitions_taken += 1
                    if transition.resets:
                        new_resets = list(resets)
                        new_ticks = list(rticks)
                        for cidx in transition.resets:
                            new_resets[cidx] = now
                            new_ticks[cidx] = ticks[cidx][j]
                        new_resets = tuple(new_resets)
                        new_ticks = tuple(new_ticks)
                    else:
                        new_resets = resets
                        new_ticks = rticks
                    new_bindings = bindings + tuple(
                        (variable, now)
                        for variable in transition.variables
                    )
                    successor = (
                        transition.target,
                        new_resets,
                        new_ticks,
                        new_bindings,
                    )
                    if transition.target in accepting:
                        accepted = successor
                        break
                    key = (transition.target, new_resets)
                    if key in seen:
                        continue
                    seen.add(key)
                    next_configs.append(successor)
                if accepted is not None:
                    break
            if accepted is not None:
                break
            configs = next_configs
            if len(configs) > max_configurations:
                raise RuntimeError(
                    "configuration set exceeded %d; tighten the horizon"
                    % max_configurations
                )
            if not configs:
                break
        _TRANSITIONS.add(transitions_taken)
        _SKIPS.add(skips)
        _GUARD_REJECTIONS.add(guard_rejections)
        if accepted is not None:
            return True, dict(accepted[3]), scanned
        return False, None, scanned

    # ------------------------------------------------------------------
    # Whole-store sweeps
    # ------------------------------------------------------------------
    def matching_roots(
        self, requirements: Sequence[Tuple[str, int, int]] = ()
    ) -> List[int]:
        """Global positions of root occurrences anchoring a match."""
        _BATCHES.inc()
        with span(
            "tag.batch", roots=self.store.count(self.root_symbol)
        ) as batch_span:
            viable = self.viable_roots(requirements)
            hits = [
                position
                for position in viable
                if self.occurs_at(position)
            ]
            batch_span.set(starts=len(viable), hits=len(hits))
        return hits


# ----------------------------------------------------------------------
# Multi-candidate batching: one traversal for a whole frontier
# ----------------------------------------------------------------------
class DenseBatch:
    """A bank of dense TAGs sharing one clock space, scanned together.

    The members' alphabets are merged into one sorted union alphabet,
    and every member's consuming transitions are rebanked by *union*
    symbol id (``banks[m][state][union_sid]`` -> the member's
    transitions in original order).  Because all members share the same
    clock names and granularities, one :class:`ColumnPlan` over the
    union alphabet serves the whole bank: tick columns, horizon cuts
    and strict-kill positions are computed once per event instead of
    once per candidate.  ``keysets[m][state]`` is the set of union
    symbol ids state ``state`` of member ``m`` can consume - the
    routing table :class:`BatchRuntime` uses to skip members with no
    transition on the current event's symbol.
    """

    __slots__ = (
        "members",
        "symbols",
        "symbol_index",
        "clock_names",
        "clock_types",
        "banks",
        "keysets",
    )

    def __init__(self, members: Sequence[DenseTAG]):
        if not members:
            raise ValueError("a DenseBatch needs at least one member")
        first = members[0]
        for member in members[1:]:
            if member.clock_names != first.clock_names or len(
                member.clock_types
            ) != len(first.clock_types) or any(
                a is not b
                for a, b in zip(member.clock_types, first.clock_types)
            ):
                raise ValueError(
                    "batch members must share clock names and "
                    "granularities"
                )
        self.members: Tuple[DenseTAG, ...] = tuple(members)
        self.clock_names = first.clock_names
        self.clock_types = first.clock_types
        union: Set[str] = set()
        for member in self.members:
            union.update(member.symbols)
        self.symbols: Tuple[str, ...] = tuple(sorted(union))
        self.symbol_index: Dict[str, int] = {
            symbol: index for index, symbol in enumerate(self.symbols)
        }
        banks = []
        keysets = []
        for member in self.members:
            state_banks = []
            state_keys = []
            for state_id in range(len(member.states)):
                by_sid: Dict[int, List[DenseTransition]] = {}
                for transition in member.consuming_by_source[state_id]:
                    sid = self.symbol_index[
                        member.symbols[transition.symbol_id]
                    ]
                    by_sid.setdefault(sid, []).append(transition)
                state_banks.append(
                    {sid: tuple(ts) for sid, ts in by_sid.items()}
                )
                state_keys.append(frozenset(by_sid))
            banks.append(tuple(state_banks))
            keysets.append(tuple(state_keys))
        self.banks = tuple(banks)
        self.keysets = tuple(keysets)

    @property
    def n_clocks(self) -> int:
        return len(self.clock_names)


def compile_dense_batch(tags):
    """Group TAGs (or pre-compiled :class:`DenseTAG`\\ s) into banks.

    Members land in the same :class:`DenseBatch` exactly when they
    share clock names and clock granularities (the precondition for
    sharing tick columns and strict cuts).  Returns
    ``[(member_positions, batch), ...]`` in first-seen order, where
    ``member_positions`` are indexes into the input sequence - the
    caller uses them to split per-candidate results back out.
    """
    denses = [
        tag if isinstance(tag, DenseTAG) else compile_dense(tag)
        for tag in tags
    ]
    groups: Dict[tuple, List[int]] = {}
    order: List[tuple] = []
    for position, dense in enumerate(denses):
        key = (
            dense.clock_names,
            tuple(id(ttype) for ttype in dense.clock_types),
        )
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(position)
    return [
        (
            tuple(groups[key]),
            DenseBatch([denses[p] for p in groups[key]]),
        )
        for key in order
    ]


class BatchRuntime:
    """Anchored matching of a whole candidate frontier in one traversal.

    Per member, every decision mirrors :class:`DenseRuntime` exactly -
    same anchor step, same configuration dedup, same transition order,
    same early accept, horizon and strict cuts - so per-candidate match
    sets and bindings are bit-identical to the per-candidate path (the
    batch-vs-single differential suite holds this).  What the batch
    amortizes is the traversal itself: the union plan's positions,
    times, tick columns and cut bisections are computed once per root,
    and the static consumer index means an event only touches the
    members whose current states can consume its symbol.  A member
    waiting on a rare symbol pays nothing while dense noise streams by.
    """

    __slots__ = (
        "batch",
        "store",
        "plan",
        "strict",
        "horizon_seconds",
        "max_configurations",
        "root_symbol",
        "root_variable",
        "_root_symbol_ids",
        "_consumers",
        "_want_cache",
        "_anchor_memo",
    )

    def __init__(
        self,
        batch: DenseBatch,
        store,
        root_symbol: str,
        root_variable: str,
        strict: bool = False,
        horizon_seconds: Optional[int] = None,
        max_configurations: int = 100_000,
    ):
        self.batch = batch
        self.store = store
        # ColumnPlan only reads .symbols/.clock_types, so the union
        # bank slots straight into the per-store plan cache.
        self.plan = _plan_for(batch, store, strict)
        self.strict = strict
        self.horizon_seconds = horizon_seconds
        self.max_configurations = max_configurations
        self.root_symbol = root_symbol
        self.root_variable = root_variable
        self._root_symbol_ids = tuple(
            member.symbol_id(root_symbol) for member in batch.members
        )
        # Static routing: consumers[sid] = members that can *ever*
        # consume union symbol sid, in member order.  Per sweep, a
        # member processes an event only when sid is additionally in
        # its current ``wanted`` set, so wake-up semantics equal a
        # per-state index without any per-sweep index construction.
        consumers: Dict[int, List[int]] = {}
        for m, keys in enumerate(batch.keysets):
            union: Set[int] = set()
            for state_keys in keys:
                union |= state_keys
            for sid in union:
                consumers.setdefault(sid, []).append(m)
        self._consumers = {
            sid: tuple(members) for sid, members in consumers.items()
        }
        #: (member, frozenset of states) -> frozenset of consumable
        #: sids; state sets recur across roots, so the union is paid
        #: once per distinct set.
        self._want_cache: Dict[tuple, frozenset] = {}
        #: (member, clock-coverage pattern) -> anchor-step survivors
        #: as (target, variables) pairs; the anchor valuation depends
        #: only on which clocks cover the root timestamp.
        self._anchor_memo: Dict[tuple, tuple] = {}

    def match_many(
        self,
        root_position: int,
        member_ids: Optional[Sequence[int]] = None,
    ) -> Dict[int, Tuple[bool, Optional[Dict[str, int]]]]:
        """``{member_id: (matched, bindings)}`` for one anchored root,
        advancing every requested member through one event sweep."""
        batch = self.batch
        if member_ids is None:
            member_ids = range(len(batch.members))
        results: Dict[int, Tuple[bool, Optional[Dict[str, int]]]] = (
            dict.fromkeys(member_ids, _NO_MATCH)
        )
        store = self.store
        if store.type_at(root_position) != self.root_symbol:
            return results
        root_time = store.time_at(root_position)
        plan = self.plan
        root_plan = plan.plan_index_of(root_position)
        if root_plan is None:  # pragma: no cover - root is in alphabet
            return results
        ticks = plan.ticks
        n_clocks = batch.n_clocks
        root_ticks = [ticks[c][root_plan] for c in range(n_clocks)]
        strict_dead = self.strict and any(
            z is None for z in root_ticks
        )
        anchor_values = [
            0 if root_ticks[c] is not None else None
            for c in range(n_clocks)
        ]
        reset0 = tuple([root_time] * n_clocks)
        tick0 = tuple(root_ticks)
        # Anchor step per member (shared clock valuation, shared
        # resets: all clocks reset at the root for every member).
        # Which anchor transitions survive depends only on the clock
        # coverage pattern at the root, so the symbol/variable/guard
        # filtering is memoized per (member, coverage).
        cov = tuple(z is not None for z in root_ticks)
        anchor_memo = self._anchor_memo
        frontier: Dict[int, list] = {}
        runs = 0
        extra_scanned = 0
        matches = 0
        wanted: Dict[int, frozenset] = {}
        keysets = batch.keysets
        for m in member_ids:
            runs += 1
            if strict_dead:
                extra_scanned += 1
                continue
            memo = anchor_memo.get((m, cov))
            if memo is None:
                member = batch.members[m]
                root_sid = self._root_symbol_ids[m]
                collected = []
                for transition in member.by_source[member.start]:
                    if transition.symbol_id != root_sid:
                        continue
                    if not (
                        transition.variables
                        and transition.variables[0] == self.root_variable
                    ):
                        continue
                    if not transition.guard.evaluate(anchor_values):
                        continue
                    collected.append(
                        (transition.target, transition.variables)
                    )
                survivors = tuple(collected)
                # The initial wanted set is a pure function of the
                # surviving anchor targets, so it is memoized with
                # them (saves one frozenset build per member sweep).
                keys = keysets[m]
                union: Set[int] = set()
                for target, _variables in survivors:
                    union |= keys[target]
                memo = (survivors, frozenset(union))
                anchor_memo[(m, cov)] = memo
            survivors, want0 = memo
            if not survivors:
                extra_scanned += 1
                continue
            configs = [
                (
                    target,
                    reset0,
                    tick0,
                    tuple(
                        (variable, root_time) for variable in variables
                    ),
                )
                for target, variables in survivors
            ]
            accepting = batch.members[m].accepting
            accepted = None
            for config in configs:
                if config[0] in accepting:
                    accepted = config
                    break
            if accepted is not None:
                results[m] = (True, dict(accepted[3]))
                matches += 1
                extra_scanned += 1
                continue
            frontier[m] = configs
            wanted[m] = want0
        if not frontier:
            _RUNS.add(runs)
            if matches:
                _MATCHES.add(matches)
            if extra_scanned:
                _EVENTS_SCANNED.add(extra_scanned)
            return results
        # Shared cuts: one horizon bisection and one strict-kill
        # bisection serve every member (identical clock space).
        times = plan.times
        end = len(times)
        deadline = (
            root_time + self.horizon_seconds
            if self.horizon_seconds is not None
            else None
        )
        if deadline is not None:
            end = bisect_right(times, deadline)
        if plan.strict_bad is not None:
            bad = plan.strict_bad
            k = bisect_right(bad, root_position)
            if k < len(bad):
                bad_position = bad[k]
                if deadline is None or (
                    store.time_at(bad_position) <= deadline
                ):
                    end = min(
                        end, bisect_left(plan.positions, bad_position)
                    )
        # Routing: the static consumer list (who could *ever* consume
        # sid) filtered by the member's current ``wanted`` set (who can
        # consume it *now*).  An event whose symbol nobody consumes
        # costs one dict probe for the whole frontier.  ``wanted`` is
        # memoized per (member, state set) and recomputed only when a
        # transition fired - when nothing fires, a carried-over
        # frontier has the same states (dedup can only drop a config
        # whose state survives in the kept copy).
        consumers = self._consumers
        want_cache = self._want_cache
        scanned = 1
        transitions_taken = 0
        skips = 0
        guard_rejections = 0
        symbol_ids = plan.symbol_ids
        members_list = batch.members
        banks = batch.banks
        max_configurations = self.max_configurations
        for j in range(root_plan + 1, end):
            scanned += 1
            sid = symbol_ids[j]
            group = consumers.get(sid)
            if group is None:
                continue
            now = times[j]
            for m in group:
                want = wanted.get(m)
                if want is None or sid not in want:
                    continue
                bank = banks[m]
                accepting = members_list[m].accepting
                configs = frontier[m]
                # The frontier rebuild is lazy: ``next_configs`` is
                # materialised only once a guard actually passes.  A
                # wake where every transition misses or is rejected
                # leaves the (already deduplicated) frontier object
                # untouched, which is the common case on busy sweeps.
                seen = None
                next_configs = None
                accepted = None
                for idx, config in enumerate(configs):
                    state, resets, rticks, bindings = config
                    if next_configs is not None:
                        key = (state, resets)
                        if key not in seen:
                            seen.add(key)
                            next_configs.append(config)
                            skips += 1
                    values = None
                    for transition in bank[state].get(sid, ()):
                        if values is None:
                            values = [None] * n_clocks
                            for cidx in transition.guard.clock_ids:
                                reset_tick = rticks[cidx]
                                now_tick = ticks[cidx][j]
                                if (
                                    reset_tick is not None
                                    and now_tick is not None
                                ):
                                    values[cidx] = (
                                        now_tick - reset_tick
                                    )
                        else:
                            for cidx in transition.guard.clock_ids:
                                if values[cidx] is None:
                                    reset_tick = rticks[cidx]
                                    now_tick = ticks[cidx][j]
                                    if (
                                        reset_tick is not None
                                        and now_tick is not None
                                    ):
                                        values[cidx] = (
                                            now_tick - reset_tick
                                        )
                        if not transition.guard.evaluate(values):
                            guard_rejections += 1
                            continue
                        transitions_taken += 1
                        if next_configs is None:
                            # First fired transition of this wake:
                            # replay the carry dedup over the configs
                            # already visited so the rebuilt list is
                            # exactly what the eager path produced.
                            seen = set()
                            next_configs = []
                            for prev in configs[: idx + 1]:
                                pkey = (prev[0], prev[1])
                                if pkey not in seen:
                                    seen.add(pkey)
                                    next_configs.append(prev)
                                    skips += 1
                        if transition.resets:
                            new_resets = list(resets)
                            new_ticks = list(rticks)
                            for cidx in transition.resets:
                                new_resets[cidx] = now
                                new_ticks[cidx] = ticks[cidx][j]
                            new_resets = tuple(new_resets)
                            new_ticks = tuple(new_ticks)
                        else:
                            new_resets = resets
                            new_ticks = rticks
                        new_bindings = bindings + tuple(
                            (variable, now)
                            for variable in transition.variables
                        )
                        successor = (
                            transition.target,
                            new_resets,
                            new_ticks,
                            new_bindings,
                        )
                        if transition.target in accepting:
                            accepted = successor
                            break
                        key = (transition.target, new_resets)
                        if key in seen:
                            continue
                        seen.add(key)
                        next_configs.append(successor)
                    if accepted is not None:
                        break
                if accepted is not None:
                    results[m] = (True, dict(accepted[3]))
                    matches += 1
                    del frontier[m]
                    del wanted[m]
                    continue
                if next_configs is None:
                    # Nothing fired: frontier and wanted set carry
                    # over unchanged.
                    continue
                if len(next_configs) > max_configurations:
                    raise RuntimeError(
                        "configuration set exceeded %d; tighten the "
                        "horizon" % max_configurations
                    )
                frontier[m] = next_configs
                sig = frozenset(
                    config[0] for config in next_configs
                )
                want = want_cache.get((m, sig))
                if want is None:
                    keys = keysets[m]
                    union = set()
                    for state in sig:
                        union |= keys[state]
                    want = frozenset(union)
                    want_cache[(m, sig)] = want
                wanted[m] = want
            if not frontier:
                break
        _RUNS.add(runs)
        if matches:
            _MATCHES.add(matches)
        # The traversal is shared: count each event once per sweep,
        # not once per member (documented in OBSERVABILITY.md).
        _EVENTS_SCANNED.add(scanned + extra_scanned)
        _TRANSITIONS.add(transitions_taken)
        _SKIPS.add(skips)
        _GUARD_REJECTIONS.add(guard_rejections)
        return results

    def scan_roots(
        self, viable_lists: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        """Matched root positions per member, sharing one sweep per
        root across all members for which it is viable.

        ``viable_lists[m]`` are the (ascending) screened root
        positions of member ``m``; the return value is the exact list
        :meth:`DenseRuntime.matching_roots` would produce per member.
        """
        batch = self.batch
        n_members = len(batch.members)
        by_root: Dict[int, List[int]] = {}
        for m, roots in enumerate(viable_lists):
            for root in roots:
                by_root.setdefault(root, []).append(m)
        hits: List[List[int]] = [[] for _ in range(n_members)]
        _BATCHES.inc()
        _BATCH_CANDIDATES.add(n_members)
        with span(
            "tag.batch_scan",
            candidates=n_members,
            roots=len(by_root),
        ) as scan_span:
            for root in sorted(by_root):
                outcomes = self.match_many(root, by_root[root])
                for m in by_root[root]:
                    if outcomes[m][0]:
                        hits[m].append(root)
            scan_span.set(hits=sum(len(h) for h in hits))
        return hits
