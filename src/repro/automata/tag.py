"""Timed automata with granularities (TAGs), paper Section 4.

A TAG is the 6-tuple ``(Sigma, S, S0, C, T, F)``: input letters, states,
start states, granularity clocks, transitions and accepting states.  A
transition carries an input symbol, the set of clocks it resets, and a
clock-constraint guard.  This module defines the automaton structure and
the *run* semantics (definition-level, one configuration at a time); the
efficient set-of-configurations matcher lives in
:mod:`repro.automata.matching`.

Two semantics for clock values are provided:

* ``lazy`` (default): a configuration stores per-clock reset timestamps
  and values are computed as ``ceil(now) - ceil(reset)``; the telescoped
  form of the paper's per-step update, insensitive to uncovered
  timestamps of *skipped* events.
* ``strict``: the letter of the paper's run definition - every step must
  have ``ceil(t_i)`` defined for every clock granularity, so an event in
  a granularity gap kills the run even if nothing consumes it (which
  makes the strict TAG reject some genuine complex events - a measured
  errata of Theorem 3; see DESIGN.md and experiment X10).  The two
  semantics coincide on sequences whose events are covered by every
  clock granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .clocks import Clock, ClockConstraint, TrueConstraint, evaluate_clocks

#: Pseudo-symbol matched by skip transitions: any input letter.
ANY = "*"


@dataclass(frozen=True)
class Transition:
    """``<s, s', e, gamma, phi>``: from ``source`` to ``target`` on input
    ``symbol``, resetting ``resets`` and guarded by ``guard``.

    ``variables`` records which event-structure variables this transition
    consumes (empty for skip transitions) - metadata that makes runs
    self-explanatory and lets the matcher recover bindings.
    """

    source: object
    target: object
    symbol: str
    resets: FrozenSet[str] = frozenset()
    guard: ClockConstraint = field(default_factory=TrueConstraint)
    variables: Tuple[str, ...] = ()

    def matches_symbol(self, symbol: str) -> bool:
        """Does this transition accept the given input letter?"""
        return self.symbol == ANY or self.symbol == symbol

    def __str__(self) -> str:
        resets = "{%s}" % ",".join(sorted(self.resets)) if self.resets else ""
        return "%s --%s[%s]%s--> %s" % (
            self.source,
            self.symbol,
            self.guard,
            resets,
            self.target,
        )


class TAG:
    """A timed automaton with granularities.

    States are arbitrary hashable objects (the builder uses tuples of
    per-chain positions).  The transition relation is indexed by source
    state for the matcher.
    """

    def __init__(
        self,
        alphabet: Iterable[str],
        states: Iterable[object],
        start_states: Iterable[object],
        clocks: Iterable[Clock],
        transitions: Iterable[Transition],
        accepting: Iterable[object],
    ):
        self.alphabet = frozenset(alphabet)
        self.states = frozenset(states)
        self.start_states = frozenset(start_states)
        self.clocks: Dict[str, Clock] = {c.name: c for c in clocks}
        self.transitions: Tuple[Transition, ...] = tuple(transitions)
        self.accepting = frozenset(accepting)
        self._validate()
        self._by_source: Dict[object, List[Transition]] = {}
        for transition in self.transitions:
            self._by_source.setdefault(transition.source, []).append(
                transition
            )

    def _validate(self) -> None:
        if not self.start_states <= self.states:
            raise ValueError("start states must be states")
        if not self.accepting <= self.states:
            raise ValueError("accepting states must be states")
        for transition in self.transitions:
            if transition.source not in self.states:
                raise ValueError("unknown source %r" % (transition.source,))
            if transition.target not in self.states:
                raise ValueError("unknown target %r" % (transition.target,))
            unknown = transition.resets - set(self.clocks)
            if unknown:
                raise ValueError("unknown reset clocks %r" % (unknown,))
            unknown = transition.guard.clocks() - set(self.clocks)
            if unknown:
                raise ValueError("unknown guard clocks %r" % (unknown,))

    def transitions_from(self, state: object) -> Sequence[Transition]:
        """Transitions whose source is ``state``."""
        return self._by_source.get(state, ())

    # ------------------------------------------------------------------
    # Definition-level run semantics
    # ------------------------------------------------------------------
    def initial_configuration(self, start_time: int = 0) -> "Configuration":
        """A configuration in some start state with all clocks at 0.

        (With a single start state this is deterministic; the builder
        always produces a single start state.)
        """
        if len(self.start_states) != 1:
            raise ValueError(
                "initial_configuration needs a unique start state; use "
                "the matcher for multiple start states"
            )
        (start,) = self.start_states
        return Configuration(
            state=start,
            reset_times={name: start_time for name in self.clocks},
            last_time=start_time,
        )

    def step(
        self,
        config: "Configuration",
        symbol: str,
        timestamp: int,
        strict: bool = False,
    ) -> List["Configuration"]:
        """All successor configurations on one timed input event.

        In ``strict`` mode the step dies when any clock granularity does
        not cover ``timestamp`` (the paper's "must be defined" clause).
        """
        if timestamp < config.last_time:
            raise ValueError("timestamps must be non-decreasing")
        if strict:
            for clock in self.clocks.values():
                if not clock.covers(timestamp):
                    return []
        values = evaluate_clocks(self.clocks, config.reset_times, timestamp)
        successors = []
        for transition in self.transitions_from(config.state):
            if not transition.matches_symbol(symbol):
                continue
            if not transition.guard.evaluate(values):
                continue
            reset_times = dict(config.reset_times)
            for name in transition.resets:
                reset_times[name] = timestamp
            successors.append(
                Configuration(
                    state=transition.target,
                    reset_times=reset_times,
                    last_time=timestamp,
                    bindings=config.bindings
                    + tuple(
                        (variable, timestamp)
                        for variable in transition.variables
                    ),
                )
            )
        return successors

    def accepts_run_end(self, config: "Configuration") -> bool:
        """Is the configuration's state accepting?"""
        return config.state in self.accepting

    def compile_dense(self):
        """The dense transition-table form of this TAG.

        States, symbols and clocks become integer ids and per-state
        transition tuples - the representation the columnar batch
        matcher (:mod:`repro.automata.dense`) advances over whole event
        columns.  :meth:`DenseTAG.step <repro.automata.dense.DenseTAG.
        step>` replays :meth:`step` configuration for configuration;
        the property suite in ``tests/automata/test_dense_compile.py``
        holds the two trajectories equal.
        """
        from .dense import compile_dense

        return compile_dense(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<TAG states=%d clocks=%d transitions=%d>" % (
            len(self.states),
            len(self.clocks),
            len(self.transitions),
        )


@dataclass(frozen=True)
class Configuration:
    """A run snapshot: control state, per-clock reset timestamps, the
    last consumed timestamp, and variable bindings made so far."""

    state: object
    reset_times: Mapping[str, int]
    last_time: int
    bindings: Tuple[Tuple[str, int], ...] = ()

    def clock_value(self, tag: TAG, name: str, now: int) -> Optional[int]:
        """Current reading of one clock (None when undefined)."""
        return tag.clocks[name].value(self.reset_times[name], now)

    def frozen_key(self) -> Tuple:
        """Hashable identity used by the matcher for deduplication.

        Bindings are deliberately excluded: two configurations differing
        only in how they bound variables behave identically in the
        future, so keeping one of them preserves acceptance.
        """
        return (self.state, tuple(sorted(self.reset_times.items())))
