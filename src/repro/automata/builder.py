"""TAG construction from complex event types (Theorem 3, appendix A.2).

The four steps of the paper's procedure:

1. decompose the structure into root-to-leaf chains covering every arc;
2. build a simple TAG per chain - each transition consumes the chain's
   next variable, resets all of the chain's clocks, and is guarded by
   the TCGs of the arc it crosses (clocks tick in the TCG granularity);
3. combine the chain TAGs with a cross product, adding ANY self-loops so
   unrelated events can be skipped;
4. substitute event types for variable symbols via ``phi``.

Cross-product semantics: a product transition on variable ``X`` advances
*every* chain containing ``X`` simultaneously.  Because structure nodes
are distinctly labelled (the property the paper's footnote relies on)
and timestamps are non-decreasing along chains, this synchronised
product recognises exactly the binding semantics of complex events,
which the test suite verifies against the reference matcher.

The construction is polynomial in the size of the structure; the product
state space is the product of chain lengths (the paper's ``p`` chains),
built lazily from the reachable states only.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..constraints.structure import ComplexEventType, EventStructure
from ..granularity.registry import GranularitySystem
from ..obs import counter, span
from .clocks import And, Clock, ClockConstraint, TrueConstraint, within
from .tag import ANY, TAG, Transition

_BUILDS = counter("repro_tag_builds_total", "TAG constructions")
_STATES = counter(
    "repro_tag_states_total", "Reachable product states constructed"
)
_TRANSITIONS_BUILT = counter(
    "repro_tag_transitions_built_total", "Transitions constructed"
)


def clock_name(chain_index: int, granularity_label: str) -> str:
    """Canonical name of a chain-local clock: ``c<chain>:<granularity>``."""
    return "c%d:%s" % (chain_index, granularity_label)


@dataclass
class TagBuild:
    """A built TAG together with its construction metadata."""

    tag: TAG
    complex_event_type: ComplexEventType
    chains: List[Tuple[str, ...]]
    #: var -> list of (chain index, position within chain)
    variable_positions: Dict[str, List[Tuple[int, int]]]

    @property
    def structure(self) -> EventStructure:
        return self.complex_event_type.structure

    @property
    def root_symbol(self) -> str:
        """The event type assigned to the root variable."""
        return self.complex_event_type.event_type(self.structure.root)


def build_tag(
    complex_event_type: ComplexEventType,
    system: Optional[GranularitySystem] = None,
) -> TagBuild:
    """Construct the TAG recognising occurrences of a complex event type.

    When a granularity ``system`` is given, clock granularities are
    resolved through it, so every clock of every TAG built against the
    same system shares the registered type instances (and therefore the
    system's size tables and the process-wide conversion cache) instead
    of holding private copies.
    """
    structure = complex_event_type.structure
    with span(
        "tag.build", variables=len(structure.variables)
    ) as build_span:
        build = _build_tag(complex_event_type, structure, system)
        build_span.set(
            states=len(build.tag.states),
            transitions=len(build.tag.transitions),
            chains=len(build.chains),
        )
    _BUILDS.inc()
    _STATES.add(len(build.tag.states))
    _TRANSITIONS_BUILT.add(len(build.tag.transitions))
    return build


def _build_tag(
    complex_event_type: ComplexEventType,
    structure: EventStructure,
    system: Optional[GranularitySystem],
) -> TagBuild:
    chains = structure.chains()
    variable_positions: Dict[str, List[Tuple[int, int]]] = {}
    for chain_index, chain in enumerate(chains):
        for position, variable in enumerate(chain):
            variable_positions.setdefault(variable, []).append(
                (chain_index, position)
            )

    clocks = _chain_clocks(structure, chains, system)
    chain_clock_names = [
        frozenset(
            name
            for name in clocks
            if name.startswith("c%d:" % chain_index)
        )
        for chain_index in range(len(chains))
    ]

    start = tuple(0 for _ in chains)
    accepting_state = tuple(len(chain) for chain in chains)
    states = {start}
    transitions: List[Transition] = []
    queue = deque([start])
    while queue:
        state = queue.popleft()
        # Skip transition: stay put on any input.
        transitions.append(
            Transition(source=state, target=state, symbol=ANY)
        )
        for variable, positions in variable_positions.items():
            if not all(state[ci] == pos for ci, pos in positions):
                continue
            guard_parts: List[ClockConstraint] = []
            resets = set()
            target = list(state)
            for chain_index, position in positions:
                chain = chains[chain_index]
                if position > 0:
                    previous = chain[position - 1]
                    for tcg in structure.tcgs(previous, variable):
                        guard_parts.append(
                            within(
                                clock_name(chain_index, tcg.label),
                                tcg.m,
                                tcg.n,
                            )
                        )
                resets |= chain_clock_names[chain_index]
                target[chain_index] = position + 1
            target_state = tuple(target)
            guard = And(guard_parts) if guard_parts else TrueConstraint()
            transitions.append(
                Transition(
                    source=state,
                    target=target_state,
                    symbol=complex_event_type.event_type(variable),
                    resets=frozenset(resets),
                    guard=guard,
                    variables=(variable,),
                )
            )
            if target_state not in states:
                states.add(target_state)
                queue.append(target_state)

    alphabet = set(complex_event_type.assignment.values())
    tag = TAG(
        alphabet=alphabet,
        states=states,
        start_states=[start],
        clocks=clocks.values(),
        transitions=transitions,
        accepting=[accepting_state] if accepting_state in states else [],
    )
    return TagBuild(
        tag=tag,
        complex_event_type=complex_event_type,
        chains=chains,
        variable_positions=variable_positions,
    )


def _chain_clocks(
    structure: EventStructure,
    chains: Sequence[Tuple[str, ...]],
    system: Optional[GranularitySystem] = None,
) -> Dict[str, Clock]:
    """One clock per (chain, granularity appearing in that chain)."""
    clocks: Dict[str, Clock] = {}
    for chain_index, chain in enumerate(chains):
        for position in range(1, len(chain)):
            for tcg in structure.tcgs(chain[position - 1], chain[position]):
                name = clock_name(chain_index, tcg.label)
                if name not in clocks:
                    granularity = (
                        system.resolve(tcg.granularity)
                        if system is not None
                        else tcg.granularity
                    )
                    clocks[name] = Clock(name, granularity)
    return clocks
