"""Reference matcher: complex events by direct backtracking.

This is the semantic ground truth the TAG construction is tested
against: a complex event matching a structure is a one-to-one mapping
from variables to sequence events satisfying every TCG (paper Section
3).  The matcher assigns variables in topological order, anchoring the
root at a chosen occurrence, and prunes with the non-decreasing-
timestamp property of rooted TCG DAGs.

Exponential in the worst case, but exact - including for events with
equal timestamps, where the (linear-scan) TAG matcher is documented to
be incomplete when the sequence order contradicts the binding order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..constraints.structure import ComplexEventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..mining.events import EventSequence


def find_occurrence(
    complex_event_type: ComplexEventType,
    sequence: "EventSequence",
    root_index: int,
    max_nodes: int = 1_000_000,
) -> Optional[Dict[str, int]]:
    """A variable -> event-index binding anchored at ``root_index``.

    Returns None when no occurrence of the complex event type uses the
    event at ``root_index`` as its root.  Raises :class:`RuntimeError`
    when the search budget is exhausted (practically unreachable for
    realistic structures; exists to bound adversarial inputs).
    """
    structure = complex_event_type.structure
    root = structure.root
    root_event = sequence[root_index]
    if root_event.etype != complex_event_type.event_type(root):
        return None
    order = structure.topological_order()
    assert order is not None
    assert order[0] == root

    binding: Dict[str, int] = {root: root_index}
    used = {root_index}
    nodes = [0]

    def candidates(variable: str) -> List[int]:
        etype = complex_event_type.event_type(variable)
        earliest = max(
            sequence[binding[p]].time
            for p in structure.predecessors(variable)
            if p in binding
        )
        return [
            i
            for i in sequence.occurrence_indices(etype)
            if sequence[i].time >= earliest
        ]

    def consistent(variable: str, index: int) -> bool:
        t = sequence[index].time
        for pred in structure.predecessors(variable):
            if pred in binding:
                t_pred = sequence[binding[pred]].time
                for tcg in structure.tcgs(pred, variable):
                    if not tcg.is_satisfied(t_pred, t):
                        return False
        for succ in structure.successors(variable):
            if succ in binding:  # possible only with exotic orders
                t_succ = sequence[binding[succ]].time
                for tcg in structure.tcgs(variable, succ):
                    if not tcg.is_satisfied(t, t_succ):
                        return False
        return True

    def search(depth: int) -> bool:
        if depth == len(order):
            return True
        variable = order[depth]
        for index in candidates(variable):
            nodes[0] += 1
            if nodes[0] > max_nodes:
                raise RuntimeError("structmatch search budget exhausted")
            if index in used:
                continue
            if not consistent(variable, index):
                continue
            binding[variable] = index
            used.add(index)
            if search(depth + 1):
                return True
            del binding[variable]
            used.discard(index)
        return False

    if not search(1):
        return None
    return dict(binding)


def occurs_at(
    complex_event_type: ComplexEventType,
    sequence: "EventSequence",
    root_index: int,
) -> bool:
    """Does an occurrence of the type use this root event?"""
    return find_occurrence(complex_event_type, sequence, root_index) is not None


def count_occurrences(
    complex_event_type: ComplexEventType, sequence: "EventSequence"
) -> int:
    """Number of root occurrences anchoring at least one occurrence.

    This is exactly the numerator of the paper's frequency definition:
    occurrences sharing the root event count once.
    """
    root_type = complex_event_type.event_type(
        complex_event_type.structure.root
    )
    return sum(
        1
        for index in sequence.occurrence_indices(root_type)
        if occurs_at(complex_event_type, sequence, index)
    )
