"""Online (streaming) complex-event detection.

The batch :class:`~repro.automata.matching.TagMatcher` answers "does
the pattern occur anchored at this index" over a stored sequence; real
monitoring systems instead *consume events as they arrive*.  This
module provides that mode: a :class:`StreamingMatcher` is fed events in
timestamp order, maintains one configuration set per live anchor (each
root-type event opens one - the paper's "start one copy of the TAG at
every occurrence of E0"), and emits a detection the first time an
anchor's run reaches acceptance.

Anchors retire when they accept, when their configuration set dies, or
when the (propagation-derived or user-supplied) horizon passes - so
memory is bounded by the number of anchors inside one horizon window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .builder import TagBuild
from .tag import Configuration


@dataclass(frozen=True)
class Detection:
    """One detected occurrence: the anchor and its variable bindings."""

    anchor_time: int
    detected_at: int
    bindings: Dict[str, int]


class _Anchor:
    __slots__ = ("time", "configs")

    def __init__(self, time: int, configs: List[Configuration]):
        self.time = time
        self.configs = configs


class StreamingMatcher:
    """Feed events one at a time; collect detections as they complete.

    Parameters mirror :class:`~repro.automata.matching.TagMatcher`;
    ``horizon_seconds`` bounds how long an anchor stays live (None
    keeps anchors until their configuration sets die, which for
    patterns with bounded constraints happens naturally but may take
    long on sparse streams - prefer a horizon).
    """

    def __init__(
        self,
        build: TagBuild,
        strict: bool = False,
        horizon_seconds: Optional[int] = None,
        max_live_anchors: int = 10_000,
    ):
        self.build = build
        self.tag = build.tag
        self.strict = strict
        self.horizon_seconds = horizon_seconds
        self.max_live_anchors = max_live_anchors
        self._anchors: List[_Anchor] = []
        self._last_time: Optional[int] = None
        self.events_processed = 0
        self.detections_emitted = 0

    # ------------------------------------------------------------------
    def feed(self, etype: str, time: int) -> List[Detection]:
        """Consume one event; return detections it completed."""
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                "events must arrive in non-decreasing timestamp order"
            )
        self._last_time = time
        self.events_processed += 1
        detections: List[Detection] = []

        # Advance live anchors.
        survivors: List[_Anchor] = []
        for anchor in self._anchors:
            if (
                self.horizon_seconds is not None
                and time > anchor.time + self.horizon_seconds
            ):
                continue  # expired
            seen = set()
            next_configs: List[Configuration] = []
            accepted: Optional[Configuration] = None
            for config in anchor.configs:
                for successor in self.tag.step(
                    config, etype, time, self.strict
                ):
                    key = successor.frozen_key()
                    if key in seen:
                        continue
                    seen.add(key)
                    if successor.state in self.tag.accepting:
                        accepted = successor
                        break
                    next_configs.append(successor)
                if accepted is not None:
                    break
            if accepted is not None:
                detections.append(
                    Detection(
                        anchor_time=anchor.time,
                        detected_at=time,
                        bindings=dict(accepted.bindings),
                    )
                )
                continue  # anchor consumed by its detection
            if next_configs:
                anchor.configs = next_configs
                survivors.append(anchor)
        self._anchors = survivors

        # Open a new anchor if this is a root-type event.
        if etype == self.build.root_symbol:
            start_config = Configuration(
                state=next(iter(self.tag.start_states)),
                reset_times={name: time for name in self.tag.clocks},
                last_time=time,
            )
            root_variable = self.build.structure.root
            opened = [
                config
                for config in self.tag.step(
                    start_config, etype, time, self.strict
                )
                if config.bindings and config.bindings[0][0] == root_variable
            ]
            accepted = next(
                (c for c in opened if c.state in self.tag.accepting), None
            )
            if accepted is not None:
                # Single-variable patterns accept immediately.
                detections.append(
                    Detection(
                        anchor_time=time,
                        detected_at=time,
                        bindings=dict(accepted.bindings),
                    )
                )
            elif opened:
                self._anchors.append(_Anchor(time, opened))
                if len(self._anchors) > self.max_live_anchors:
                    raise RuntimeError(
                        "more than %d live anchors; set a horizon"
                        % self.max_live_anchors
                    )
        self.detections_emitted += len(detections)
        return detections

    def feed_sequence(self, events) -> List[Detection]:
        """Convenience: feed an iterable of events, collect detections."""
        detections: List[Detection] = []
        for event in events:
            detections.extend(self.feed(event.etype, event.time))
        return detections

    @property
    def live_anchors(self) -> int:
        """Number of anchors still awaiting completion."""
        return len(self._anchors)
