"""Online (streaming) complex-event detection.

The batch :class:`~repro.automata.matching.TagMatcher` answers "does
the pattern occur anchored at this index" over a stored sequence; real
monitoring systems instead *consume events as they arrive*.  This
module provides that mode: a :class:`StreamingMatcher` is fed events,
maintains one configuration set per live anchor (each root-type event
opens one - the paper's "start one copy of the TAG at every occurrence
of E0"), and emits a detection the first time an anchor's run reaches
acceptance.

Anchors retire when they accept, when their configuration set dies, or
when the (propagation-derived or user-supplied) horizon passes - so
memory is bounded by the number of anchors inside one horizon window.

Resilience (see :mod:`repro.resilience` and docs/RESILIENCE.md):

* events are validated at the edge (:class:`EventValidationError` on a
  malformed type or timestamp, before any state is touched);
* with ``max_lateness`` set, a bounded reorder buffer with watermarks
  absorbs timestamp jitter: out-of-order events within the lateness
  bound are reordered, events beyond it are counted and dropped
  instead of raising;
* anchor overflow follows a degradation policy (``raise`` keeps the
  historical fail-fast behaviour; ``shed-oldest`` / ``shed-newest`` /
  ``sample`` shed load and count what they dropped);
* the full matcher state checkpoints to a JSON payload
  (:meth:`StreamingMatcher.checkpoint`) and restores with
  :meth:`StreamingMatcher.from_checkpoint`, so a crashed monitor
  resumes without replaying the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..obs import counter, gauge
from ..resilience.errors import StreamFeedError, validate_event
from ..resilience.policies import apply_overflow, normalize_overflow_policy
from ..resilience.reorder import ReorderBuffer
from .builder import TagBuild
from .tag import Configuration

# Process-wide stream health metrics.  Counters aggregate across every
# matcher in the process; the gauges reflect the most recently fed
# matcher (one live matcher per process is the normal deployment).
_EVENTS_RECEIVED = counter(
    "repro_stream_events_received_total", "Events offered to feed()"
)
_EVENTS_PROCESSED = counter(
    "repro_stream_events_processed_total",
    "Events advanced through the automaton (post reorder buffer)",
)
_DETECTIONS = counter(
    "repro_stream_detections_total", "Detections emitted"
)
_ANCHORS_SHED = counter(
    "repro_stream_anchors_shed_total",
    "Live anchors dropped by the overflow policy",
)
_LATE_DROPPED = counter(
    "repro_stream_late_events_dropped_total",
    "Events dropped below the reorder watermark",
)
_LIVE_ANCHORS = gauge(
    "repro_stream_live_anchors", "Anchors awaiting completion"
)
_BUFFER_DEPTH = gauge(
    "repro_stream_reorder_buffer_depth",
    "Events held in the reorder buffer",
)
_WATERMARK_LAG = gauge(
    "repro_stream_watermark_lag_seconds",
    "Newest timestamp seen minus the watermark",
)


@dataclass(frozen=True)
class Detection:
    """One detected occurrence: the anchor and its variable bindings."""

    anchor_time: int
    detected_at: int
    bindings: Dict[str, int]


class _Anchor:
    __slots__ = ("time", "configs")

    def __init__(self, time: int, configs: List[Configuration]):
        self.time = time
        self.configs = configs


class StreamingMatcher:
    """Feed events one at a time; collect detections as they complete.

    Parameters mirror :class:`~repro.automata.matching.TagMatcher`;
    ``horizon_seconds`` bounds how long an anchor stays live (None
    keeps anchors until their configuration sets die, which for
    patterns with bounded constraints happens naturally but may take
    long on sparse streams - prefer a horizon).

    ``max_lateness`` (seconds) enables the reorder buffer: None means
    the historical strict mode (out-of-order input raises ValueError);
    any value >= 0 means events up to that much behind the newest
    timestamp seen are reordered and fed in order, later ones are
    dropped and counted in :attr:`late_events_dropped`.  Call
    :meth:`flush` at end of stream to drain the buffer.

    ``overflow_policy`` picks the degradation behaviour when live
    anchors exceed ``max_live_anchors``; see
    :mod:`repro.resilience.policies`.
    """

    def __init__(
        self,
        build: TagBuild,
        strict: bool = False,
        horizon_seconds: Optional[int] = None,
        max_live_anchors: int = 10_000,
        max_lateness: Optional[int] = None,
        overflow_policy: str = "raise",
    ):
        self.build = build
        self.tag = build.tag
        self.strict = strict
        self.horizon_seconds = horizon_seconds
        self.max_live_anchors = max_live_anchors
        self.overflow_policy = normalize_overflow_policy(overflow_policy)
        self._buffer = (
            ReorderBuffer(max_lateness) if max_lateness is not None else None
        )
        self._anchors: List[_Anchor] = []
        self._last_time: Optional[int] = None
        self._max_time_seen: Optional[int] = None
        self.events_received = 0
        self.events_processed = 0
        self.detections_emitted = 0
        self.anchors_shed = 0

    # ------------------------------------------------------------------
    @property
    def max_lateness(self) -> Optional[int]:
        """The reorder-buffer lateness bound (None in strict mode)."""
        return self._buffer.max_lateness if self._buffer else None

    @property
    def late_events_dropped(self) -> int:
        """Events that arrived below the watermark and were dropped."""
        return self._buffer.late_dropped if self._buffer else 0

    @property
    def pending_reordered(self) -> int:
        """Events held in the reorder buffer awaiting the watermark."""
        return self._buffer.pending if self._buffer else 0

    @property
    def watermark(self) -> Optional[int]:
        """Timestamps below this are final (processed or dropped)."""
        if self._buffer is not None:
            return self._buffer.watermark
        return self._last_time

    @property
    def live_anchors(self) -> int:
        """Number of anchors still awaiting completion."""
        return len(self._anchors)

    @property
    def watermark_lag(self) -> int:
        """Seconds between the newest timestamp seen and the watermark.

        How far behind real (stream) time finalisation is running; 0
        in strict mode or before any event arrives.
        """
        mark = self.watermark
        if mark is None or self._max_time_seen is None:
            return 0
        return max(0, self._max_time_seen - mark)

    def _export_gauges(self) -> None:
        _LIVE_ANCHORS.set(len(self._anchors))
        _BUFFER_DEPTH.set(self.pending_reordered)
        _WATERMARK_LAG.set(self.watermark_lag)

    def stats(self) -> Dict[str, Any]:
        """Operational counters, suitable for logging/metrics export."""
        return {
            "events_received": self.events_received,
            "events_processed": self.events_processed,
            "detections_emitted": self.detections_emitted,
            "live_anchors": self.live_anchors,
            "anchors_shed": self.anchors_shed,
            "late_events_dropped": self.late_events_dropped,
            "pending_reordered": self.pending_reordered,
            "watermark": self.watermark,
            "watermark_lag": self.watermark_lag,
        }

    # ------------------------------------------------------------------
    def feed(self, etype: str, time: int) -> List[Detection]:
        """Consume one event; return detections it completed.

        Raises :class:`~repro.resilience.EventValidationError` on a
        malformed event (state untouched).  Without a reorder buffer,
        an out-of-order timestamp raises ValueError as before; with
        one, the event is buffered/reordered/dropped per the watermark.
        """
        validate_event(etype, time)
        self.events_received += 1
        _EVENTS_RECEIVED.inc()
        if self._max_time_seen is None or time > self._max_time_seen:
            self._max_time_seen = time
        if self._buffer is None:
            if self._last_time is not None and time < self._last_time:
                raise ValueError(
                    "events must arrive in non-decreasing timestamp order"
                )
            detections = self._advance(etype, time)
            self._export_gauges()
            return detections
        dropped_before = self._buffer.late_dropped
        detections: List[Detection] = []
        for ready_etype, ready_time in self._buffer.push(etype, time):
            detections.extend(self._advance(ready_etype, ready_time))
        _LATE_DROPPED.add(self._buffer.late_dropped - dropped_before)
        self._export_gauges()
        return detections

    def flush(self) -> List[Detection]:
        """Drain the reorder buffer (end of stream); returns detections.

        A no-op (empty list) in strict mode.
        """
        if self._buffer is None:
            return []
        detections: List[Detection] = []
        for etype, time in self._buffer.flush():
            detections.extend(self._advance(etype, time))
        self._export_gauges()
        return detections

    # ------------------------------------------------------------------
    def _advance(self, etype: str, time: int) -> List[Detection]:
        """Advance the automaton state on one in-order event."""
        self._last_time = time
        self.events_processed += 1
        _EVENTS_PROCESSED.inc()
        detections: List[Detection] = []

        # Advance live anchors.
        survivors: List[_Anchor] = []
        for anchor in self._anchors:
            if (
                self.horizon_seconds is not None
                and time > anchor.time + self.horizon_seconds
            ):
                continue  # expired
            seen = set()
            next_configs: List[Configuration] = []
            accepted: Optional[Configuration] = None
            for config in anchor.configs:
                for successor in self.tag.step(
                    config, etype, time, self.strict
                ):
                    key = successor.frozen_key()
                    if key in seen:
                        continue
                    seen.add(key)
                    if successor.state in self.tag.accepting:
                        accepted = successor
                        break
                    next_configs.append(successor)
                if accepted is not None:
                    break
            if accepted is not None:
                detections.append(
                    Detection(
                        anchor_time=anchor.time,
                        detected_at=time,
                        bindings=dict(accepted.bindings),
                    )
                )
                continue  # anchor consumed by its detection
            if next_configs:
                anchor.configs = next_configs
                survivors.append(anchor)
        self._anchors = survivors

        # Open a new anchor if this is a root-type event.
        if etype == self.build.root_symbol:
            start_config = Configuration(
                state=next(iter(self.tag.start_states)),
                reset_times={name: time for name in self.tag.clocks},
                last_time=time,
            )
            root_variable = self.build.structure.root
            opened = [
                config
                for config in self.tag.step(
                    start_config, etype, time, self.strict
                )
                if config.bindings and config.bindings[0][0] == root_variable
            ]
            accepted = next(
                (c for c in opened if c.state in self.tag.accepting), None
            )
            if accepted is not None:
                # Single-variable patterns accept immediately.
                detections.append(
                    Detection(
                        anchor_time=time,
                        detected_at=time,
                        bindings=dict(accepted.bindings),
                    )
                )
            elif opened:
                self._anchors.append(_Anchor(time, opened))
                if len(self._anchors) > self.max_live_anchors:
                    self._anchors, shed = apply_overflow(
                        self._anchors,
                        self.max_live_anchors,
                        self.overflow_policy,
                    )
                    self.anchors_shed += shed
                    _ANCHORS_SHED.add(shed)
        self.detections_emitted += len(detections)
        _DETECTIONS.add(len(detections))
        return detections

    # ------------------------------------------------------------------
    def feed_sequence(self, events) -> List[Detection]:
        """Convenience: feed an iterable of events, collect detections.

        A failure is re-raised as
        :class:`~repro.resilience.StreamFeedError` carrying the
        offending event's position, type and timestamp (the original
        error is chained as ``__cause__``).
        """
        detections: List[Detection] = []
        for index, event in enumerate(events):
            etype = getattr(event, "etype", None)
            time = getattr(event, "time", None)
            if etype is None and time is None:
                try:
                    etype, time = event[0], event[1]
                except (TypeError, IndexError, KeyError) as exc:
                    raise StreamFeedError(index, None, None, exc) from exc
            try:
                detections.extend(self.feed(etype, time))
            except StreamFeedError:
                raise
            except (ValueError, RuntimeError) as exc:
                raise StreamFeedError(index, etype, time, exc) from exc
        return detections

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, Any]:
        """A JSON-safe snapshot of the full matcher state.

        Includes the pattern (so the TAG can be rebuilt), every live
        anchor's configurations, the reorder buffer, and all counters.
        Restoring with :meth:`from_checkpoint` and feeding the rest of
        the stream yields exactly the detections of an uninterrupted
        run.
        """
        from ..io.serialize import streaming_checkpoint_to_dict

        return streaming_checkpoint_to_dict(self)

    @classmethod
    def from_checkpoint(
        cls, payload: Dict[str, Any], system=None
    ) -> "StreamingMatcher":
        """Rebuild a matcher from :meth:`checkpoint` output."""
        from ..io.serialize import streaming_matcher_from_checkpoint

        return streaming_matcher_from_checkpoint(payload, system=system)
