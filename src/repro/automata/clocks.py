"""Clocks with granularities and clock-constraint formulas.

A TAG clock is named and "ticks" in a specific temporal type: its value
after a run prefix is the tick distance (in its granularity) between the
current event's timestamp and the timestamp at which the clock was last
reset.  A clock constraint is a boolean combination of threshold atoms
``k <= x`` / ``x <= k`` (the paper's Phi(C)); an atom over an *undefined*
clock value (timestamp in a granularity gap) is unsatisfied, matching the
paper's requirement that the tick conversions along a run be defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..granularity.base import TemporalType
from ..granularity.normalform import clock_distance, clock_tick_of


@dataclass(frozen=True)
class Clock:
    """A named clock ticking in a granularity."""

    name: str
    granularity: TemporalType

    def value(self, reset_time: int, now: int) -> Optional[int]:
        """Clock reading at ``now`` given the last reset timestamp.

        The paper's per-step update ``t + ceil(t_i) - ceil(t_{i-1})``
        telescopes to ``ceil(now) - ceil(reset_time)``; None when either
        timestamp is uncovered by the clock's granularity.  Routed
        through the compiled normal form (O(log period) bisection) when
        the backend is active and the type certifies exact coverage.
        """
        return clock_distance(self.granularity, reset_time, now)

    def covers(self, timestamp: int) -> bool:
        """Is ``timestamp`` inside a tick of this clock's granularity?

        The strict-mode run check; same compiled-form fast path as
        :meth:`value`.
        """
        return clock_tick_of(self.granularity, timestamp) is not None

    def __str__(self) -> str:
        return "%s[%s]" % (self.name, self.granularity.label)


class ClockConstraint:
    """Base class of clock-constraint formulas (the paper's Phi(C))."""

    def evaluate(self, values: Mapping[str, Optional[int]]) -> bool:
        """Truth under a (possibly partially undefined) clock valuation."""
        raise NotImplementedError

    def clocks(self) -> FrozenSet[str]:
        """Names of the clocks the formula mentions."""
        raise NotImplementedError

    # Convenient combinators.
    def __and__(self, other: "ClockConstraint") -> "ClockConstraint":
        return And((self, other))

    def __or__(self, other: "ClockConstraint") -> "ClockConstraint":
        return Or((self, other))

    def __invert__(self) -> "ClockConstraint":
        return Not(self)


@dataclass(frozen=True)
class TrueConstraint(ClockConstraint):
    """The trivially true guard."""

    def evaluate(self, values: Mapping[str, Optional[int]]) -> bool:
        return True

    def clocks(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Atom(ClockConstraint):
    """Threshold atom: ``clock <= k`` (op "le") or ``k <= clock`` ("ge").

    An undefined clock value falsifies the atom: the run-step conversion
    the value stands for is undefined, so the transition cannot fire.
    """

    clock: str
    op: str
    k: int

    def __post_init__(self) -> None:
        if self.op not in ("le", "ge"):
            raise ValueError("op must be 'le' or 'ge', got %r" % (self.op,))
        if self.k < 0:
            raise ValueError("threshold must be a non-negative integer")

    def evaluate(self, values: Mapping[str, Optional[int]]) -> bool:
        value = values.get(self.clock)
        if value is None:
            return False
        if self.op == "le":
            return value <= self.k
        return value >= self.k

    def clocks(self) -> FrozenSet[str]:
        return frozenset([self.clock])

    def __str__(self) -> str:
        if self.op == "le":
            return "%s<=%d" % (self.clock, self.k)
        return "%d<=%s" % (self.k, self.clock)


@dataclass(frozen=True)
class And(ClockConstraint):
    """Conjunction of sub-formulas."""

    parts: Tuple[ClockConstraint, ...]

    def __init__(self, parts):
        object.__setattr__(self, "parts", tuple(parts))

    def evaluate(self, values: Mapping[str, Optional[int]]) -> bool:
        return all(part.evaluate(values) for part in self.parts)

    def clocks(self) -> FrozenSet[str]:
        return frozenset().union(*(p.clocks() for p in self.parts)) \
            if self.parts else frozenset()

    def __str__(self) -> str:
        return " & ".join("(%s)" % p for p in self.parts) or "true"


@dataclass(frozen=True)
class Or(ClockConstraint):
    """Disjunction of sub-formulas."""

    parts: Tuple[ClockConstraint, ...]

    def __init__(self, parts):
        object.__setattr__(self, "parts", tuple(parts))

    def evaluate(self, values: Mapping[str, Optional[int]]) -> bool:
        return any(part.evaluate(values) for part in self.parts)

    def clocks(self) -> FrozenSet[str]:
        return frozenset().union(*(p.clocks() for p in self.parts)) \
            if self.parts else frozenset()

    def __str__(self) -> str:
        return " | ".join("(%s)" % p for p in self.parts) or "false"


@dataclass(frozen=True)
class Not(ClockConstraint):
    """Negation of a sub-formula.

    Note: negation is evaluated classically over the three-valued atom
    semantics, i.e. ``Not(Atom)`` is *true* when the clock value is
    undefined.  TAGs generated from complex event types never use
    negation; it exists because the paper's Phi(C) closes formulas under
    arbitrary boolean combinations.
    """

    part: ClockConstraint

    def evaluate(self, values: Mapping[str, Optional[int]]) -> bool:
        return not self.part.evaluate(values)

    def clocks(self) -> FrozenSet[str]:
        return self.part.clocks()

    def __str__(self) -> str:
        return "!(%s)" % (self.part,)


def within(clock: str, m: int, n: int) -> ClockConstraint:
    """The guard a TCG ``[m, n]`` induces on a clock: ``m <= x <= n``."""
    return And((Atom(clock, "ge", m), Atom(clock, "le", n)))


def evaluate_clocks(
    clocks: Mapping[str, Clock],
    reset_times: Mapping[str, int],
    now: int,
) -> Dict[str, Optional[int]]:
    """Valuation of every clock at ``now`` given per-clock reset times."""
    return {
        name: clock.value(reset_times[name], now)
        for name, clock in clocks.items()
    }
