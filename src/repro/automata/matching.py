"""Online TAG matching over event sequences (Theorem 4).

The matcher follows the paper's NDFA simulation: it maintains the set of
reachable configurations (state + clock valuation), feeding one event at
a time.  Configuration count is bounded by
``min(|sigma|, (|V| K)^p)`` per the theorem; deduplication by
``(state, reset times)`` and an optional time horizon keep the set small
in practice.

``strict=True`` reproduces the letter of the paper's run definition:
any event whose timestamp is uncovered by some clock granularity kills
every run - *including* events whose own constraints never mention
that granularity, so strict matching under-counts genuine complex
events (a measured errata of Theorem 3's equivalence claim; see
experiment X10).  The default lazy semantics only requires coverage at
the events a guard actually inspects and recognises exactly the
paper's binding semantics; the two coincide on sequences whose events
are covered by every clock granularity.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..obs import counter
from .builder import TagBuild
from .dense import DenseRuntime, compile_dense
from .tag import ANY, Configuration

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..mining.events import EventSequence

# Per-run work counters, accumulated locally in the scan loop and
# flushed once per anchored match, so the hot loop stays allocation-
# and lock-free (docs/OBSERVABILITY.md catalog).
_RUNS = counter("repro_tag_runs_total", "Anchored TAG runs started")
_MATCHES = counter("repro_tag_matches_total", "Anchored runs that matched")
_EVENTS_SCANNED = counter(
    "repro_tag_events_scanned_total", "Events scanned by anchored runs"
)
_TRANSITIONS = counter(
    "repro_tag_transitions_total", "Non-skip transitions taken"
)
_SKIPS = counter(
    "repro_tag_skips_total", "ANY self-loop survivals (skipped events)"
)
_GUARD_REJECTIONS = counter(
    "repro_tag_guard_rejections_total",
    "Transitions rejected by a clock guard",
)


class _LazyValuation:
    """Mapping-like clock valuation computed on demand.

    Guards typically mention a couple of the automaton's clocks; this
    avoids evaluating every clock for every configuration and event
    (the matcher's hottest loop).
    """

    __slots__ = ("clocks", "reset_times", "now", "_cache")

    def __init__(self, clocks, reset_times, now):
        self.clocks = clocks
        self.reset_times = reset_times
        self.now = now
        self._cache = {}

    def get(self, name, default=None):
        if name in self._cache:
            return self._cache[name]
        clock = self.clocks.get(name)
        if clock is None:
            return default
        value = clock.value(self.reset_times[name], self.now)
        self._cache[name] = value
        return value


@dataclass
class MatchResult:
    """Outcome of matching one root occurrence.

    ``bindings`` maps variables to the timestamps of the events that
    realised them in some accepting run (None when not matched).
    """

    matched: bool
    bindings: Optional[Dict[str, int]]
    events_scanned: int
    peak_configurations: int


class TagMatcher:
    """Run a built TAG against event sequences.

    Parameters
    ----------
    build:
        The result of :func:`repro.automata.builder.build_tag`.
    strict:
        Use the paper's strict run semantics (see module docstring).
    horizon_seconds:
        If set, matching started at root time ``t0`` stops scanning
        events after ``t0 + horizon_seconds``; sound when the value is
        an upper bound on the root-to-anything distance in seconds (the
        mining layer derives one from constraint propagation).
    anchor_requirements:
        Optional ``(etype, lo, hi)`` triples: any match anchored at
        ``t0`` must witness an ``etype`` event in ``[t0 + lo, t0 + hi]``
        (sound when derived from propagated windows, as
        :func:`repro.core.api.compile_pattern` does).
        :meth:`matching_roots` then consults the sequence's
        :class:`~repro.store.anchorindex.AnchorIndex` to enumerate only
        viable anchors, skipping doomed automaton runs entirely.
    max_configurations:
        Safety valve on the configuration set size.
    """

    def __init__(
        self,
        build: TagBuild,
        strict: bool = False,
        horizon_seconds: Optional[int] = None,
        anchor_requirements: Optional[Sequence[Tuple[str, int, int]]] = None,
        max_configurations: int = 100_000,
    ):
        self.build = build
        self.tag = build.tag
        self.strict = strict
        self.horizon_seconds = horizon_seconds
        self.anchor_requirements = (
            tuple(anchor_requirements) if anchor_requirements else ()
        )
        self.max_configurations = max_configurations
        self._dense = None
        self._runtimes = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    # Anchored matching (the mining primitive)
    # ------------------------------------------------------------------
    def match_from(
        self, sequence: "EventSequence", root_index: int
    ) -> MatchResult:
        """Match with the root variable bound to ``sequence[root_index]``.

        The first step *must* consume the anchored event via a root
        transition, which is the paper's "start one copy of the TAG at
        every occurrence of E0".
        """
        root_event = sequence[root_index]
        if root_event.etype != self.build.root_symbol:
            return MatchResult(False, None, 0, 0)
        _RUNS.inc()
        start_config = Configuration(
            state=next(iter(self.tag.start_states)),
            reset_times={
                name: root_event.time for name in self.tag.clocks
            },
            last_time=root_event.time,
        )
        root_variable = self.build.structure.root
        anchored = [
            config
            for config in self.tag.step(
                start_config, root_event.etype, root_event.time, self.strict
            )
            if config.bindings and config.bindings[0][0] == root_variable
        ]
        if not anchored:
            _EVENTS_SCANNED.add(1)
            return MatchResult(False, None, 1, 0)
        result = self._scan(
            sequence, root_index + 1, root_event.time, anchored
        )
        _EVENTS_SCANNED.add(result.events_scanned)
        if result.matched:
            _MATCHES.inc()
        return result

    def _scan(
        self,
        sequence: "EventSequence",
        from_index: int,
        root_time: int,
        configs: List[Configuration],
    ) -> MatchResult:
        events_scanned = 1
        peak = len(configs)
        accepted = self._accepting(configs)
        if accepted is not None:
            return MatchResult(True, dict(accepted.bindings), 1, peak)
        # Work counts stay in locals through the hot loop and flush to
        # the registry once per run.
        transitions_taken = 0
        skips = 0
        guard_rejections = 0
        deadline = (
            root_time + self.horizon_seconds
            if self.horizon_seconds is not None
            else None
        )
        clocks = self.tag.clocks
        accepting = self.tag.accepting
        for index in range(from_index, len(sequence)):
            event = sequence[index]
            if deadline is not None and event.time > deadline:
                break
            events_scanned += 1
            if self.strict and any(
                not clock.covers(event.time)
                for clock in clocks.values()
            ):
                # The paper's literal run definition: an uncovered
                # timestamp kills every run, skipped or not.
                configs = []
                break
            seen = set()
            next_configs: List[Configuration] = []
            accepted: Optional[Configuration] = None
            for config in configs:
                # The ANY self-loop: the configuration itself survives
                # unchanged (reset times are immutable, last_time is
                # irrelevant to future steps).
                key = config.frozen_key()
                if key not in seen:
                    seen.add(key)
                    next_configs.append(config)
                    skips += 1
                values = None
                for transition in self.tag.transitions_from(config.state):
                    if transition.symbol == ANY:
                        continue
                    if transition.symbol != event.etype:
                        continue
                    if values is None:
                        values = _LazyValuation(
                            clocks, config.reset_times, event.time
                        )
                    if not transition.guard.evaluate(values):
                        guard_rejections += 1
                        continue
                    transitions_taken += 1
                    reset_times = dict(config.reset_times)
                    for name in transition.resets:
                        reset_times[name] = event.time
                    successor = Configuration(
                        state=transition.target,
                        reset_times=reset_times,
                        last_time=event.time,
                        bindings=config.bindings
                        + tuple(
                            (variable, event.time)
                            for variable in transition.variables
                        ),
                    )
                    if successor.state in accepting:
                        accepted = successor
                        break
                    key = successor.frozen_key()
                    if key in seen:
                        continue
                    seen.add(key)
                    next_configs.append(successor)
                if accepted is not None:
                    break
            if accepted is not None:
                peak = max(peak, len(next_configs) + 1)
                _TRANSITIONS.add(transitions_taken)
                _SKIPS.add(skips)
                _GUARD_REJECTIONS.add(guard_rejections)
                return MatchResult(
                    True, dict(accepted.bindings), events_scanned, peak
                )
            configs = next_configs
            peak = max(peak, len(configs))
            if len(configs) > self.max_configurations:
                raise RuntimeError(
                    "configuration set exceeded %d; tighten the horizon"
                    % self.max_configurations
                )
            if not configs:
                break
        _TRANSITIONS.add(transitions_taken)
        _SKIPS.add(skips)
        _GUARD_REJECTIONS.add(guard_rejections)
        return MatchResult(False, None, events_scanned, peak)

    def _accepting(
        self, configs: List[Configuration]
    ) -> Optional[Configuration]:
        for config in configs:
            if config.state in self.tag.accepting:
                return config
        return None

    # ------------------------------------------------------------------
    # Columnar batch routing (REPRO_COLUMNAR backend taxonomy)
    # ------------------------------------------------------------------
    def _columnar_runtime(
        self, sequence: "EventSequence"
    ) -> Optional[DenseRuntime]:
        """The dense batch runtime for a sequence, or None.

        None routes the caller to the object path - the kill switch
        (``REPRO_COLUMNAR=off``) and the fallback for inputs without a
        columnar view.  Runtimes are memoised per view (weakly, so a
        matcher outliving its sequences leaks nothing); the dense
        transition tables compile once per matcher.
        """
        from ..store.columnar import columnar_active

        if not columnar_active():
            return None
        view_of = getattr(sequence, "columnar", None)
        if view_of is None:
            return None
        view = view_of()
        runtime = self._runtimes.get(view)
        if runtime is None:
            if self._dense is None:
                self._dense = compile_dense(self.tag)
            runtime = DenseRuntime(
                self._dense,
                view,
                self.build.root_symbol,
                self.build.structure.root,
                strict=self.strict,
                horizon_seconds=self.horizon_seconds,
                max_configurations=self.max_configurations,
            )
            self._runtimes[view] = runtime
        return runtime

    # ------------------------------------------------------------------
    # Whole-sequence helpers
    # ------------------------------------------------------------------
    def occurs_at(self, sequence: "EventSequence", root_index: int) -> bool:
        """Does the complex event type occur anchored at this index?"""
        runtime = self._columnar_runtime(sequence)
        if runtime is not None:
            return runtime.occurs_at(root_index)
        return self.match_from(sequence, root_index).matched

    def matching_roots(self, sequence: "EventSequence") -> Iterator[int]:
        """Indices of root-type occurrences that anchor a match.

        With :attr:`anchor_requirements` set, root occurrences whose
        windows the anchor index refutes are skipped without starting
        an automaton run (the screen is a sound over-approximation, so
        the yielded set is unchanged).
        """
        runtime = self._columnar_runtime(sequence)
        if runtime is not None:
            yield from runtime.matching_roots(self.anchor_requirements)
            return
        anchors = sequence.occurrence_indices(self.build.root_symbol)
        if self.anchor_requirements:
            index = sequence.anchor_index()
            anchors = index.viable_anchors(
                [(position, sequence[position].time) for position in anchors],
                self.anchor_requirements,
            )
        for position in anchors:
            if self.occurs_at(sequence, position):
                yield position

    def count_occurrences(self, sequence: "EventSequence") -> int:
        """Paper-style count: matched root occurrences (each counted once)."""
        return sum(1 for _ in self.matching_roots(sequence))

    def viable_root_positions(
        self, sequence: "EventSequence"
    ) -> List[int]:
        """Root occurrences surviving the anchor screen, as positions.

        The same enumeration :meth:`matching_roots` starts from, split
        out so frontier-level callers (``batch_matching_roots``, the
        mining loop) can feed it to a shared :class:`BatchRuntime`.
        """
        runtime = self._columnar_runtime(sequence)
        if runtime is not None:
            return runtime.viable_roots(self.anchor_requirements)
        anchors = sequence.occurrence_indices(self.build.root_symbol)
        if self.anchor_requirements:
            index = sequence.anchor_index()
            anchors = index.viable_anchors(
                [
                    (position, sequence[position].time)
                    for position in anchors
                ],
                self.anchor_requirements,
            )
        return list(anchors)

    def accepts(self, sequence: "EventSequence") -> bool:
        """Unanchored acceptance: some suffix anchors an occurrence.

        This corresponds to Theorem 3's statement - the type occurs in
        the sequence iff the TAG has an accepting run over it (runs may
        skip any prefix via the start state's self-loop).
        """
        return any(True for _ in self.matching_roots(sequence))


# ----------------------------------------------------------------------
# Frontier-level routing (REPRO_BATCH taxonomy)
# ----------------------------------------------------------------------
def batch_matching_roots(
    matchers: Sequence[TagMatcher], sequence: "EventSequence"
) -> List[List[int]]:
    """Per-matcher matching-root lists for a whole candidate frontier.

    When ``REPRO_BATCH`` and the columnar backend are active, matchers
    that share root symbol/variable, semantics (strict, horizon,
    configuration cap) and clock space are merged into one
    :class:`~repro.automata.dense.DenseBatch` and scanned in a single
    :class:`~repro.automata.dense.BatchRuntime` traversal per root;
    everything else falls back to the per-matcher path.  Either way the
    result is bit-identical to ``[list(m.matching_roots(sequence)) for
    m in matchers]`` - ``REPRO_BATCH=off`` is the differential
    reference the batch-vs-single suite replays.
    """
    from .dense import BatchRuntime, batch_active, compile_dense_batch

    results: List[Optional[List[int]]] = [None] * len(matchers)

    def _fallback(indexes):
        for i in indexes:
            results[i] = list(matchers[i].matching_roots(sequence))

    if (
        len(matchers) < 2
        or not batch_active()
        or getattr(sequence, "columnar", None) is None
    ):
        _fallback(range(len(matchers)))
        return [r for r in results]
    store = sequence.columnar()
    groups: Dict[tuple, List[int]] = {}
    for i, matcher in enumerate(matchers):
        key = (
            matcher.build.root_symbol,
            matcher.build.structure.root,
            matcher.strict,
            matcher.horizon_seconds,
            matcher.max_configurations,
        )
        groups.setdefault(key, []).append(i)
    for key, indexes in groups.items():
        if len(indexes) < 2:
            _fallback(indexes)
            continue
        for matcher in (matchers[i] for i in indexes):
            if matcher._dense is None:
                matcher._dense = compile_dense(matcher.tag)
        banks = compile_dense_batch(
            [matchers[i]._dense for i in indexes]
        )
        root_symbol, root_variable, strict, horizon, cap = key
        for positions, batch in banks:
            member_indexes = [indexes[p] for p in positions]
            runtime = BatchRuntime(
                batch,
                store,
                root_symbol,
                root_variable,
                strict=strict,
                horizon_seconds=horizon,
                max_configurations=cap,
            )
            viable = [
                matchers[i].viable_root_positions(sequence)
                for i in member_indexes
            ]
            hits = runtime.scan_roots(viable)
            for k, i in enumerate(member_indexes):
                results[i] = hits[k]
    return [r for r in results]
