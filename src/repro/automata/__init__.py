"""Timed automata with granularities (TAGs) and matching (Section 4).

Exports the clock-constraint algebra, the TAG structure and run
semantics, the Theorem 3 builder from complex event types, the Theorem 4
online matcher, and the exact reference matcher used to validate the
construction.
"""

from .builder import TagBuild, build_tag, clock_name
from .dense import (
    BatchRuntime,
    DenseBatch,
    DenseRuntime,
    DenseTAG,
    batch_active,
    compile_dense,
    compile_dense_batch,
    resolve_batch,
)
from .clocks import (
    And,
    Atom,
    Clock,
    ClockConstraint,
    Not,
    Or,
    TrueConstraint,
    evaluate_clocks,
    within,
)
from .matching import MatchResult, TagMatcher, batch_matching_roots
from .streaming import Detection, StreamingMatcher
from .structmatch import count_occurrences, find_occurrence, occurs_at
from .tag import ANY, TAG, Configuration, Transition

__all__ = [
    "Clock",
    "ClockConstraint",
    "TrueConstraint",
    "Atom",
    "And",
    "Or",
    "Not",
    "within",
    "evaluate_clocks",
    "TAG",
    "Transition",
    "Configuration",
    "ANY",
    "TagBuild",
    "build_tag",
    "clock_name",
    "compile_dense",
    "compile_dense_batch",
    "DenseTAG",
    "DenseBatch",
    "DenseRuntime",
    "BatchRuntime",
    "batch_active",
    "resolve_batch",
    "batch_matching_roots",
    "TagMatcher",
    "MatchResult",
    "StreamingMatcher",
    "Detection",
    "find_occurrence",
    "occurs_at",
    "count_occurrences",
]
