"""Work-stealing unit scheduler for the parallel mining pool.

The static grid (``pool.map`` over pre-planned contiguous batches)
wastes wall-clock whenever shard cost is skewed: a worker that drew the
dense region finishes last while the rest idle.  This scheduler keeps
the *plan* static - units are still contiguous slices of the task grid,
assigned to per-lane deques so each lane stays on few distinct
candidates - but lets an idle lane steal the tail half of the richest
deque instead of waiting.

Determinism is by construction, not by scheduling: every unit carries
its index in the original plan, the caller stores each result at that
index, and the merge runs in index order.  Which lane executed a unit
(and whether it was stolen) affects only wall-clock and the
``repro_parallel_steals_total`` counter, never the merged hit counts -
the bit-identity contract with the serial engine survives any
interleaving.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Optional, Sequence, Tuple, TypeVar

from ..obs import counter, span

_STEALS_TOTAL = counter(
    "repro_parallel_steals_total",
    "Unit batches stolen from another lane's deque by an idle lane",
)

T = TypeVar("T")


class StealScheduler(Generic[T]):
    """Per-lane deques of (unit_index, unit) with steal-half on idle.

    ``units`` is the planned unit list; unit ``i`` initially lands on
    lane ``i // ceil(n / lanes)`` (contiguous blocks, so a lane's own
    work shares candidates and its matcher/runtime memo stays hot).
    ``next_for(lane)`` pops the lane's own deque first; an empty lane
    steals the tail half of the fullest deque (ties broken toward the
    lowest lane index, so victim choice is deterministic for a given
    deque state).  Returns None only when every deque is drained.
    """

    def __init__(self, units: Sequence[T], lanes: int):
        self.lanes = max(1, int(lanes))
        self._deques: List[Deque[Tuple[int, T]]] = [
            deque() for _ in range(self.lanes)
        ]
        self.steals = 0
        if units:
            block = -(-len(units) // self.lanes)
            for index, unit in enumerate(units):
                lane = min(index // block, self.lanes - 1)
                self._deques[lane].append((index, unit))

    def __len__(self) -> int:
        return sum(len(dq) for dq in self._deques)

    def pending(self, lane: int) -> int:
        """Units currently queued on one lane (test/inspection hook)."""
        return len(self._deques[lane])

    def next_for(self, lane: int) -> Optional[Tuple[int, T]]:
        """The next unit for a lane: own deque first, then steal-half."""
        dq = self._deques[lane]
        if dq:
            return dq.popleft()
        victim = self._richest(lane)
        if victim is None:
            return None
        moved = self._steal_half(victim, lane)
        self.steals += 1
        _STEALS_TOTAL.inc()
        with span(
            "parallel.steal", lane=lane, victim=victim, moved=moved
        ):
            pass
        return dq.popleft()

    def _richest(self, thief: int) -> Optional[int]:
        victim = None
        best = 0
        for lane, dq in enumerate(self._deques):
            if lane != thief and len(dq) > best:
                victim = lane
                best = len(dq)
        return victim

    def _steal_half(self, victim: int, thief: int) -> int:
        """Move the tail half (rounded up) of ``victim`` to ``thief``.

        Stealing from the tail leaves the victim the head of its own
        contiguous block (its memo stays hot) and hands the thief a
        contiguous tail run; relative unit order is preserved on both
        sides.
        """
        source = self._deques[victim]
        count = (len(source) + 1) // 2
        tail = [source.pop() for _ in range(count)]
        self._deques[thief].extend(reversed(tail))
        return count
