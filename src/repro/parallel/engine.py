"""The work-sharded mining scan (candidates x time shards -> workers).

The paper's step 5 is embarrassingly parallel once two facts are pinned
down: candidate assignments are independent, and anchored runs are
time-local (a run started at root ``t0`` with horizon ``H`` never reads
past ``t0 + H``).  This module exploits both:

* the surviving candidates and the planned time shards
  (:mod:`repro.parallel.shards`) form a task grid; each task scans one
  shard's owned roots for one candidate;
* before any TAG starts, the shard's roots are filtered through the
  :class:`~repro.store.anchorindex.AnchorIndex` against the candidate's
  propagated windows - the *anchor screen* - so only viable anchors pay
  for an automaton run (the same screen runs in the serial engine, which
  keeps serial and parallel results bit-identical);
* tasks fan out over a fork-based ``ProcessPoolExecutor``.  Workers
  inherit the reduced sequence, the granularity system and the warmed
  conversion cache through fork (nothing large is pickled; tasks are
  two-integer tuples), and return per-task hit counts plus their local
  observability state: metric counter deltas, conversion-cache counter
  deltas, and serialized spans.  The parent merges all three back -
  counters via :meth:`~repro.obs.metrics.MetricsRegistry.
  merge_counter_deltas`, cache traffic via :meth:`~repro.granularity.
  convcache.ConversionCache.merge_counts`, spans by grafting under the
  open ``mine.scan`` span - so process-wide accounting stays exact.

Results merge deterministically: ``pool.map`` preserves task order and
hits are summed per candidate in shard order, so a parallel run's
solutions, frequencies and work counters equal the serial run's
exactly, for any worker count or shard size.

``REPRO_PARALLEL=off`` (or a platform without fork) degrades to the
inline executor: the same task grid runs in-process, still
bit-identical, with no pool overhead.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..automata.builder import build_tag
from ..automata.matching import TagMatcher
from ..constraints.structure import ComplexEventType, EventStructure
from ..granularity.registry import GranularitySystem
from ..mining.events import EventSequence
from ..obs import (
    Span,
    TraceContext,
    Tracer,
    activate_tracer,
    counter,
    counter_deltas,
    current_context,
    current_tracer,
    gauge,
    global_metrics,
    obs_debug,
    span,
)
from ..store.anchorindex import Requirement
from .shards import Shard, check_shard_invariants, plan_shards

_SHARDS_TOTAL = counter(
    "repro_mine_shards_total",
    "Time shards planned by the parallel mining engine",
)
_TASKS_TOTAL = counter(
    "repro_parallel_tasks_total",
    "Candidate x shard scan tasks executed (pool or inline)",
)
_FALLBACK_TOTAL = counter(
    "repro_parallel_fallback_total",
    "Parallel scans that degraded to the inline executor",
)
_WORKERS_GAUGE = gauge(
    "repro_parallel_workers",
    "Worker processes used by the most recent parallel scan",
)

#: Values of ``REPRO_PARALLEL`` that force the serial engine.
_OFF_VALUES = ("off", "0", "false", "no")


def parallel_disabled() -> bool:
    """Is the ``REPRO_PARALLEL`` kill switch engaged?"""
    return os.environ.get("REPRO_PARALLEL", "").strip().lower() in _OFF_VALUES


def resolve_workers(parallel: Union[int, str, None] = None) -> int:
    """Worker count from the request and the environment.

    ``parallel`` is the CLI/API request: an int, ``"auto"`` (one worker
    per CPU) or None (defer to ``REPRO_PARALLEL``, default serial).
    ``REPRO_PARALLEL=off|0|false|no`` forces 1 regardless of the
    request (the kill switch); ``REPRO_PARALLEL_MAX_WORKERS`` caps the
    result (the CI uses it to bound pool width).
    """
    env = os.environ.get("REPRO_PARALLEL", "").strip().lower()
    if env in _OFF_VALUES:
        return 1
    if parallel in (None, ""):
        if env == "":
            workers = 1
        elif env == "auto":
            workers = os.cpu_count() or 1
        else:
            workers = int(env)
    elif parallel == "auto":
        workers = os.cpu_count() or 1
    else:
        workers = int(parallel)
    if workers < 1:
        raise ValueError("worker count must be >= 1 (got %r)" % (workers,))
    cap = os.environ.get("REPRO_PARALLEL_MAX_WORKERS", "").strip()
    if cap:
        workers = min(workers, max(1, int(cap)))
    return workers


def fork_available() -> bool:
    """Can this platform run the fork-based worker pool?"""
    return "fork" in multiprocessing.get_all_start_methods()


def candidate_requirements(
    assignment: Dict[str, str],
    windows: Dict[str, Tuple[int, int]],
    root: str,
) -> Tuple[Requirement, ...]:
    """The anchor-screen requirements of one candidate assignment.

    For each non-root variable with a propagated window ``[lo, hi]``
    (seconds from the root), any match must witness an event of the
    *assigned* type inside the window - the per-candidate sharpening of
    the step-3 any-allowed-type filter.
    """
    return tuple(
        (assignment[variable], lo, hi)
        for variable, (lo, hi) in sorted(windows.items())
        if variable != root and variable in assignment
    )


# ----------------------------------------------------------------------
# Worker-side state
# ----------------------------------------------------------------------
@dataclass
class ScanContext:
    """Everything a worker needs, inherited through fork.

    Installed as the module-global :data:`_CTX` in the parent before
    the pool is created; submitted tasks are two-integer tuples indexing
    into ``candidates`` and ``shards``.
    """

    sequence: EventSequence
    system: GranularitySystem
    structure: EventStructure
    candidates: List[Dict[str, str]]
    requirements: List[Tuple[Requirement, ...]]
    shards: List[Shard]
    horizon: Optional[int]
    strict: bool
    trace: bool
    #: Identity of the parent's open ``mine.scan`` span: workers build
    #: their tracer from it, so merged spans carry the originating
    #: trace_id and re-parent under the exact span that forked them.
    trace_context: Optional[TraceContext] = None


_CTX: Optional[ScanContext] = None

#: Per-worker matcher memo: each worker builds one TAG per candidate it
#: touches, however many shards of that candidate it scans (the
#: per-worker dedup of construction work).
_MATCHERS: Dict[int, TagMatcher] = {}


def _matcher_for(ctx: ScanContext, candidate_index: int) -> TagMatcher:
    matcher = _MATCHERS.get(candidate_index)
    if matcher is None:
        cet = ComplexEventType(ctx.structure, ctx.candidates[candidate_index])
        matcher = TagMatcher(
            build_tag(cet, system=ctx.system),
            strict=ctx.strict,
            horizon_seconds=ctx.horizon,
        )
        _MATCHERS[candidate_index] = matcher
    return matcher


def _scan_shard(
    ctx: ScanContext, candidate_index: int, shard_index: int
) -> Tuple[int, int]:
    """One task: scan one shard's owned roots for one candidate.

    Returns (hits, starts); starts counts the roots that survived the
    anchor screen (each starts exactly one automaton run, matching the
    serial engine's accounting).
    """
    shard = ctx.shards[shard_index]
    matcher = _matcher_for(ctx, candidate_index)
    index = ctx.sequence.anchor_index()
    viable = index.viable_anchors(
        [(root, ctx.sequence[root].time) for root in shard.roots],
        ctx.requirements[candidate_index],
    )
    hits = 0
    with span(
        "tag.match", roots=len(shard.roots), shard=shard.index
    ) as match_span:
        for root in viable:
            if matcher.occurs_at(ctx.sequence, root):
                hits += 1
        match_span.set(starts=len(viable), hits=hits)
    return hits, len(viable)


def _warm_worker(namespace: int, entries, forms=()) -> None:
    """Pool initializer: install the exported conversion-cache entries.

    Redundant under fork (the entries arrived with the address space)
    but load-bearing for any start method that builds workers fresh -
    either way no worker recomputes a conversion the parent already
    paid for.  Preloading counts neither hits nor misses.  Compiled
    periodic normal forms ride along so a fresh worker builds its
    compiled size tables without re-lowering (no boundary scans).
    """
    ctx = _CTX
    if ctx is not None:
        cache = ctx.system.conversion_cache
        cache.preload(namespace, entries)
        if forms:
            cache.preload_normal_forms(namespace, forms)


def _pool_batch(batch: Sequence[Tuple[int, int]]) -> Dict[str, object]:
    """Worker entry point: run a contiguous slice of the task grid.

    Batching keeps IPC and bookkeeping off the per-task path: the
    observability state (metric counter deltas, cache counter deltas,
    serialized spans) is captured once around the whole batch, and one
    result dict crosses the pipe per batch instead of per task.
    """
    ctx = _CTX
    if ctx is None:  # pragma: no cover - defensive
        raise RuntimeError(
            "worker scan context missing (fork inheritance failed)"
        )
    registry = global_metrics()
    before = registry.snapshot()
    cache = ctx.system.conversion_cache
    cache_before = cache.snapshot()
    tracer = Tracer(parent=ctx.trace_context) if ctx.trace else None
    results: List[Tuple[int, int, int, int]] = []

    def run_tasks() -> None:
        for candidate_index, shard_index in batch:
            with span(
                "mine.worker",
                pid=os.getpid(),
                candidate=candidate_index,
                shard=shard_index,
            ) as worker_span:
                hits, starts = _scan_shard(ctx, candidate_index, shard_index)
                worker_span.set(hits=hits, starts=starts)
            results.append((candidate_index, shard_index, hits, starts))

    if tracer is not None:
        with activate_tracer(tracer):
            run_tasks()
    else:
        run_tasks()
    cache_after = cache.snapshot()
    return {
        "results": results,
        "counter_deltas": counter_deltas(before, registry.snapshot()),
        "cache_deltas": {
            "hits": cache_after.hits - cache_before.hits,
            "misses": cache_after.misses - cache_before.misses,
            "evictions": cache_after.evictions - cache_before.evictions,
        },
        "spans": [root.to_dict() for root in tracer.roots] if tracer else [],
    }


def _inline_batch(batch: Sequence[Tuple[int, int]]) -> Dict[str, object]:
    """The in-process twin of :func:`_pool_batch`.

    Counters hit the parent registry directly and spans nest under the
    already-active tracer, so nothing is captured for merging.
    """
    results: List[Tuple[int, int, int, int]] = []
    for candidate_index, shard_index in batch:
        with span(
            "mine.worker",
            pid=os.getpid(),
            candidate=candidate_index,
            shard=shard_index,
            inline=True,
        ) as worker_span:
            hits, starts = _scan_shard(_CTX, candidate_index, shard_index)
            worker_span.set(hits=hits, starts=starts)
        results.append((candidate_index, shard_index, hits, starts))
    return {
        "results": results,
        "counter_deltas": {},
        "cache_deltas": {},
        "spans": [],
    }


def _plan_batches(
    tasks: Sequence[Tuple[int, int]], workers: int
) -> List[List[Tuple[int, int]]]:
    """Contiguous batches of the task grid, ~4 per worker.

    Contiguity keeps each worker on few distinct candidates (the
    matcher memo stays hot); ~4 batches per worker rebalances
    stragglers without per-task IPC.
    """
    target = max(1, -(-len(tasks) // max(1, workers * 4)))
    return [
        list(tasks[start:start + target])
        for start in range(0, len(tasks), target)
    ]


# ----------------------------------------------------------------------
# Orchestration (parent side)
# ----------------------------------------------------------------------
@dataclass
class CandidateResult:
    """Merged scan outcome of one candidate (shard sums, task order)."""

    assignment: Dict[str, str]
    hits: int = 0
    starts: int = 0


def parallel_scan(
    sequence: EventSequence,
    system: GranularitySystem,
    structure: EventStructure,
    candidates: Sequence[Dict[str, str]],
    windows: Dict[str, Tuple[int, int]],
    roots: Sequence[int],
    horizon: Optional[int],
    strict: bool = False,
    workers: int = 1,
    shard_size: Union[int, str, None] = "auto",
    anchor_screen: bool = True,
    executor: str = "auto",
) -> Tuple[List[CandidateResult], Dict[str, object]]:
    """Scan every candidate over every shard; merge deterministically.

    Returns per-candidate results in candidate order plus a report dict
    (workers, shards, tasks, executor mode) the caller can surface.
    ``executor`` is ``"auto"`` (pool when it would help and fork
    exists), ``"pool"`` or ``"inline"`` (the test hook).
    """
    global _CTX, _MATCHERS
    requirements = [
        candidate_requirements(assignment, windows, structure.root)
        if anchor_screen
        else ()
        for assignment in candidates
    ]
    if shard_size in (None, "auto") and roots:
        # The task grid is candidates x shards: candidates already
        # provide parallel grain, so plan only enough time shards to
        # fill ~4 batches per worker overall.
        desired = max(1, -(-workers * 4 // max(1, len(candidates))))
        shard_size = max(1, -(-len(roots) // desired))
    shards = plan_shards(
        sequence, list(roots), horizon, shard_size=shard_size, workers=workers
    )
    if obs_debug():
        check_shard_invariants(shards, sequence, list(roots), horizon)
    tasks = [
        (candidate_index, shard.index)
        for candidate_index in range(len(candidates))
        for shard in shards
    ]
    mode = executor
    if mode == "auto":
        mode = "pool" if workers > 1 and len(tasks) > 1 else "inline"
    if mode == "pool" and not fork_available():
        mode = "inline"
        _FALLBACK_TOTAL.inc()
    workers_used = max(1, min(workers, len(tasks))) if mode == "pool" else 1
    _SHARDS_TOTAL.add(len(shards))
    _TASKS_TOTAL.add(len(tasks))
    _WORKERS_GAUGE.set(workers_used)

    from ..store.columnar import columnar_active

    if columnar_active():
        # Build the columnar view (and its posting columns) once in the
        # parent so every forked worker inherits it through the address
        # space instead of rebuilding it per process.
        sequence.columnar()

    ctx = ScanContext(
        sequence=sequence,
        system=system,
        structure=structure,
        candidates=list(candidates),
        requirements=requirements,
        shards=shards,
        horizon=horizon,
        strict=strict,
        trace=current_tracer() is not None,
        trace_context=current_context(),
    )
    batches = _plan_batches(tasks, workers_used)
    _CTX = ctx
    _MATCHERS = {}
    try:
        if mode == "pool":
            namespace = system.cache_namespace
            entries = system.conversion_cache.export_entries(namespace)
            forms = system.conversion_cache.export_normal_forms(namespace)
            with ProcessPoolExecutor(
                max_workers=workers_used,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_warm_worker,
                initargs=(namespace, entries, forms),
            ) as pool:
                raw = list(pool.map(_pool_batch, batches))
        else:
            raw = [_inline_batch(batch) for batch in batches]
    finally:
        _CTX = None
        _MATCHERS = {}

    results = [
        CandidateResult(assignment=assignment) for assignment in candidates
    ]
    merged_counters: Dict[str, float] = {}
    cache_hits = cache_misses = cache_evictions = 0
    tracer = current_tracer()
    for record in raw:  # pool.map preserves submission order
        for candidate_index, _shard, hits, starts in record["results"]:
            result = results[candidate_index]
            result.hits += hits
            result.starts += starts
        for sample, delta in record["counter_deltas"].items():
            merged_counters[sample] = merged_counters.get(sample, 0) + delta
        deltas = record["cache_deltas"]
        cache_hits += deltas.get("hits", 0)
        cache_misses += deltas.get("misses", 0)
        cache_evictions += deltas.get("evictions", 0)
        if tracer is not None:
            for payload in record["spans"]:
                tracer.attach(Span.from_dict(payload))
    if merged_counters:
        global_metrics().merge_counter_deltas(merged_counters)
    if cache_hits or cache_misses or cache_evictions:
        system.conversion_cache.merge_counts(
            hits=cache_hits, misses=cache_misses, evictions=cache_evictions
        )
    report = {
        "workers": workers_used,
        "shards": len(shards),
        "tasks": len(tasks),
        "executor": mode,
    }
    return results, report
