"""The work-sharded mining scan (candidates x time shards -> workers).

The paper's step 5 is embarrassingly parallel once two facts are pinned
down: candidate assignments are independent, and anchored runs are
time-local (a run started at root ``t0`` with horizon ``H`` never reads
past ``t0 + H``).  This module exploits both:

* the surviving candidates and the planned time shards
  (:mod:`repro.parallel.shards`) form a task grid; each task scans one
  shard's owned roots for one candidate;
* before any TAG starts, the shard's roots are filtered through the
  :class:`~repro.store.anchorindex.AnchorIndex` against the candidate's
  propagated windows - the *anchor screen* - so only viable anchors pay
  for an automaton run (the same screen runs in the serial engine, which
  keeps serial and parallel results bit-identical);
* tasks fan out over a fork-based ``ProcessPoolExecutor``.  Workers
  inherit the reduced sequence, the granularity system and the warmed
  conversion cache through fork (nothing large is pickled; tasks are
  two-integer tuples), and return per-task hit counts plus their local
  observability state: metric counter deltas, conversion-cache counter
  deltas, and serialized spans.  The parent merges all three back -
  counters via :meth:`~repro.obs.metrics.MetricsRegistry.
  merge_counter_deltas`, cache traffic via :meth:`~repro.granularity.
  convcache.ConversionCache.merge_counts`, spans by grafting under the
  open ``mine.scan`` span - so process-wide accounting stays exact;
* when the columnar store is active the parent exports its int64
  columns once over :class:`~repro.store.columnar.SharedColumns`
  (POSIX shared memory, mmap-file fallback) and each worker *attaches*
  zero-copy instead of relying on copy-on-write fork pages - the pool
  initializer adopts the attached view into the inherited sequence;
* with ``REPRO_BATCH`` on, candidates sharing a clock signature are
  compiled into one :class:`~repro.automata.dense.DenseBatch` in the
  parent; a pool task then scans one *group* of candidates over one
  shard in a single banked traversal and returns per-member counts.

Units (contiguous slices of the task grid) are dispatched through a
:class:`~repro.parallel.stealing.StealScheduler`: one in-flight unit
per lane, idle lanes steal the tail half of the richest deque.  Results
merge deterministically regardless of which lane ran what: every unit
result lands at its planned index and hits are summed per candidate in
unit order, so a parallel run's solutions, frequencies and work
counters equal the serial run's exactly, for any worker count, shard
size or steal interleaving.

``REPRO_PARALLEL=off`` (or a platform without fork) degrades to the
inline executor: the same task grid runs in-process, still
bit-identical, with no pool overhead.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..automata.builder import build_tag
from ..automata.matching import TagMatcher
from ..constraints.structure import ComplexEventType, EventStructure
from ..granularity.registry import GranularitySystem
from ..mining.events import EventSequence
from ..obs import (
    Span,
    TraceContext,
    Tracer,
    activate_tracer,
    counter,
    counter_deltas,
    current_context,
    current_tracer,
    gauge,
    global_metrics,
    obs_debug,
    span,
)
from ..store.anchorindex import Requirement
from .shards import Shard, check_shard_invariants, plan_shards
from .stealing import StealScheduler

_SHARDS_TOTAL = counter(
    "repro_mine_shards_total",
    "Time shards planned by the parallel mining engine",
)
_TASKS_TOTAL = counter(
    "repro_parallel_tasks_total",
    "Candidate x shard scan tasks executed (pool or inline)",
)
_FALLBACK_TOTAL = counter(
    "repro_parallel_fallback_total",
    "Parallel scans that degraded to the inline executor",
)
_WORKERS_GAUGE = gauge(
    "repro_parallel_workers",
    "Worker processes used by the most recent parallel scan",
)

#: Values of ``REPRO_PARALLEL`` that force the serial engine.
_OFF_VALUES = ("off", "0", "false", "no")


def parallel_disabled() -> bool:
    """Is the ``REPRO_PARALLEL`` kill switch engaged?"""
    return os.environ.get("REPRO_PARALLEL", "").strip().lower() in _OFF_VALUES


def resolve_workers(parallel: Union[int, str, None] = None) -> int:
    """Worker count from the request and the environment.

    ``parallel`` is the CLI/API request: an int, ``"auto"`` (one worker
    per CPU) or None (defer to ``REPRO_PARALLEL``, default serial).
    ``REPRO_PARALLEL=off|0|false|no`` forces 1 regardless of the
    request (the kill switch); ``REPRO_PARALLEL_MAX_WORKERS`` caps the
    result (the CI uses it to bound pool width).
    """
    env = os.environ.get("REPRO_PARALLEL", "").strip().lower()
    if env in _OFF_VALUES:
        return 1
    if parallel in (None, ""):
        if env == "":
            workers = 1
        elif env == "auto":
            workers = os.cpu_count() or 1
        else:
            workers = int(env)
    elif parallel == "auto":
        workers = os.cpu_count() or 1
    else:
        workers = int(parallel)
    if workers < 1:
        raise ValueError("worker count must be >= 1 (got %r)" % (workers,))
    cap = os.environ.get("REPRO_PARALLEL_MAX_WORKERS", "").strip()
    if cap:
        workers = min(workers, max(1, int(cap)))
    return workers


def fork_available() -> bool:
    """Can this platform run the fork-based worker pool?"""
    return "fork" in multiprocessing.get_all_start_methods()


def candidate_requirements(
    assignment: Dict[str, str],
    windows: Dict[str, Tuple[int, int]],
    root: str,
) -> Tuple[Requirement, ...]:
    """The anchor-screen requirements of one candidate assignment.

    For each non-root variable with a propagated window ``[lo, hi]``
    (seconds from the root), any match must witness an event of the
    *assigned* type inside the window - the per-candidate sharpening of
    the step-3 any-allowed-type filter.
    """
    return tuple(
        (assignment[variable], lo, hi)
        for variable, (lo, hi) in sorted(windows.items())
        if variable != root and variable in assignment
    )


# ----------------------------------------------------------------------
# Worker-side state
# ----------------------------------------------------------------------
@dataclass
class ScanContext:
    """Everything a worker needs, inherited through fork.

    Installed as the module-global :data:`_CTX` in the parent before
    the pool is created; submitted tasks are two-integer tuples indexing
    into ``candidates`` and ``shards``.
    """

    sequence: EventSequence
    system: GranularitySystem
    structure: EventStructure
    candidates: List[Dict[str, str]]
    requirements: List[Tuple[Requirement, ...]]
    shards: List[Shard]
    horizon: Optional[int]
    strict: bool
    trace: bool
    #: Banked candidate groups when ``REPRO_BATCH`` is on: each entry is
    #: ``(candidate positions, DenseBatch, root symbol)`` and tasks
    #: index groups instead of single candidates.  Empty = per-candidate
    #: tasks (the reference path).
    batch_groups: List[Tuple[Tuple[int, ...], object, str]] = field(
        default_factory=list
    )
    #: Identity of the parent's open ``mine.scan`` span: workers build
    #: their tracer from it, so merged spans carry the originating
    #: trace_id and re-parent under the exact span that forked them.
    trace_context: Optional[TraceContext] = None


_CTX: Optional[ScanContext] = None

#: Per-worker matcher memo: each worker builds one TAG per candidate it
#: touches, however many shards of that candidate it scans (the
#: per-worker dedup of construction work).
_MATCHERS: Dict[int, TagMatcher] = {}

#: Per-worker batch-runtime memo (one per candidate group touched).
#: The banked tables themselves arrive through fork; only the thin
#: runtime wrapper (plan lookup, routing index seeds) is per-worker.
_RUNTIMES: Dict[int, object] = {}


def _matcher_for(ctx: ScanContext, candidate_index: int) -> TagMatcher:
    matcher = _MATCHERS.get(candidate_index)
    if matcher is None:
        cet = ComplexEventType(ctx.structure, ctx.candidates[candidate_index])
        matcher = TagMatcher(
            build_tag(cet, system=ctx.system),
            strict=ctx.strict,
            horizon_seconds=ctx.horizon,
        )
        _MATCHERS[candidate_index] = matcher
    return matcher


def _scan_shard(
    ctx: ScanContext, candidate_index: int, shard_index: int
) -> Tuple[int, int]:
    """One task: scan one shard's owned roots for one candidate.

    Returns (hits, starts); starts counts the roots that survived the
    anchor screen (each starts exactly one automaton run, matching the
    serial engine's accounting).
    """
    shard = ctx.shards[shard_index]
    matcher = _matcher_for(ctx, candidate_index)
    index = ctx.sequence.anchor_index()
    viable = index.viable_anchors(
        [(root, ctx.sequence[root].time) for root in shard.roots],
        ctx.requirements[candidate_index],
    )
    hits = 0
    with span(
        "tag.match", roots=len(shard.roots), shard=shard.index
    ) as match_span:
        for root in viable:
            if matcher.occurs_at(ctx.sequence, root):
                hits += 1
        match_span.set(starts=len(viable), hits=hits)
    return hits, len(viable)


def _batch_runtime_for(ctx: ScanContext, group_index: int):
    runtime = _RUNTIMES.get(group_index)
    if runtime is None:
        from ..automata.dense import BatchRuntime

        _positions, batch, root_symbol = ctx.batch_groups[group_index]
        runtime = BatchRuntime(
            batch,
            ctx.sequence.columnar(),
            root_symbol,
            ctx.structure.root,
            strict=ctx.strict,
            horizon_seconds=ctx.horizon,
        )
        _RUNTIMES[group_index] = runtime
    return runtime


def _scan_shard_batch(
    ctx: ScanContext, group_index: int, shard_index: int
) -> List[Tuple[int, int, int]]:
    """One batched task: scan one shard for one candidate *group*.

    The anchor screen runs per member exactly as the per-candidate path
    would (same :meth:`~repro.store.anchorindex.AnchorIndex.
    viable_anchors` calls on the shard's owned roots); the automaton
    traversal is shared across the group.  Returns
    ``(candidate_index, hits, starts)`` per member, so per-candidate
    merging is unchanged from the reference path.
    """
    positions, _batch, _root_symbol = ctx.batch_groups[group_index]
    shard = ctx.shards[shard_index]
    index = ctx.sequence.anchor_index()
    root_pairs = [
        (root, ctx.sequence[root].time) for root in shard.roots
    ]
    viable_lists = [
        index.viable_anchors(root_pairs, ctx.requirements[candidate])
        for candidate in positions
    ]
    runtime = _batch_runtime_for(ctx, group_index)
    matched = runtime.scan_roots(viable_lists)
    return [
        (candidate, len(matched[member]), len(viable_lists[member]))
        for member, candidate in enumerate(positions)
    ]


def _warm_worker(namespace: int, entries, forms=(), shm_handle=None) -> None:
    """Pool initializer: install the exported conversion-cache entries.

    Redundant under fork (the entries arrived with the address space)
    but load-bearing for any start method that builds workers fresh -
    either way no worker recomputes a conversion the parent already
    paid for.  Preloading counts neither hits nor misses.  Compiled
    periodic normal forms ride along so a fresh worker builds
    its compiled size tables without re-lowering (no boundary scans).

    ``shm_handle`` is the parent's :class:`~repro.store.columnar.
    SharedColumns` handle: when present the worker attaches to the
    parent's int64 columns zero-copy and adopts the attached store into
    the inherited sequence, replacing the copy-on-write fork pages with
    a genuinely shared mapping.  Attach failure is non-fatal - the
    worker falls back to the fork-inherited (or rebuilt) view, which is
    bit-identical by construction.
    """
    ctx = _CTX
    if ctx is not None:
        cache = ctx.system.conversion_cache
        cache.preload(namespace, entries)
        if forms:
            cache.preload_normal_forms(namespace, forms)
        if shm_handle is not None:
            from ..store.columnar import attach_shared

            store = attach_shared(shm_handle)
            if store is not None:
                try:
                    ctx.sequence.adopt_columnar(store)
                except ValueError:
                    pass  # count mismatch: keep the inherited view


def _execute_task(
    ctx: ScanContext, first: int, second: int
) -> List[Tuple[int, int, int, int]]:
    """Run one grid task, per-candidate or batched.

    With batch groups installed, ``first`` indexes a group and the
    return value carries one ``(candidate, shard, hits, starts)`` entry
    per member; otherwise ``first`` is a candidate index and exactly one
    entry comes back.  Either way the merge loop sums per candidate.
    """
    if ctx.batch_groups:
        return [
            (candidate, second, hits, starts)
            for candidate, hits, starts in _scan_shard_batch(
                ctx, first, second
            )
        ]
    hits, starts = _scan_shard(ctx, first, second)
    return [(first, second, hits, starts)]


def _pool_batch(batch: Sequence[Tuple[int, int]]) -> Dict[str, object]:
    """Worker entry point: run a contiguous slice of the task grid.

    Batching keeps IPC and bookkeeping off the per-task path: the
    observability state (metric counter deltas, cache counter deltas,
    serialized spans) is captured once around the whole batch, and one
    result dict crosses the pipe per batch instead of per task.
    """
    ctx = _CTX
    if ctx is None:  # pragma: no cover - defensive
        raise RuntimeError(
            "worker scan context missing (fork inheritance failed)"
        )
    registry = global_metrics()
    before = registry.snapshot()
    cache = ctx.system.conversion_cache
    cache_before = cache.snapshot()
    tracer = Tracer(parent=ctx.trace_context) if ctx.trace else None
    results: List[Tuple[int, int, int, int]] = []
    label = "group" if ctx.batch_groups else "candidate"

    def run_tasks() -> None:
        for first, second in batch:
            with span(
                "mine.worker",
                pid=os.getpid(),
                shard=second,
                **{label: first},
            ) as worker_span:
                entries = _execute_task(ctx, first, second)
                worker_span.set(
                    hits=sum(entry[2] for entry in entries),
                    starts=sum(entry[3] for entry in entries),
                )
            results.extend(entries)

    if tracer is not None:
        with activate_tracer(tracer):
            run_tasks()
    else:
        run_tasks()
    cache_after = cache.snapshot()
    return {
        "results": results,
        "counter_deltas": counter_deltas(before, registry.snapshot()),
        "cache_deltas": {
            "hits": cache_after.hits - cache_before.hits,
            "misses": cache_after.misses - cache_before.misses,
            "evictions": cache_after.evictions - cache_before.evictions,
        },
        "spans": [root.to_dict() for root in tracer.roots] if tracer else [],
    }


def _inline_batch(batch: Sequence[Tuple[int, int]]) -> Dict[str, object]:
    """The in-process twin of :func:`_pool_batch`.

    Counters hit the parent registry directly and spans nest under the
    already-active tracer, so nothing is captured for merging.
    """
    results: List[Tuple[int, int, int, int]] = []
    label = "group" if _CTX.batch_groups else "candidate"
    for first, second in batch:
        with span(
            "mine.worker",
            pid=os.getpid(),
            shard=second,
            inline=True,
            **{label: first},
        ) as worker_span:
            entries = _execute_task(_CTX, first, second)
            worker_span.set(
                hits=sum(entry[2] for entry in entries),
                starts=sum(entry[3] for entry in entries),
            )
        results.extend(entries)
    return {
        "results": results,
        "counter_deltas": {},
        "cache_deltas": {},
        "spans": [],
    }


def _plan_batches(
    tasks: Sequence[Tuple[int, int]], workers: int
) -> List[List[Tuple[int, int]]]:
    """Contiguous batches of the task grid, ~4 per worker.

    Contiguity keeps each worker on few distinct candidates (the
    matcher memo stays hot); ~4 batches per worker rebalances
    stragglers without per-task IPC.
    """
    target = max(1, -(-len(tasks) // max(1, workers * 4)))
    return [
        list(tasks[start:start + target])
        for start in range(0, len(tasks), target)
    ]


# ----------------------------------------------------------------------
# Orchestration (parent side)
# ----------------------------------------------------------------------
@dataclass
class CandidateResult:
    """Merged scan outcome of one candidate (shard sums, task order)."""

    assignment: Dict[str, str]
    hits: int = 0
    starts: int = 0


def parallel_scan(
    sequence: EventSequence,
    system: GranularitySystem,
    structure: EventStructure,
    candidates: Sequence[Dict[str, str]],
    windows: Dict[str, Tuple[int, int]],
    roots: Sequence[int],
    horizon: Optional[int],
    strict: bool = False,
    workers: int = 1,
    shard_size: Union[int, str, None] = "auto",
    anchor_screen: bool = True,
    executor: str = "auto",
) -> Tuple[List[CandidateResult], Dict[str, object]]:
    """Scan every candidate over every shard; merge deterministically.

    Returns per-candidate results in candidate order plus a report dict
    (workers, shards, tasks, executor mode) the caller can surface.
    ``executor`` is ``"auto"`` (pool when it would help and fork
    exists), ``"pool"`` or ``"inline"`` (the test hook).
    """
    global _CTX, _MATCHERS, _RUNTIMES
    requirements = [
        candidate_requirements(assignment, windows, structure.root)
        if anchor_screen
        else ()
        for assignment in candidates
    ]
    if shard_size in (None, "auto") and roots:
        # The task grid is candidates x shards: candidates already
        # provide parallel grain, so plan only enough time shards to
        # fill ~4 batches per worker overall.
        desired = max(1, -(-workers * 4 // max(1, len(candidates))))
        shard_size = max(1, -(-len(roots) // desired))
    shards = plan_shards(
        sequence, list(roots), horizon, shard_size=shard_size, workers=workers
    )
    if obs_debug():
        check_shard_invariants(shards, sequence, list(roots), horizon)

    from ..automata.dense import batch_active
    from ..store.columnar import columnar_active

    batch_groups: List[Tuple[Tuple[int, ...], object, str]] = []
    if batch_active() and len(candidates) > 1:
        # Compile the frontier into banked tables once, in the parent;
        # workers inherit the compiled groups through fork and share
        # one traversal per (group, shard) task.  Grouping by root
        # symbol first keeps every group anchored on one event type.
        from ..automata.dense import compile_dense_batch

        builds = [
            build_tag(ComplexEventType(structure, assignment), system=system)
            for assignment in candidates
        ]
        by_symbol: Dict[str, List[int]] = {}
        for position, build in enumerate(builds):
            by_symbol.setdefault(build.root_symbol, []).append(position)
        for symbol, members in by_symbol.items():
            for relative, bank in compile_dense_batch(
                [builds[member].tag for member in members]
            ):
                batch_groups.append(
                    (tuple(members[r] for r in relative), bank, symbol)
                )
    if batch_groups:
        tasks = [
            (group_index, shard.index)
            for group_index in range(len(batch_groups))
            for shard in shards
        ]
    else:
        tasks = [
            (candidate_index, shard.index)
            for candidate_index in range(len(candidates))
            for shard in shards
        ]
    mode = executor
    if mode == "auto":
        mode = "pool" if workers > 1 and len(tasks) > 1 else "inline"
    if mode == "pool" and not fork_available():
        mode = "inline"
        _FALLBACK_TOTAL.inc()
    workers_used = max(1, min(workers, len(tasks))) if mode == "pool" else 1
    _SHARDS_TOTAL.add(len(shards))
    _TASKS_TOTAL.add(len(tasks))
    _WORKERS_GAUGE.set(workers_used)

    shm_owner = None
    if columnar_active():
        # Build the columnar view (and its posting columns) once in the
        # parent; pool workers then *attach* to the int64 columns over
        # shared memory instead of faulting copy-on-write fork pages.
        view = sequence.columnar()
        if mode == "pool":
            try:
                shm_owner = view.to_shared()
            except OSError:
                shm_owner = None  # fork inheritance still works

    ctx = ScanContext(
        sequence=sequence,
        system=system,
        structure=structure,
        candidates=list(candidates),
        requirements=requirements,
        shards=shards,
        horizon=horizon,
        strict=strict,
        trace=current_tracer() is not None,
        trace_context=current_context(),
        batch_groups=batch_groups,
    )
    batches = _plan_batches(tasks, workers_used)
    scheduler: Optional[StealScheduler] = None
    _CTX = ctx
    _MATCHERS = {}
    _RUNTIMES = {}
    try:
        if mode == "pool":
            namespace = system.cache_namespace
            entries = system.conversion_cache.export_entries(namespace)
            forms = system.conversion_cache.export_normal_forms(namespace)
            handle = shm_owner.handle() if shm_owner is not None else None
            # Work stealing: one in-flight unit per lane; an idle lane
            # steals the tail half of the richest deque.  Each result
            # lands at its planned unit index, so the merge below is
            # independent of the steal interleaving.
            raw = [None] * len(batches)
            scheduler = StealScheduler(batches, workers_used)
            with ProcessPoolExecutor(
                max_workers=workers_used,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_warm_worker,
                initargs=(namespace, entries, forms, handle),
            ) as pool:
                inflight = {}
                for lane in range(workers_used):
                    item = scheduler.next_for(lane)
                    if item is None:
                        break
                    unit_index, unit = item
                    future = pool.submit(_pool_batch, unit)
                    inflight[future] = (lane, unit_index)
                while inflight:
                    done, _pending = wait(
                        list(inflight), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        lane, unit_index = inflight.pop(future)
                        raw[unit_index] = future.result()
                        item = scheduler.next_for(lane)
                        if item is not None:
                            unit_index, unit = item
                            future = pool.submit(_pool_batch, unit)
                            inflight[future] = (lane, unit_index)
        else:
            raw = [_inline_batch(batch) for batch in batches]
    finally:
        _CTX = None
        _MATCHERS = {}
        _RUNTIMES = {}
        if shm_owner is not None:
            # Unlink even on worker crash: attached segments die with
            # their processes, the owner's close releases the name.
            shm_owner.close()

    results = [
        CandidateResult(assignment=assignment) for assignment in candidates
    ]
    merged_counters: Dict[str, float] = {}
    cache_hits = cache_misses = cache_evictions = 0
    tracer = current_tracer()
    for record in raw:  # planned unit order, whoever ran the unit
        for candidate_index, _shard, hits, starts in record["results"]:
            result = results[candidate_index]
            result.hits += hits
            result.starts += starts
        for sample, delta in record["counter_deltas"].items():
            merged_counters[sample] = merged_counters.get(sample, 0) + delta
        deltas = record["cache_deltas"]
        cache_hits += deltas.get("hits", 0)
        cache_misses += deltas.get("misses", 0)
        cache_evictions += deltas.get("evictions", 0)
        if tracer is not None:
            for payload in record["spans"]:
                tracer.attach(Span.from_dict(payload))
    if merged_counters:
        global_metrics().merge_counter_deltas(merged_counters)
    if cache_hits or cache_misses or cache_evictions:
        system.conversion_cache.merge_counts(
            hits=cache_hits, misses=cache_misses, evictions=cache_evictions
        )
    report = {
        "workers": workers_used,
        "shards": len(shards),
        "tasks": len(tasks),
        "executor": mode,
        "batch_groups": len(batch_groups),
        "steals": scheduler.steals if scheduler is not None else 0,
        "shm": shm_owner.kind if shm_owner is not None else None,
    }
    return results, report
