"""repro.parallel: the work-sharded mining/matching engine.

Splits the paper's step-5 TAG scan into candidate x time-shard tasks
(:mod:`~repro.parallel.shards`), screens anchors through the store's
posting-list index, and fans the tasks to a fork-based worker pool with
deterministic merging (:mod:`~repro.parallel.engine`).  Serial and
parallel runs return bit-identical outcomes; ``REPRO_PARALLEL=off`` is
the kill switch.  See docs/PERFORMANCE.md.
"""

from .engine import (
    CandidateResult,
    ScanContext,
    candidate_requirements,
    fork_available,
    parallel_disabled,
    parallel_scan,
    resolve_workers,
)
from .shards import (
    Shard,
    check_shard_invariants,
    plan_shards,
    resolve_shard_size,
)
from .stealing import StealScheduler

__all__ = [
    "CandidateResult",
    "ScanContext",
    "Shard",
    "StealScheduler",
    "candidate_requirements",
    "check_shard_invariants",
    "fork_available",
    "parallel_disabled",
    "parallel_scan",
    "plan_shards",
    "resolve_shard_size",
    "resolve_workers",
]
