"""Time-shard planning for the parallel mining scan.

The mining scan is anchored: every TAG run starts at a reference
occurrence and, given a finite propagated horizon ``H``, never reads an
event later than ``anchor_time + H``.  That locality is what makes
sharding sound:

* the reference occurrences (roots) are partitioned into contiguous
  chunks - each root is *owned* by exactly one shard, so merged
  hit counts never double-count a match;
* each shard's event window extends past its last owned root by the
  horizon (the overlap), so every run started at an owned root
  completes entirely inside the shard's window - no match straddling
  a shard boundary is lost.

Without a finite horizon no overlap bound exists and the planner
returns a single shard (the scan still parallelises across candidate
assignments, just not across time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..mining.events import EventSequence


@dataclass(frozen=True)
class Shard:
    """One planned unit of anchored scanning work.

    ``roots`` are positions into the *full* (reduced) sequence;
    ``event_lo``/``event_hi`` bound the positions a scan from any owned
    root may read (the half-open slice a worker needs when events are
    shipped rather than shared).  ``end_time`` includes the horizon
    overlap.
    """

    index: int
    roots: Tuple[int, ...]
    event_lo: int
    event_hi: int
    start_time: int
    end_time: int

    def __len__(self) -> int:
        return len(self.roots)


def resolve_shard_size(
    shard_size: Union[int, str, None], n_roots: int, workers: int
) -> int:
    """The roots-per-shard knob; ``auto``/None aims at ~4 shards per
    worker so stragglers rebalance, floored at one root per shard."""
    if shard_size in (None, "auto"):
        return max(1, math.ceil(n_roots / max(1, workers * 4)))
    size = int(shard_size)
    if size < 1:
        raise ValueError("shard_size must be >= 1 (or 'auto')")
    return size


def plan_shards(
    sequence: EventSequence,
    roots: Sequence[int],
    horizon: Optional[int],
    shard_size: Union[int, str, None] = "auto",
    workers: int = 1,
) -> List[Shard]:
    """Partition ``roots`` into overlapping time shards.

    ``horizon`` is the propagated root-to-anything bound in seconds
    (None = unbounded, which forces a single shard covering the whole
    suffix of the sequence).
    """
    if not roots:
        return []
    if horizon is None:
        first = roots[0]
        return [
            Shard(
                index=0,
                roots=tuple(roots),
                event_lo=first,
                event_hi=len(sequence),
                start_time=sequence[first].time,
                end_time=sequence[len(sequence) - 1].time,
            )
        ]
    last_event_time = sequence[len(sequence) - 1].time
    if sequence[roots[0]].time + horizon >= last_event_time:
        # Degenerate horizon: the window of even the *first* root
        # already reaches the end of the sequence, so every chunk's
        # overlap would cover the whole suffix and time-sharding buys
        # nothing.  Short-circuit to one shard instead of planning N
        # fully-overlapping shards (or one shard dressed with a bogus
        # overlap computation past the last event).
        first = roots[0]
        return [
            Shard(
                index=0,
                roots=tuple(roots),
                event_lo=first,
                event_hi=len(sequence),
                start_time=sequence[first].time,
                end_time=sequence[roots[-1]].time + horizon,
            )
        ]
    size = resolve_shard_size(shard_size, len(roots), workers)
    shards: List[Shard] = []
    for start in range(0, len(roots), size):
        chunk = tuple(roots[start:start + size])
        first_time = sequence[chunk[0]].time
        last_time = sequence[chunk[-1]].time
        end_time = last_time + horizon
        # Position one past the last event a run from any owned root
        # may consume (the matcher stops at the first event beyond its
        # per-root deadline, and every per-root deadline <= end_time).
        event_hi = sequence.last_index_at_or_before(end_time)
        shards.append(
            Shard(
                index=len(shards),
                roots=chunk,
                event_lo=chunk[0],
                event_hi=max(event_hi, chunk[-1] + 1),
                start_time=first_time,
                end_time=end_time,
            )
        )
    return shards


def check_shard_invariants(
    shards: Sequence[Shard],
    sequence: EventSequence,
    roots: Sequence[int],
    horizon: Optional[int],
) -> None:
    """Soundness checks on a plan (run under ``REPRO_OBS=debug``).

    Raises AssertionError when the plan could lose or double-count a
    match: roots not partitioned in order, or an owned root whose
    horizon window escapes its shard's event slice.
    """
    flattened = [r for shard in shards for r in shard.roots]
    assert flattened == list(roots), "shards must partition roots in order"
    for shard in shards:
        assert shard.roots, "empty shard planned"
        assert shard.event_lo == shard.roots[0]
        assert shard.event_hi <= len(sequence)
        for root in shard.roots:
            assert shard.event_lo <= root < shard.event_hi, (
                "owned root outside its shard's event slice"
            )
            if horizon is not None:
                deadline = sequence[root].time + horizon
                assert deadline <= shard.end_time, (
                    "root deadline escapes the shard overlap"
                )
                # Every event at or before the deadline is inside the
                # slice a worker would receive.
                covered = sequence.last_index_at_or_before(deadline)
                assert covered <= shard.event_hi, (
                    "shard slice misses in-horizon events"
                )
