"""Columnar event storage: int64 columns behind ``REPRO_COLUMNAR``.

The object-based :class:`~repro.store.eventstore.EventStore` keeps one
Python object per event, which caps matching throughput around 10^5
events.  This module stores the same data as four parallel int64
columns - times, type ids, attribute codes, record ids - plus the
PR-4 anchor-index structures ported to *column offsets*: per-type
posting lists (positions into the time-sorted columns) and a
time-bucketed skip index.  The dense TAG runtime
(:mod:`repro.automata.dense`) sweeps these columns with batched
select/gather operations instead of per-event Python dispatch.

Backend taxonomy (mirrors ``REPRO_SIZETABLE`` / ``REPRO_NO_NUMPY``):

``REPRO_COLUMNAR=auto`` (default)
    columnar batch matching is used wherever a caller holds a columnar
    view; the pure-Python ``array`` fallback keeps the layout available
    without numpy.
``REPRO_COLUMNAR=on``
    same as ``auto`` today (the mode exists so scripts can pin the
    behaviour against future default changes).
``REPRO_COLUMNAR=off``
    the kill switch: every consumer stays on the object-based reference
    path, which remains the differential oracle.

Within the columnar layout, ``REPRO_NO_NUMPY`` (or a missing numpy)
selects the ``fallback`` kernel: ``array('q')`` columns and bisect
scans instead of vectorized searchsorted.  Both kernels are
bit-identical; ``tests/differential/test_columnar_vs_object.py`` is
the oracle.

Stores larger than RAM can be saved with :meth:`ColumnarEventStore.
save` and reopened memory-mapped; a corrupt or truncated file makes
:func:`load_columnar` fall back to the object path, counted by
``repro_columnar_fallback_total``.
"""

from __future__ import annotations

import json
import os
import sys
from bisect import bisect_left, bisect_right
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..obs import counter, span
from .anchorindex import _MAX_BUCKET_PROBES, _pick_shift

try:  # pragma: no cover - exercised via the no-numpy CI job
    if os.environ.get("REPRO_NO_NUMPY"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in dev envs
    _np = None

#: Columnar modes selectable through ``REPRO_COLUMNAR``.
MODES = ("auto", "on", "off")

#: Sentinel for "no attributes" in the attribute-code column.
NO_ATTRS = 0

#: File magic of the persisted column format.
MAGIC = b"RPCOL1\n"

_BUILDS = counter("repro_columnar_builds_total", "Columnar views built")
_EVENTS = counter(
    "repro_columnar_events_total", "Events resident in columnar views"
)
_FALLBACKS = counter(
    "repro_columnar_fallback_total",
    "Columnar loads/scans that fell back to the object path",
)
_BATCH_SCREENS = counter(
    "repro_columnar_screens_total",
    "Batched anchor-viability screens over whole columns",
)
_SHM_ATTACHES = counter(
    "repro_shm_attach_total",
    "Shared-memory column attaches by pool workers",
)


class ColumnarFormatError(ValueError):
    """A persisted column file is malformed (wrong magic, truncated,
    undecodable header, or size mismatch)."""


def resolve_columnar(mode: Optional[str] = None) -> str:
    """Normalise a columnar mode to ``on`` or ``off``.

    ``mode`` overrides the ``REPRO_COLUMNAR`` environment variable;
    ``auto`` resolves to ``on`` (the array fallback means the layout is
    always available - ``auto`` exists as the forward-compatible
    default spelling).
    """
    value = (
        mode
        if mode is not None
        else os.environ.get("REPRO_COLUMNAR", "auto")
    )
    value = value.strip().lower() or "auto"
    if value not in MODES:
        raise ValueError(
            "unknown columnar mode %r (expected one of %r)"
            % (value, MODES)
        )
    return "off" if value == "off" else "on"


def columnar_active() -> bool:
    """Should consumers route matching through the columnar backend?"""
    return resolve_columnar() == "on"


def columnar_kernel() -> str:
    """The kernel the columns use: ``numpy`` or ``fallback``."""
    return "numpy" if _np is not None else "fallback"


def _column(values: Sequence[int]):
    """An int64 column from a list of Python ints."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    from array import array

    return array("q", values)


def _searchsorted(column, value: int, side: str = "left") -> int:
    if _np is not None and isinstance(column, _np.ndarray):
        return int(_np.searchsorted(column, value, side=side))
    if side == "left":
        return bisect_left(column, value)
    return bisect_right(column, value)


class ColumnarEventStore:
    """An immutable, time-sorted columnar snapshot of an event set.

    Positions are *global* offsets into the time-sorted columns - the
    same positions the object-based :class:`~repro.mining.events.
    EventSequence` exposes, so the two backends agree index for index.
    """

    __slots__ = (
        "__weakref__",
        "_times",
        "_type_ids",
        "_attr_codes",
        "_record_ids",
        "_type_vocab",
        "_type_index",
        "_attr_vocab",
        "_postings",
        "_posting_times",
        "_buckets",
        "_shift",
        "_tick_cache",
        "_plan_cache",
        "_shared",
        "kernel",
    )

    def __init__(
        self,
        times: Sequence[int],
        type_ids: Sequence[int],
        type_vocab: Sequence[str],
        attr_codes: Optional[Sequence[int]] = None,
        attr_vocab: Optional[Sequence[str]] = None,
        record_ids: Optional[Sequence[int]] = None,
    ) -> None:
        n = len(times)
        if len(type_ids) != n:
            raise ValueError("times and type_ids must have equal length")
        self._times = times if _is_column(times) else _column(times)
        self._type_ids = (
            type_ids if _is_column(type_ids) else _column(type_ids)
        )
        if _np is not None and isinstance(self._times, _np.ndarray):
            if n and bool(_np.any(self._times[1:] < self._times[:-1])):
                raise ValueError("times column must be non-decreasing")
        else:
            for i in range(1, n):
                if times[i] < times[i - 1]:
                    raise ValueError("times column must be non-decreasing")
        self._attr_codes = (
            attr_codes
            if attr_codes is not None and _is_column(attr_codes)
            else _column(attr_codes if attr_codes is not None else [0] * n)
        )
        self._record_ids = (
            record_ids
            if record_ids is not None and _is_column(record_ids)
            else _column(
                record_ids if record_ids is not None else range(n)
            )
        )
        self._type_vocab: Tuple[str, ...] = tuple(type_vocab)
        self._type_index: Dict[str, int] = {
            name: tid for tid, name in enumerate(self._type_vocab)
        }
        self._attr_vocab: Tuple[str, ...] = tuple(
            attr_vocab if attr_vocab is not None else ("",)
        )
        self.kernel = columnar_kernel()
        # Posting lists as column offsets (per-type positions into the
        # time-sorted columns): one vectorized group-by under numpy,
        # one pass under the fallback kernel.
        span_seconds = int(self._times[-1] - self._times[0]) if n else 0
        self._shift = _pick_shift(span_seconds, n)
        self._postings: Dict[int, object] = {}
        self._posting_times: Dict[int, object] = {}
        self._buckets: Dict[int, object] = {}
        if _np is not None and isinstance(self._type_ids, _np.ndarray):
            for tid in _np.unique(self._type_ids):
                tid = int(tid)
                positions = _np.nonzero(self._type_ids == tid)[0].astype(
                    _np.int64
                )
                ptimes = (
                    self._times[positions]
                    if _is_column(self._times)
                    else _np.asarray(
                        [times[p] for p in positions], dtype=_np.int64
                    )
                )
                self._postings[tid] = positions
                self._posting_times[tid] = ptimes
                self._buckets[tid] = _np.unique(ptimes >> self._shift)
        else:
            positions: Dict[int, List[int]] = {}
            ptimes: Dict[int, List[int]] = {}
            for position in range(n):
                tid = self._type_ids[position]
                positions.setdefault(tid, []).append(position)
                ptimes.setdefault(tid, []).append(
                    int(self._times[position])
                )
            for tid, values in positions.items():
                self._postings[tid] = _column(values)
                self._posting_times[tid] = _column(ptimes[tid])
                self._buckets[tid] = _column(
                    sorted({t >> self._shift for t in ptimes[tid]})
                )
        self._tick_cache: Dict[int, Tuple[object, object]] = {}
        self._plan_cache: Dict[object, object] = {}
        # Keeps an attached SharedMemory mapping alive for stores built
        # by :meth:`from_shared` (the columns are views into its buffer).
        self._shared = None
        _BUILDS.inc()
        _EVENTS.add(n)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls, events: Iterable[Tuple[str, int]]
    ) -> "ColumnarEventStore":
        """Build from time-ordered ``(etype, time)`` pairs."""
        vocab: List[str] = []
        index: Dict[str, int] = {}
        times: List[int] = []
        tids: List[int] = []
        for etype, time in events:
            tid = index.get(etype)
            if tid is None:
                tid = len(vocab)
                index[etype] = tid
                vocab.append(etype)
            times.append(time)
            tids.append(tid)
        return cls(times, tids, vocab)

    @classmethod
    def from_sequence(cls, sequence) -> "ColumnarEventStore":
        """Build from an :class:`~repro.mining.events.EventSequence`
        (positions match the sequence's indices)."""
        return cls.from_events((e.etype, e.time) for e in sequence)

    @classmethod
    def from_store(cls, store) -> "ColumnarEventStore":
        """Build from an :class:`~repro.store.eventstore.EventStore`,
        preserving record ids and attributes (dictionary-encoded)."""
        vocab: List[str] = []
        index: Dict[str, int] = {}
        attr_vocab: List[str] = [""]
        attr_index: Dict[str, int] = {"": NO_ATTRS}
        times: List[int] = []
        tids: List[int] = []
        codes: List[int] = []
        rids: List[int] = []
        for record in store:
            tid = index.get(record.etype)
            if tid is None:
                tid = len(vocab)
                index[record.etype] = tid
                vocab.append(record.etype)
            if record.attributes:
                blob = json.dumps(record.attributes, sort_keys=True)
                code = attr_index.get(blob)
                if code is None:
                    code = len(attr_vocab)
                    attr_index[blob] = code
                    attr_vocab.append(blob)
            else:
                code = NO_ATTRS
            times.append(record.time)
            tids.append(tid)
            codes.append(code)
            rids.append(record.record_id)
        return cls(times, tids, vocab, codes, attr_vocab, rids)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._times)

    def time_at(self, position: int) -> int:
        return int(self._times[position])

    def type_at(self, position: int) -> str:
        return self._type_vocab[self._type_ids[position]]

    def event_at(self, position: int) -> Tuple[str, int]:
        return self.type_at(position), self.time_at(position)

    def attributes_at(self, position: int) -> dict:
        code = int(self._attr_codes[position])
        if code == NO_ATTRS:
            return {}
        return json.loads(self._attr_vocab[code])

    def record_id_at(self, position: int) -> int:
        return int(self._record_ids[position])

    def types(self) -> List[str]:
        """Event types present, sorted."""
        return sorted(self._type_index)

    def type_id(self, etype: str) -> Optional[int]:
        return self._type_index.get(etype)

    def count(self, etype: Optional[str] = None) -> int:
        if etype is None:
            return len(self._times)
        tid = self._type_index.get(etype)
        if tid is None:
            return 0
        return len(self._postings[tid])

    def span(self) -> Tuple[int, int]:
        if not len(self._times):
            raise ValueError("empty store has no span")
        return int(self._times[0]), int(self._times[-1])

    def times_column(self):
        """The raw time column (read-only by convention)."""
        return self._times

    def postings(self, etype: str) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(positions, times) of one type - the posting list as column
        offsets, identical to the object AnchorIndex's view."""
        tid = self._type_index.get(etype)
        if tid is None:
            return (), ()
        return (
            tuple(int(p) for p in self._postings[tid]),
            tuple(int(t) for t in self._posting_times[tid]),
        )

    # ------------------------------------------------------------------
    # Window queries (AnchorIndex semantics, column-offset form)
    # ------------------------------------------------------------------
    @property
    def bucket_seconds(self) -> int:
        return 1 << self._shift

    def may_contain(self, etype: str, start: int, stop: int) -> bool:
        """Skip-index probe: False proves absence (same contract as
        :meth:`repro.store.anchorindex.AnchorIndex.may_contain`)."""
        tid = self._type_index.get(etype)
        if tid is None:
            return False
        buckets = self._buckets[tid]
        if not len(buckets):
            return False
        b0 = max(start, 0) >> self._shift
        b1 = stop >> self._shift
        if b1 - b0 > _MAX_BUCKET_PROBES:
            return True
        lo = _searchsorted(buckets, b0, "left")
        return lo < len(buckets) and buckets[lo] <= b1

    def has_in_window(self, etype: str, start: int, stop: int) -> bool:
        if stop < start:
            return False
        if not self.may_contain(etype, start, stop):
            return False
        tid = self._type_index.get(etype)
        if tid is None:
            return False
        times = self._posting_times[tid]
        i = _searchsorted(times, start, "left")
        return i < len(times) and times[i] <= stop

    def count_in_window(self, etype: str, start: int, stop: int) -> int:
        if stop < start:
            return 0
        tid = self._type_index.get(etype)
        if tid is None or not self.may_contain(etype, start, stop):
            return 0
        times = self._posting_times[tid]
        return _searchsorted(times, stop, "right") - _searchsorted(
            times, start, "left"
        )

    def positions_in_window(
        self, etype: str, start: int, stop: int
    ) -> Tuple[int, ...]:
        if stop < start:
            return ()
        tid = self._type_index.get(etype)
        if tid is None:
            return ()
        times = self._posting_times[tid]
        lo = _searchsorted(times, start, "left")
        hi = _searchsorted(times, stop, "right")
        return tuple(int(p) for p in self._postings[tid][lo:hi])

    # ------------------------------------------------------------------
    # Batched anchor screening (whole columns at once)
    # ------------------------------------------------------------------
    def screen_anchors(
        self,
        anchor_times: Sequence[int],
        requirements: Sequence[Tuple[str, int, int]],
    ) -> List[bool]:
        """Anchor viability for a whole anchor column in one sweep.

        Returns one boolean per anchor: True iff every requirement
        ``(etype, lo, hi)`` is witnessed by an event of that type in
        ``[anchor + lo, anchor + hi]`` - exactly
        :meth:`~repro.store.anchorindex.AnchorIndex.viable`, evaluated
        as vectorized searchsorted over the posting columns instead of
        one probe per (anchor, requirement).
        """
        n = len(anchor_times)
        if not requirements:
            return [True] * n
        _BATCH_SCREENS.inc()
        if _np is not None:
            anchors = _np.asarray(anchor_times, dtype=_np.int64)
            ok = _np.ones(n, dtype=bool)
            for etype, lo, hi in requirements:
                tid = self._type_index.get(etype)
                if tid is None:
                    ok[:] = False
                    break
                times = self._posting_times[tid]
                idx = _np.searchsorted(times, anchors + lo, side="left")
                hit = idx < len(times)
                witness = _np.where(hit, times[_np.minimum(
                    idx, len(times) - 1
                )], 0)
                ok &= hit & (witness <= anchors + hi)
            return ok.tolist()
        ok = [True] * n
        for etype, lo, hi in requirements:
            tid = self._type_index.get(etype)
            if tid is None:
                return [False] * n
            times = self._posting_times[tid]
            size = len(times)
            for i in range(n):
                if not ok[i]:
                    continue
                j = bisect_left(times, anchor_times[i] + lo)
                ok[i] = j < size and times[j] <= anchor_times[i] + hi
        return ok

    # ------------------------------------------------------------------
    # Per-granularity tick columns (the PR-5 bisection, whole columns)
    # ------------------------------------------------------------------
    def tick_columns(self, granularity) -> Tuple[object, object]:
        """``(ticks, defined)`` columns for one temporal type.

        ``ticks[i]`` is ``tick_of(times[i])`` (0 where undefined) and
        ``defined[i]`` records coverage; computed once per granularity
        through the compiled normal form's batched conversion kernel
        (:func:`repro.granularity.normalform.clock_ticks_of` - one
        vectorized divmod + ``searchsorted`` pass over the whole
        column) and cached on the store, so clock guards over whole
        event batches reduce to integer subtraction.
        """
        key = id(granularity)
        cached = self._tick_cache.get(key)
        if cached is not None:
            return cached[1], cached[2]
        from ..granularity.normalform import clock_ticks_of

        ticks, defined = clock_ticks_of(granularity, self._times)
        tick_col = _column(ticks)
        defined_col = _column(defined)
        # Keep a strong reference to the granularity so the id key
        # cannot be reused by a different object.
        self._tick_cache[key] = (granularity, tick_col, defined_col)
        return tick_col, defined_col

    def plan_cache(self) -> Dict[object, object]:
        """Per-store memo used by the dense runtime (keyed per plan)."""
        return self._plan_cache

    # ------------------------------------------------------------------
    # Object-path bridges
    # ------------------------------------------------------------------
    def to_sequence(self):
        """The object-based :class:`~repro.mining.events.EventSequence`
        holding the same events (the reference/fallback view)."""
        from ..mining.events import Event, EventSequence

        return EventSequence(
            Event(self.type_at(i), self.time_at(i))
            for i in range(len(self))
        )

    def to_event_store(self):
        """Rebuild an object :class:`~repro.store.eventstore.EventStore`
        with record ids and attributes (the recovery path)."""
        from .eventstore import EventRecord, EventStore

        store = EventStore()
        max_id = -1
        for i in range(len(self)):
            record = EventRecord(
                self.record_id_at(i),
                self.type_at(i),
                self.time_at(i),
                self.attributes_at(i),
            )
            store._records.append(record)
            store._indexed = False
            max_id = max(max_id, record.record_id)
        store._next_id = max_id + 1
        return store

    # ------------------------------------------------------------------
    # Zero-copy worker transfer (multiprocessing.shared_memory)
    # ------------------------------------------------------------------
    def to_shared(self) -> "SharedColumns":
        """Export the four int64 columns for zero-copy worker attach.

        Returns a :class:`SharedColumns` owner whose :meth:`~
        SharedColumns.handle` is a small picklable descriptor workers
        pass to :meth:`from_shared` (or :func:`attach_shared`).  The
        parent owns the OS resources: :meth:`SharedColumns.close` on
        pool shutdown unlinks them (refcounted, so nested exports can
        share one segment), which is what keeps a worker crash
        mid-scan from leaking ``/dev/shm`` segments - the chaos suite
        kills workers and asserts exactly that.
        """
        return SharedColumns(self)

    @classmethod
    def from_shared(cls, handle) -> "ColumnarEventStore":
        """Attach to columns exported by :meth:`to_shared`.

        Under the numpy kernel the four columns are views straight
        into the shared buffer - no copy, no re-encode; the store keeps
        the mapping alive for its own lifetime.  The ``array`` fallback
        kernel copies the bytes (``array('q')`` cannot view a foreign
        buffer) but still skips re-encoding from Python objects.  The
        mmap-file fallback handle reopens the :meth:`save` format
        memory-mapped.
        """
        kind, ref, header = handle
        if kind == "file":
            store = cls.load(ref, mmap=True)
            _SHM_ATTACHES.inc()
            return store
        shm = _open_attached_segment(ref)
        n = int(header["events"])
        if _np is not None:
            base = _np.frombuffer(shm.buf, dtype="<i8", count=4 * n)
            columns = [base[i * n:(i + 1) * n] for i in range(4)]
        else:
            from array import array

            raw = bytes(shm.buf[: 4 * 8 * n])
            columns = []
            for i in range(4):
                column = array("q")
                column.frombytes(raw[i * 8 * n:(i + 1) * 8 * n])
                if sys.byteorder != "little":  # pragma: no cover
                    column.byteswap()
                columns.append(column)
        store = cls(
            columns[0],
            columns[1],
            header.get("type_vocab", []),
            columns[2],
            header.get("attr_vocab", [""]),
            columns[3],
        )
        if _np is not None:
            store._shared = shm
        else:
            # The fallback copied the payload out; release the local
            # mapping immediately (the parent still owns the segment).
            try:
                shm.close()
            except OSError:  # pragma: no cover - platform specific
                pass
        _SHM_ATTACHES.inc()
        return store

    # ------------------------------------------------------------------
    # Persistence (memory-mappable binary columns)
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the columns as ``MAGIC + header + raw little-endian
        int64 columns`` (times, type ids, attr codes, record ids)."""
        header = json.dumps(
            {
                "schema": 1,
                "events": len(self),
                "type_vocab": list(self._type_vocab),
                "attr_vocab": list(self._attr_vocab),
            },
            sort_keys=True,
        ).encode("utf-8")
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(len(header).to_bytes(8, "little"))
            handle.write(header)
            for column in (
                self._times,
                self._type_ids,
                self._attr_codes,
                self._record_ids,
            ):
                handle.write(_column_bytes(column))

    @classmethod
    def load(
        cls, path: str, mmap: bool = True
    ) -> "ColumnarEventStore":
        """Reopen a :meth:`save` file, memory-mapping the columns when
        possible (stores beyond RAM stay queryable).

        Raises :class:`ColumnarFormatError` on a malformed file; use
        :func:`load_columnar` for the counted fall-back-to-object-path
        behaviour.
        """
        try:
            size = os.path.getsize(path)
            with open(path, "rb") as handle:
                magic = handle.read(len(MAGIC))
                if magic != MAGIC:
                    raise ColumnarFormatError(
                        "%s: bad magic %r" % (path, magic)
                    )
                raw_len = handle.read(8)
                if len(raw_len) != 8:
                    raise ColumnarFormatError(
                        "%s: truncated header length" % path
                    )
                header_len = int.from_bytes(raw_len, "little")
                blob = handle.read(header_len)
                if len(blob) != header_len:
                    raise ColumnarFormatError(
                        "%s: truncated header" % path
                    )
                try:
                    header = json.loads(blob.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ColumnarFormatError(
                        "%s: undecodable header (%s)" % (path, exc)
                    )
                n = int(header.get("events", -1))
                offset = len(MAGIC) + 8 + header_len
                expected = offset + 4 * 8 * n
                if n < 0 or size != expected:
                    raise ColumnarFormatError(
                        "%s: size %d does not match %d events"
                        % (path, size, n)
                    )
                columns = _read_columns(handle, path, offset, n, mmap)
        except OSError as exc:
            raise ColumnarFormatError("%s: %s" % (path, exc))
        times, type_ids, attr_codes, record_ids = columns
        store = cls(
            times,
            type_ids,
            header.get("type_vocab", []),
            attr_codes,
            header.get("attr_vocab", [""]),
            record_ids,
        )
        return store


def _is_column(values) -> bool:
    if _np is not None and isinstance(values, _np.ndarray):
        return True
    from array import array

    return isinstance(values, array)


def _column_bytes(column) -> bytes:
    if _np is not None and isinstance(column, _np.ndarray):
        return column.astype("<i8").tobytes()
    if sys.byteorder == "little":
        return column.tobytes()
    swapped = column[:]
    swapped.byteswap()
    return swapped.tobytes()


def _read_columns(handle, path, offset, n, use_mmap):
    """The four int64 columns, memory-mapped when the platform allows."""
    if use_mmap and _np is not None and n > 0:
        return [
            _np.memmap(
                path,
                dtype="<i8",
                mode="r",
                offset=offset + index * 8 * n,
                shape=(n,),
            )
            for index in range(4)
        ]
    from array import array

    handle.seek(offset)
    columns = []
    for _ in range(4):
        column = array("q")
        blob = handle.read(8 * n)
        if len(blob) != 8 * n:
            raise ColumnarFormatError("%s: truncated column" % path)
        column.frombytes(blob)
        if sys.byteorder != "little":  # pragma: no cover - big-endian
            column.byteswap()
        columns.append(column)
    return columns


class SharedColumns:
    """Parent-side owner of one store's columns in OS shared memory.

    The payload is the four little-endian int64 columns back to back in
    one ``multiprocessing.shared_memory`` segment; the vocabularies and
    event count travel in the (small, picklable) handle.  When
    shared_memory is unavailable or segment creation fails, the export
    falls back to a temporary file in the :meth:`ColumnarEventStore.
    save` format, which workers reopen memory-mapped - same zero-copy
    contract, different transport.

    Lifecycle is refcounted: the creator holds one reference,
    :meth:`acquire` adds more, and the :meth:`close` that drops the
    count to zero unlinks the segment (or deletes the file).  Attaching
    workers never unlink - :meth:`ColumnarEventStore.from_shared`
    opens the segment through :func:`_open_attached_segment`, whose
    only divergence from stock ``SharedMemory`` is teardown tolerance;
    under fork the attach's duplicate resource-tracker registration is
    cleared by the owner's single unlink, so a crashing worker can
    never reap a segment the parent still owns.
    """

    __slots__ = ("_handle", "_shm", "_path", "_refs")

    def __init__(self, store: ColumnarEventStore) -> None:
        self._refs = 1
        self._shm = None
        self._path: Optional[str] = None
        header = {
            "events": len(store),
            "type_vocab": list(store._type_vocab),
            "attr_vocab": list(store._attr_vocab),
        }
        payload = b"".join(
            _column_bytes(column)
            for column in (
                store._times,
                store._type_ids,
                store._attr_codes,
                store._record_ids,
            )
        )
        shm = None
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(payload))
            )
        except (ImportError, OSError):
            shm = None
        if shm is not None:
            shm.buf[: len(payload)] = payload
            self._shm = shm
            self._handle = ("shm", shm.name, header)
        else:  # pragma: no cover - exercised via the forced-file tests
            import tempfile

            fd, path = tempfile.mkstemp(
                prefix="repro-columns-", suffix=".rpcol"
            )
            os.close(fd)
            store.save(path)
            self._path = path
            self._handle = ("file", path, header)

    @property
    def kind(self) -> str:
        """``shm`` or ``file`` (the fallback transport)."""
        return self._handle[0]

    @property
    def name(self) -> str:
        """Segment name (or file path) of the export."""
        return self._handle[1]

    @property
    def refs(self) -> int:
        return self._refs

    def handle(self):
        """The picklable descriptor workers attach with."""
        return self._handle

    def acquire(self) -> "SharedColumns":
        """Add one owner reference (for nested pool lifetimes)."""
        if self._refs <= 0:
            raise RuntimeError("SharedColumns already closed")
        self._refs += 1
        return self

    def close(self) -> None:
        """Release one reference; the last release unlinks the OS
        resources.  Idempotent once fully closed."""
        if self._refs <= 0:
            return
        self._refs -= 1
        if self._refs:
            return
        if self._shm is not None:
            try:
                self._shm.close()
            except OSError:  # pragma: no cover - platform specific
                pass
            try:
                self._shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            self._shm = None
        if self._path is not None:
            try:
                os.remove(self._path)
            except OSError:  # pragma: no cover - already gone
                pass
            self._path = None

    def __enter__(self) -> "SharedColumns":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _open_attached_segment(name):
    """Attach to a named segment, tolerating live column views.

    Two platform sharp edges live here.  First, numpy views into
    ``shm.buf`` can outlive the wrapper object during interpreter
    teardown, and the stock ``SharedMemory.__del__`` then raises
    ``BufferError`` from ``mmap.close``; the subclass swallows it - the
    mapping is released when the last view dies (``mmap`` closes on
    deallocation), so nothing leaks.  Second, CPython 3.8-3.12
    registers *attaches* with the resource tracker too (bpo-39959);
    under the fork start method the pool uses, a worker's registration
    lands in the parent's tracker cache as a duplicate set-add, and the
    owner's single unlink clears it - so we deliberately do *not*
    unregister here (doing so would remove the creator's entry and make
    the owner's unlink warn).
    """
    from multiprocessing import shared_memory

    class _AttachedSegment(shared_memory.SharedMemory):
        def close(self):
            try:
                super().close()
            except BufferError:
                # Views into .buf still exported; the OS mapping is
                # freed when they are collected.
                pass

    return _AttachedSegment(name=name)


def attach_shared(handle) -> Optional[ColumnarEventStore]:
    """Attach to a :class:`SharedColumns` handle, or None on failure.

    The None return routes the worker to its inherited (or rebuilt)
    view instead - a degraded-performance path, never a correctness
    one - and counts a ``repro_columnar_fallback_total``.
    """
    try:
        return ColumnarEventStore.from_shared(handle)
    except (OSError, ColumnarFormatError, KeyError, ValueError):
        _FALLBACKS.inc()
        return None


def load_columnar(
    path: str, mmap: bool = True
) -> Optional[ColumnarEventStore]:
    """Open a persisted columnar store, or None on any corruption.

    The None return is the *fall back to the object path* signal: the
    caller reloads from its JSONL/CSV source of truth instead.  Every
    fallback increments ``repro_columnar_fallback_total``.
    """
    with span("columnar.load", path=os.path.basename(path)) as load_span:
        try:
            store = ColumnarEventStore.load(path, mmap=mmap)
        except ColumnarFormatError as exc:
            _FALLBACKS.inc()
            load_span.set(fallback=True, reason=str(exc))
            return None
        load_span.set(events=len(store))
        return store


def record_fallback() -> None:
    """Count one columnar-to-object fallback (scan-layer use)."""
    _FALLBACKS.inc()
