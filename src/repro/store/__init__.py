"""An in-memory temporal event store (the paper's data substrate)."""

from .anchorindex import AnchorIndex
from .columnar import (
    ColumnarEventStore,
    ColumnarFormatError,
    SharedColumns,
    attach_shared,
    columnar_active,
    columnar_kernel,
    load_columnar,
    resolve_columnar,
)
from .eventstore import EventRecord, EventStore

__all__ = [
    "EventStore",
    "EventRecord",
    "AnchorIndex",
    "ColumnarEventStore",
    "ColumnarFormatError",
    "SharedColumns",
    "attach_shared",
    "columnar_active",
    "columnar_kernel",
    "load_columnar",
    "resolve_columnar",
]
