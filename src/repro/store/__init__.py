"""An in-memory temporal event store (the paper's data substrate)."""

from .anchorindex import AnchorIndex
from .eventstore import EventRecord, EventStore

__all__ = ["EventStore", "EventRecord", "AnchorIndex"]
