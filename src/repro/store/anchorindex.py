"""Per-type anchor indexing for event sequences and stores.

The paper's mining step 5 starts one TAG copy at every reference
occurrence.  Most of those runs are doomed from the first event: the
candidate assigns type ``E`` to a variable whose propagated window
(anchored at the root) contains no ``E`` event at all.  The anchor
index answers exactly that question - *"is there an event of type E
with a timestamp in [lo, hi]?"* - without touching the sequence:

* a **posting list** per event type: the sorted positions and
  timestamps of that type's occurrences;
* a **time-bucketed skip index**: the set of coarse time buckets each
  type occurs in, so a window that misses every bucket is rejected in
  O(1) before any binary search runs.

Both structures are immutable once built; :class:`~repro.mining.events.
EventSequence` and :class:`~repro.store.eventstore.EventStore` build
one lazily and cache it.  The mining scan, the TAG matcher's anchor
enumeration and the candidate screens all consult the same index.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

#: One anchor requirement: an event of ``etype`` must exist with a
#: timestamp in ``[anchor_time + lo, anchor_time + hi]``.
Requirement = Tuple[str, int, int]

#: Beyond this many buckets per window the skip check costs more than
#: the binary search it would save; fall straight through to bisect.
_MAX_BUCKET_PROBES = 8


def _pick_shift(span_seconds: int, n_events: int) -> int:
    """Bucket width as a power of two: aim for ~1 event per bucket.

    Wider buckets on sparse data, narrower on dense data; floors at
    64 s so minute-aligned feeds don't degenerate to one bucket per
    event timestamp.
    """
    width = max(64, span_seconds // max(n_events, 1))
    shift = 6
    while (1 << shift) < width and shift < 40:
        shift += 1
    return shift


class AnchorIndex:
    """Immutable posting-list + skip index over one event snapshot."""

    __slots__ = ("_positions", "_times", "_buckets", "_shift", "_count")

    def __init__(
        self,
        positions_by_type: Dict[str, Sequence[int]],
        times_by_type: Dict[str, Sequence[int]],
        shift: int,
    ) -> None:
        self._positions: Dict[str, Tuple[int, ...]] = {
            etype: tuple(positions)
            for etype, positions in positions_by_type.items()
        }
        self._times: Dict[str, Tuple[int, ...]] = {
            etype: tuple(times) for etype, times in times_by_type.items()
        }
        self._shift = shift
        self._buckets: Dict[str, FrozenSet[int]] = {
            etype: frozenset(t >> shift for t in times)
            for etype, times in self._times.items()
        }
        self._count = sum(len(t) for t in self._times.values())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls, events: Iterable[Tuple[str, int]]
    ) -> "AnchorIndex":
        """Build from time-ordered ``(etype, time)`` pairs."""
        positions: Dict[str, List[int]] = {}
        times: Dict[str, List[int]] = {}
        last = None
        count = 0
        for position, (etype, time) in enumerate(events):
            positions.setdefault(etype, []).append(position)
            times.setdefault(etype, []).append(time)
            last = time
            if count == 0:
                first = time
            count += 1
        span = (last - first) if count else 0
        return cls(positions, times, _pick_shift(span, count))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def bucket_seconds(self) -> int:
        """Width of one skip-index bucket in seconds."""
        return 1 << self._shift

    def types(self) -> FrozenSet[str]:
        return frozenset(self._times)

    def positions(self, etype: str) -> Tuple[int, ...]:
        """Sorted sequence positions of a type (the posting list)."""
        return self._positions.get(etype, ())

    def may_contain(self, etype: str, start: int, stop: int) -> bool:
        """Skip-index probe: False means *definitely* no occurrence.

        True means "possibly" - a bucket hit still needs the exact
        bisect.  Windows spanning many buckets skip the probe (the
        bisect is cheaper than a long membership scan).
        """
        buckets = self._buckets.get(etype)
        if not buckets:
            return False
        b0 = max(start, 0) >> self._shift
        b1 = stop >> self._shift
        if b1 - b0 > _MAX_BUCKET_PROBES:
            return True
        return any(b in buckets for b in range(b0, b1 + 1))

    def has_in_window(self, etype: str, start: int, stop: int) -> bool:
        """Exact: is there an ``etype`` event with time in [start, stop]?"""
        if stop < start:
            return False
        if not self.may_contain(etype, start, stop):
            return False
        times = self._times.get(etype)
        if not times:
            return False
        i = bisect_left(times, start)
        return i < len(times) and times[i] <= stop

    def count_in_window(self, etype: str, start: int, stop: int) -> int:
        """Exact count of ``etype`` events with time in [start, stop]."""
        if stop < start:
            return 0
        times = self._times.get(etype)
        if not times or not self.may_contain(etype, start, stop):
            return 0
        return bisect_right(times, stop) - bisect_left(times, start)

    def positions_in_window(
        self, etype: str, start: int, stop: int
    ) -> Tuple[int, ...]:
        """Sequence positions of ``etype`` events with time in the window."""
        if stop < start:
            return ()
        times = self._times.get(etype)
        if not times:
            return ()
        lo = bisect_left(times, start)
        hi = bisect_right(times, stop)
        return self._positions[etype][lo:hi]

    # ------------------------------------------------------------------
    # Anchor viability (the mining primitive)
    # ------------------------------------------------------------------
    def viable(
        self, anchor_time: int, requirements: Sequence[Requirement]
    ) -> bool:
        """Can a match anchored at ``anchor_time`` possibly exist?

        Every requirement ``(etype, lo, hi)`` must be witnessed by an
        event of that type in ``[anchor_time + lo, anchor_time + hi]``.
        Requirements come from sound over-approximations (propagated
        windows), so False proves no match; True proves nothing.
        """
        for etype, lo, hi in requirements:
            if not self.has_in_window(
                etype, anchor_time + lo, anchor_time + hi
            ):
                return False
        return True

    def viable_anchors(
        self,
        anchors: Sequence[Tuple[int, int]],
        requirements: Sequence[Requirement],
    ) -> List[int]:
        """Filter ``(position, time)`` anchors down to the viable ones.

        Returns positions, preserving input order.  With no
        requirements every anchor is viable (nothing to refute).
        """
        if not requirements:
            return [position for position, _ in anchors]
        return [
            position
            for position, time in anchors
            if self.viable(time, requirements)
        ]
