"""An in-memory temporal event store.

The paper's sequences come from databases of timed events ("stock
shares during a day, each access to a computer ..., bank
transactions"); this module provides that substrate: an appendable
store of typed, timestamped records with attributes, time/type indexes,
snapshot extraction for the mining layer, and JSON-lines persistence.

Appends may arrive out of time order (real feeds do); indexes are
rebuilt lazily at the first query after a write, so bulk loading stays
linear.
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..mining.events import Event, EventSequence
from ..obs import obs_debug
from ..resilience.errors import EventValidationError, validate_event
from ..resilience.quarantine import Quarantine
from .anchorindex import AnchorIndex, _pick_shift


class EventRecord:
    """One stored event: id, type, timestamp, and free-form attributes.

    Construction validates the event at the edge (non-empty string
    type, non-negative integer timestamp) with the shared
    :class:`~repro.resilience.EventValidationError`, so malformed
    input never corrupts the store's indexes.
    """

    __slots__ = ("record_id", "etype", "time", "attributes")

    def __init__(
        self,
        record_id: int,
        etype: str,
        time: int,
        attributes: Optional[Mapping[str, Any]] = None,
    ):
        validate_event(etype, time)
        self.record_id = record_id
        self.etype = etype
        self.time = time
        self.attributes = dict(attributes) if attributes else {}

    def to_event(self) -> Event:
        """The (type, time) projection used by matching and mining."""
        return Event(self.etype, self.time)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<EventRecord #%d %s@%d>" % (
            self.record_id,
            self.etype,
            self.time,
        )


class EventStore:
    """Appendable, queryable collection of event records."""

    def __init__(self):
        self._records: List[EventRecord] = []
        self._next_id = 0
        self._sorted = True  # records currently in time order
        self._times: List[int] = []
        self._by_type: Dict[str, List[int]] = {}
        self._times_by_type: Dict[str, List[int]] = {}
        self._by_id: Dict[int, EventRecord] = {}
        self._indexed = True
        self._anchor_index: Optional[AnchorIndex] = None
        self._columnar = None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(
        self,
        etype: str,
        time: int,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> EventRecord:
        """Store one event; returns the record (with its id).

        In-order appends (the common case for feeds) extend the
        posting-list indexes incrementally in O(1) amortised; an
        out-of-order append marks them dirty and the next read rebuilds
        them once.
        """
        record = EventRecord(self._next_id, etype, time, attributes)
        self._next_id += 1
        if self._records and time < self._records[-1].time:
            self._sorted = False
            self._indexed = False
        self._records.append(record)
        self._anchor_index = None
        self._columnar = None
        if self._indexed:
            position = len(self._records) - 1
            self._times.append(time)
            self._by_type.setdefault(etype, []).append(position)
            self._times_by_type.setdefault(etype, []).append(time)
            self._by_id[record.record_id] = record
            if obs_debug():
                self._check_index_invariants()
        return record

    def extend(
        self,
        events: Iterable[Union[Event, Tuple[str, int]]],
        quarantine: Optional[Quarantine] = None,
    ) -> int:
        """Bulk-append (type, time) pairs; returns the count added.

        Each event is validated at the edge.  Without a ``quarantine``
        the first malformed event aborts the batch with
        :class:`~repro.resilience.EventValidationError` (events before
        it stay appended, and the id map and cached views stay
        consistent with exactly those - the failed event never touches
        the indexes).  With one, every malformed event is recorded
        there - reason, raw payload, batch offset - and the batch
        continues (dead-letter semantics, shared with
        :meth:`load_jsonl` and :func:`repro.io.csvlog.read_events`).
        """
        count = 0
        for offset, event in enumerate(events):
            try:
                etype, time = event[0], event[1]
            except (IndexError, KeyError, TypeError) as exc:
                if quarantine is None:
                    raise
                quarantine.add(
                    "not a (type, time) pair: %s" % exc,
                    raw=repr(event),
                    line=offset,
                )
                continue
            try:
                self.append(etype, time)
            except EventValidationError as exc:
                if quarantine is None:
                    raise
                quarantine.add(str(exc), raw=repr(event), line=offset)
                continue
            count += 1
        return count

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _reindex(self) -> None:
        if not self._sorted:
            self._records.sort(key=lambda r: (r.time, r.record_id))
            self._sorted = True
        self._times = [record.time for record in self._records]
        self._by_type = {}
        self._times_by_type = {}
        self._by_id = {}
        for position, record in enumerate(self._records):
            self._by_type.setdefault(record.etype, []).append(position)
            self._times_by_type.setdefault(record.etype, []).append(
                record.time
            )
            self._by_id[record.record_id] = record
        self._indexed = True
        self._anchor_index = None
        self._columnar = None
        if obs_debug():
            self._check_index_invariants()

    def _ensure_index(self) -> None:
        if not self._indexed:
            self._reindex()

    def _check_index_invariants(self) -> None:
        """Verify the incremental indexes against a from-scratch rebuild.

        O(n) per call, so it only runs under ``REPRO_OBS=debug``.
        Raises AssertionError on any divergence - the contract the
        incremental maintenance in :meth:`append` must uphold.
        """
        assert self._times == [r.time for r in self._records], (
            "time index diverged from records"
        )
        assert all(
            self._times[i] <= self._times[i + 1]
            for i in range(len(self._times) - 1)
        ), "time index not sorted"
        by_type: Dict[str, List[int]] = {}
        times_by_type: Dict[str, List[int]] = {}
        for position, record in enumerate(self._records):
            by_type.setdefault(record.etype, []).append(position)
            times_by_type.setdefault(record.etype, []).append(record.time)
        assert self._by_type == by_type, "posting lists diverged"
        assert self._times_by_type == times_by_type, (
            "per-type time index diverged"
        )
        assert self._by_id == {
            r.record_id: r for r in self._records
        }, "id map diverged"

    def anchor_index(self) -> AnchorIndex:
        """The per-type posting-list/skip index over current contents.

        Built from the incrementally maintained posting lists (no extra
        pass over the records) and invalidated by any write.
        """
        self._ensure_index()
        if self._anchor_index is None:
            span = (
                self._times[-1] - self._times[0] if self._times else 0
            )
            self._anchor_index = AnchorIndex(
                self._by_type,
                self._times_by_type,
                _pick_shift(span, len(self._records)),
            )
        return self._anchor_index

    def columnar(self):
        """The cached columnar snapshot of current contents.

        Positions in the snapshot are offsets into the time-sorted
        records (identical to :meth:`snapshot`'s sequence positions);
        record ids and attributes are carried along dictionary-encoded.
        Any write - including a failed one mid-batch - invalidates the
        cache, so a view is never stale relative to :meth:`get`.
        """
        self._ensure_index()
        if self._columnar is None:
            from .columnar import ColumnarEventStore

            self._columnar = ColumnarEventStore.from_store(self)
        return self._columnar

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        self._ensure_index()
        return iter(self._records)

    def types(self) -> List[str]:
        """Event types present, sorted."""
        self._ensure_index()
        return sorted(self._by_type)

    def count(self, etype: Optional[str] = None) -> int:
        """Total records, or records of one type."""
        self._ensure_index()
        if etype is None:
            return len(self._records)
        return len(self._by_type.get(etype, ()))

    def span(self) -> Tuple[int, int]:
        """(first, last) timestamps; raises on an empty store."""
        self._ensure_index()
        if not self._records:
            raise ValueError("empty store has no span")
        return self._times[0], self._times[-1]

    def query(
        self,
        types: Optional[Iterable[str]] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        where: Optional[Callable[[EventRecord], bool]] = None,
    ) -> List[EventRecord]:
        """Records filtered by type set, inclusive time range, predicate."""
        self._ensure_index()
        lo = 0 if start is None else bisect_left(self._times, start)
        hi = (
            len(self._records)
            if stop is None
            else bisect_right(self._times, stop)
        )
        allowed = frozenset(types) if types is not None else None
        result = []
        for record in self._records[lo:hi]:
            if allowed is not None and record.etype not in allowed:
                continue
            if where is not None and not where(record):
                continue
            result.append(record)
        return result

    def get(self, record_id: int) -> EventRecord:
        """Look up a record by id in O(1); raises KeyError when absent.

        Backed by the id map maintained in :meth:`_reindex` (rebuilt
        lazily after writes, like the time/type indexes).
        """
        self._ensure_index()
        return self._by_id[record_id]

    # ------------------------------------------------------------------
    # Mining integration
    # ------------------------------------------------------------------
    def snapshot(
        self,
        types: Optional[Iterable[str]] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> EventSequence:
        """An immutable EventSequence view for matching/mining."""
        return EventSequence(
            record.to_event()
            for record in self.query(types=types, start=start, stop=stop)
        )

    def mine(self, problem, system, **kwargs):
        """Run a discovery problem against the current contents."""
        from ..mining.discovery import discover

        return discover(problem, self.snapshot(), system, **kwargs)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_sequence(cls, sequence: EventSequence) -> "EventStore":
        """A store populated from an existing event sequence."""
        store = cls()
        store.extend(sequence)
        return store

    @classmethod
    def from_csv(
        cls, source, quarantine: Optional[Quarantine] = None
    ) -> "EventStore":
        """A store loaded from a two-column CSV event log.

        A ``quarantine`` makes the read tolerant of malformed rows;
        see :func:`repro.io.csvlog.read_events`.
        """
        from ..io.csvlog import read_events

        return cls.from_sequence(read_events(source, quarantine=quarantine))

    # ------------------------------------------------------------------
    # Persistence (JSON lines)
    # ------------------------------------------------------------------
    def save_jsonl(self, target: Union[str, IO]) -> None:
        """Write all records, one JSON object per line."""
        if isinstance(target, str):
            with open(target, "w") as handle:
                self.save_jsonl(handle)
            return
        self._ensure_index()
        for record in self._records:
            target.write(
                json.dumps(
                    {
                        "id": record.record_id,
                        "etype": record.etype,
                        "time": record.time,
                        "attributes": record.attributes,
                    },
                    sort_keys=True,
                )
                + "\n"
            )

    @classmethod
    def load_jsonl(
        cls,
        source: Union[str, IO],
        quarantine: Optional[Quarantine] = None,
    ) -> "EventStore":
        """Rebuild a store from :meth:`save_jsonl` output.

        Without a ``quarantine`` the load is strict: the first
        malformed line aborts it (historical behaviour).  With one,
        every malformed line (broken JSON, missing fields, bad types)
        is recorded there - line number, reason, raw text - and the
        load continues with the remaining records (dead-letter
        semantics, shared with :func:`repro.io.csvlog.read_events`).
        """
        if isinstance(source, str):
            with open(source) as handle:
                return cls.load_jsonl(handle, quarantine=quarantine)
        store = cls()
        max_id = -1
        for number, line in enumerate(source, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                record = EventRecord(
                    int(payload["id"]),
                    payload["etype"],
                    int(payload["time"]),
                    payload.get("attributes"),
                )
            except (KeyError, TypeError, ValueError) as exc:
                if quarantine is None:
                    raise
                reason = (
                    "missing field %s" % exc
                    if isinstance(exc, KeyError)
                    else str(exc)
                )
                quarantine.add(reason, raw=line, line=number)
                continue
            if store._records and record.time < store._records[-1].time:
                store._sorted = False
            store._records.append(record)
            store._indexed = False
            max_id = max(max_id, record.record_id)
        store._next_id = max_id + 1
        return store
