"""repro: multi-granularity temporal constraints, TAGs, and event mining.

A from-scratch reproduction of Bettini, Wang & Jajodia, *Testing Complex
Temporal Relationships Involving Multiple Granularities and Its
Application to Data Mining* (PODS 1996).

Layers (each importable on its own):

* :mod:`repro.granularity` - temporal types over a discrete timeline,
  calendar/business calendars, size tables, constraint conversion;
* :mod:`repro.constraints` - TCGs, event structures, STP solving,
  approximate propagation (Theorem 2), exact consistency;
* :mod:`repro.automata` - timed automata with granularities (TAGs),
  construction from complex event types (Theorem 3), online matching
  (Theorem 4), and the exact reference matcher;
* :mod:`repro.mining` - event-discovery problems, the naive and the
  optimised five-step solver, the MTV95-style baseline, generators;
* :mod:`repro.hardness` - the Theorem 1 SUBSET SUM reduction;
* :mod:`repro.resilience` - reorder buffers with watermarks,
  degradation policies, quarantine channels and fault injection that
  keep the streaming path alive under dirty real-world feeds;
* :mod:`repro.service` - the multi-tenant streaming detection service:
  per-tenant circuit breakers, bounded ingress queues with shedding,
  and checkpoint-backed LRU session eviction with crash recovery;
* :mod:`repro.core` - a small facade for the common path.
"""

from .automata import StreamingMatcher, TagMatcher, build_tag
from .constraints import (
    TCG,
    ComplexEventType,
    EventStructure,
    StructureBuilder,
    propagate,
)
from .core import (
    check_consistency,
    compile_pattern,
    count_pattern,
    mine,
    pattern_frequency,
    stream_pattern,
)
from .granularity import GranularitySystem, TemporalType, standard_system
from .mining import Event, EventDiscoveryProblem, EventSequence, discover
from .resilience import (
    EventValidationError,
    FaultInjector,
    Quarantine,
    ReorderBuffer,
    StreamFeedError,
)
from .service import (
    DetectionService,
    ServiceConfig,
    ServiceDetection,
    serve_events,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "TCG",
    "EventStructure",
    "ComplexEventType",
    "propagate",
    "TemporalType",
    "GranularitySystem",
    "standard_system",
    "build_tag",
    "TagMatcher",
    "StreamingMatcher",
    "StructureBuilder",
    "Event",
    "EventSequence",
    "EventDiscoveryProblem",
    "discover",
    "check_consistency",
    "compile_pattern",
    "count_pattern",
    "pattern_frequency",
    "mine",
    "stream_pattern",
    "EventValidationError",
    "StreamFeedError",
    "Quarantine",
    "ReorderBuffer",
    "FaultInjector",
    "DetectionService",
    "ServiceConfig",
    "ServiceDetection",
    "serve_events",
]
