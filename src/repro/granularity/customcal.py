"""User-defined calendars (the paper's [Soo93] multi-calendar support).

The Gregorian calendar of :mod:`repro.granularity.gregorian` is just
one instance of the paper's temporal types; real systems also run
accounting calendars (thirteen 28-day periods), 4-4-5 retail quarters,
and other custom schemes.  A :class:`CustomCalendar` is defined by its
per-year month lengths plus an optional leap rule (extra days appended
to a chosen month in leap years); :class:`CustomMonthType` and
:class:`CustomYearType` expose it as temporal types sharing the same
absolute timeline (day 0 = the standard epoch), so patterns can mix
Gregorian and custom granularities freely.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .base import DayBasedType
from .gregorian import SECONDS_PER_DAY


class CustomCalendar:
    """A calendar from month lengths and an optional leap rule.

    Parameters
    ----------
    month_lengths:
        Days in each month of a common year.
    leap_days:
        ``leap_days(year_index) -> int`` extra days in that year
        (0-based year index; default none).
    leap_month:
        Which month (0-based) absorbs the extra days (default: last).
    """

    def __init__(
        self,
        month_lengths: Sequence[int],
        leap_days: Optional[Callable[[int], int]] = None,
        leap_month: Optional[int] = None,
        period_years: Optional[int] = None,
    ):
        """``period_years`` optionally declares that the leap rule
        repeats with that period, letting the size tables treat scanned
        values as exact (see SizeTable.period_info support)."""
        month_lengths = tuple(int(d) for d in month_lengths)
        if not month_lengths or any(d <= 0 for d in month_lengths):
            raise ValueError("month lengths must be positive")
        self.month_lengths = month_lengths
        self.leap_days = leap_days if leap_days is not None else (lambda y: 0)
        self.leap_month = (
            leap_month if leap_month is not None else len(month_lengths) - 1
        )
        if not 0 <= self.leap_month < len(month_lengths):
            raise ValueError("leap_month out of range")
        self.base_year_days = sum(month_lengths)
        if period_years is not None and period_years <= 0:
            raise ValueError("period_years must be positive")
        self.period_years = period_years
        self._year_starts: List[int] = [0]  # day index of each year start

    # ------------------------------------------------------------------
    def days_in_year(self, year_index: int) -> int:
        extra = int(self.leap_days(year_index))
        if extra < 0:
            raise ValueError("leap rule returned negative days")
        return self.base_year_days + extra

    def months_per_year(self) -> int:
        return len(self.month_lengths)

    def days_in_month(self, year_index: int, month: int) -> int:
        base = self.month_lengths[month]
        if month == self.leap_month:
            base += int(self.leap_days(year_index))
        return base

    def _ensure_year(self, year_index: int) -> None:
        while len(self._year_starts) <= year_index + 1:
            previous_year = len(self._year_starts) - 1
            self._year_starts.append(
                self._year_starts[-1] + self.days_in_year(previous_year)
            )

    def year_of_day(self, day_index: int) -> int:
        """0-based year index containing a day index."""
        if day_index < 0:
            raise ValueError("day index must be non-negative")
        from bisect import bisect_right

        while self._year_starts[-1] <= day_index:
            self._ensure_year(len(self._year_starts))
        return bisect_right(self._year_starts, day_index) - 1

    def year_bounds(self, year_index: int) -> Tuple[int, int]:
        self._ensure_year(year_index)
        start = self._year_starts[year_index]
        return start, start + self.days_in_year(year_index) - 1

    def detect_period_years(self, max_years: int = 400) -> Optional[int]:
        """Infer the leap-cycle length when none was declared.

        Returns the smallest candidate period ``p`` (in years) such
        that the per-year day counts repeat with period ``p`` across a
        four-cycle verification window, or None when no period at or
        below ``max_years`` fits.  Used by the calendar-algebra
        compiler to lower calendars built without ``period_years``;
        the compiler re-verifies the inferred period against actual
        tick bounds before trusting it.
        """
        if self.period_years is not None:
            return self.period_years
        lengths = [self.days_in_year(y) for y in range(4 * max_years)]
        for p in range(1, max_years + 1):
            if all(
                lengths[y] == lengths[y + p]
                for y in range(len(lengths) - p)
            ):
                return p
        return None

    def month_of_day(self, day_index: int) -> int:
        """Absolute month index (year * months_per_year + month)."""
        year = self.year_of_day(day_index)
        offset = day_index - self._year_starts[year]
        for month in range(self.months_per_year()):
            length = self.days_in_month(year, month)
            if offset < length:
                return year * self.months_per_year() + month
            offset -= length
        raise AssertionError("day beyond its year")  # pragma: no cover

    def month_bounds(self, month_index: int) -> Tuple[int, int]:
        year, month = divmod(month_index, self.months_per_year())
        self._ensure_year(year)
        start = self._year_starts[year]
        for earlier in range(month):
            start += self.days_in_month(year, earlier)
        return start, start + self.days_in_month(year, month) - 1


class CustomMonthType(DayBasedType):
    """Months of a custom calendar as a temporal type."""

    def __init__(self, calendar: CustomCalendar, label: str):
        self.calendar = calendar
        self.label = label
        self.total = True

    def period_info(self):
        """Exact period when the calendar declares its leap cycle."""
        years = self.calendar.period_years
        if years is None:
            return None
        seconds = sum(
            self.calendar.days_in_year(y) for y in range(years)
        ) * SECONDS_PER_DAY
        return years * self.calendar.months_per_year(), seconds

    def day_tick_of(self, day_index: int) -> Optional[int]:
        if day_index < 0:
            return None
        return self.calendar.month_of_day(day_index)

    def day_tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        return self.calendar.month_bounds(index)


class CustomYearType(DayBasedType):
    """Years of a custom calendar as a temporal type."""

    def __init__(self, calendar: CustomCalendar, label: str):
        self.calendar = calendar
        self.label = label
        self.total = True

    def period_info(self):
        """Exact period when the calendar declares its leap cycle."""
        years = self.calendar.period_years
        if years is None:
            return None
        seconds = sum(
            self.calendar.days_in_year(y) for y in range(years)
        ) * SECONDS_PER_DAY
        return years, seconds

    def day_tick_of(self, day_index: int) -> Optional[int]:
        if day_index < 0:
            return None
        return self.calendar.year_of_day(day_index)

    def day_tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        return self.calendar.year_bounds(index)


def thirteen_period_calendar() -> CustomCalendar:
    """A 13 x 28-day accounting calendar with a leap week every fifth
    year (synthetic drift correction, week-aligned)."""
    return CustomCalendar(
        month_lengths=[28] * 13,
        leap_days=lambda year: 7 if year % 5 == 4 else 0,
        period_years=5,
    )


def retail_445_calendar() -> CustomCalendar:
    """The 4-4-5 retail calendar: quarters of 4+4+5 weeks."""
    weeks = [4, 4, 5] * 4
    return CustomCalendar(
        month_lengths=[w * 7 for w in weeks],
        leap_days=lambda year: 7 if year % 6 == 5 else 0,
        period_years=6,
    )
