"""Granularity systems: named collections of temporal types.

A :class:`GranularitySystem` is the run-time context every higher layer
(constraint propagation, TAG matching, mining) works in: it owns the
types, their size tables, and the cached pairwise conversion-feasibility
relation.  The paper calls this "the considered granularity system" and
assumes a primitive type (seconds here) covering all of absolute time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from . import calendar as cal
from .base import TemporalType
from .business import BusinessDayType, BusinessMonthType, BusinessWeekType
from .conversion import (
    ConversionOutcome,
    convert_interval,
    covers_prefix,
    direct_convert_interval,
)
from .convcache import ConversionCache, global_conversion_cache, new_namespace
from .normalform import build_size_table, cached_normal_form, resolve_backend
from .sizes import SizeTable

#: Conversion strategies: "direct" scans actual boundary positions
#: (tight, the production default); "figure3" is the paper's table-based
#: appendix A.1 algorithm (kept for fidelity experiments).
CONVERSION_MODES = ("direct", "figure3")


class GranularitySystem:
    """A registry of temporal types with cached tables and conversions."""

    def __init__(
        self,
        types: Iterable[TemporalType] = (),
        horizon: int = 512,
        conversion_mode: str = "direct",
        cache: Optional[ConversionCache] = None,
        sizetable_backend: Optional[str] = None,
    ):
        if conversion_mode not in CONVERSION_MODES:
            raise ValueError(
                "conversion_mode must be one of %r" % (CONVERSION_MODES,)
            )
        self.horizon = horizon
        self.conversion_mode = conversion_mode
        # None defers to REPRO_SIZETABLE (resolved when each table is
        # built, so env changes between table constructions are seen).
        self.sizetable_backend = sizetable_backend
        self._types: Dict[str, TemporalType] = {}
        self._tables: Dict[str, SizeTable] = {}
        self._covers: Dict[Tuple[str, str], bool] = {}
        # Conversion outcomes live in a process-wide ConversionCache
        # shared across propagation, mining and TAG construction; each
        # system gets its own key namespace because equal labels may
        # name behaviourally different types across systems.
        self._cache = cache if cache is not None else global_conversion_cache()
        self._cache_namespace = new_namespace()
        for ttype in types:
            self.register(ttype)

    @property
    def conversion_cache(self) -> ConversionCache:
        """The cache this system stores conversion outcomes in."""
        return self._cache

    @property
    def cache_namespace(self) -> int:
        """This system's key namespace in the conversion cache.

        A process-local token: the parallel engine exports entries for
        this namespace to warm workers and rebinds them on import.
        """
        return self._cache_namespace

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(self, ttype: TemporalType) -> TemporalType:
        """Add a type; re-registering an equivalent type is a no-op.

        Two types with the same label must agree behaviourally (checked
        on a sample of leading ticks); otherwise registration is
        rejected to keep labels unambiguous.
        """
        existing = self._types.get(ttype.label)
        if existing is not None:
            if existing is ttype or _same_prefix(existing, ttype):
                return existing
            raise ValueError(
                "label %r already registered with a different type"
                % (ttype.label,)
            )
        self._types[ttype.label] = ttype
        return ttype

    def get(self, label: str) -> TemporalType:
        """Look up a type by label; raises KeyError when unknown."""
        return self._types[label]

    def __contains__(self, label: str) -> bool:
        return label in self._types

    def labels(self) -> List[str]:
        """All registered labels, in registration order."""
        return list(self._types)

    def resolve(self, ttype_or_label) -> TemporalType:
        """Accept either a label or a type (registering the latter)."""
        if isinstance(ttype_or_label, str):
            return self.get(ttype_or_label)
        if isinstance(ttype_or_label, TemporalType):
            return self.register(ttype_or_label)
        raise TypeError(
            "expected a TemporalType or label, got %r" % (ttype_or_label,)
        )

    # ------------------------------------------------------------------
    # Tables and conversions
    # ------------------------------------------------------------------
    def table(self, ttype_or_label) -> SizeTable:
        """The (cached) size table of a registered type.

        The backend follows ``sizetable_backend`` (or the
        ``REPRO_SIZETABLE`` environment knob when unset): ``compiled``
        tables are built from the type's periodic normal form, fetched
        from the conversion cache when a warmed worker already holds it
        and cached there otherwise so the parallel engine can export it.
        """
        ttype = self.resolve(ttype_or_label)
        tab = self._tables.get(ttype.label)
        if tab is None:
            backend = resolve_backend(self.sizetable_backend)
            form = None
            if backend != "sweep":
                form = self._cache.get_normal_form(
                    self._cache_namespace, ttype.label
                )
                if form is None:
                    form = cached_normal_form(ttype)
                    if form is not None:
                        self._cache.put_normal_form(
                            self._cache_namespace, ttype.label, form
                        )
            tab = build_size_table(
                ttype, horizon=self.horizon, backend=backend, form=form
            )
            self._tables[ttype.label] = tab
        return tab

    def conversion_feasible(self, source, target) -> bool:
        """Cached A.1 feasibility: does ``target`` cover ``source``?"""
        src = self.resolve(source)
        tgt = self.resolve(target)
        if src.label == tgt.label:
            return True
        key = (src.label, tgt.label)
        result = self._covers.get(key)
        if result is None:
            result = covers_prefix(tgt, src)
            self._covers[key] = result
        return result

    def convert(
        self, m: int, n: int, source, target, mode: Optional[str] = None
    ) -> ConversionOutcome:
        """Convert ``[m, n]_source`` into an implied ``[m', n']_target``.

        Returns an outcome with ``interval=None`` when the conversion is
        infeasible (target does not cover source) or yields no finite
        bound.  ``mode`` overrides the system-wide conversion strategy.
        """
        src = self.resolve(source)
        tgt = self.resolve(target)
        if src.label == tgt.label:
            return ConversionOutcome(interval=(m, n))
        mode = mode if mode is not None else self.conversion_mode
        if mode not in CONVERSION_MODES:
            raise ValueError("unknown conversion mode %r" % (mode,))
        key = (self._cache_namespace, m, n, src.label, tgt.label, mode)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if not self.conversion_feasible(src, tgt):
            outcome = ConversionOutcome(interval=None)
        elif mode == "figure3":
            outcome = convert_interval(m, n, self.table(src), self.table(tgt))
        else:
            try:
                outcome = direct_convert_interval(
                    m, n, src, tgt, self.table(src)
                )
            except ValueError:
                # Horizon too small for a direct scan of this range:
                # fall back to the sound table-based method.
                outcome = convert_interval(
                    m, n, self.table(src), self.table(tgt)
                )
        self._cache.put(key, outcome)
        return outcome

    def size_table_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-label probe counters of the instantiated size tables."""
        return {
            label: table.probe_stats()
            for label, table in sorted(self._tables.items())
        }


def _same_prefix(a: TemporalType, b: TemporalType, ticks: int = 8) -> bool:
    """Heuristic behavioural equality: identical class and leading ticks."""
    if type(a) is not type(b):
        return False
    for index in range(ticks):
        try:
            bounds_a = a.tick_bounds(index)
        except ValueError:
            bounds_a = None
        try:
            bounds_b = b.tick_bounds(index)
        except ValueError:
            bounds_b = None
        if bounds_a != bounds_b:
            return False
    return True


def standard_system(
    holidays: Iterable[int] = (),
    workdays: Tuple[int, ...] = (0, 1, 2, 3, 4),
    horizon: int = 512,
    conversion_mode: str = "direct",
    cache: Optional[ConversionCache] = None,
    sizetable_backend: Optional[str] = None,
) -> GranularitySystem:
    """The paper's working granularity system.

    Contains ``second``, ``minute``, ``hour``, ``day``, ``week``,
    ``month``, ``year`` plus the business types ``b-day``, ``b-week``
    and ``business-month`` built over the given workday pattern and
    holiday list (day indices).
    """
    bday = BusinessDayType(workdays=workdays, holidays=holidays)
    system = GranularitySystem(
        [
            cal.second(),
            cal.minute(),
            cal.hour(),
            cal.day(),
            cal.week(),
            cal.month(),
            cal.year(),
            bday,
            BusinessWeekType(bday=bday),
            BusinessMonthType(bday=bday),
        ],
        horizon=horizon,
        conversion_mode=conversion_mode,
        cache=cache,
        sizetable_backend=sizetable_backend,
    )
    return system
