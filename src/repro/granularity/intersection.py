"""Intersection of temporal types: common refinements.

A tick of ``intersection(a, b)`` is a non-empty overlap between a tick
of ``a`` and a tick of ``b`` (restricted to the instants both cover).
The flagship use is **business hours**: intersecting ``b-day`` with a
daily 09:00-17:00 window yields one tick per working day's office
hours - a granularity none of the primitive constructors express.

Tick enumeration walks both boundary streams in order (a merge scan),
caching discovered ticks; lookups beyond the scan extend it on demand,
bounded by ``max_ticks``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Tuple

from .base import TemporalType
from .periodic import PeriodicPatternType


class IntersectionType(TemporalType):
    """Pairwise-overlap refinement of two temporal types.

    For types with interior gaps the instant set of a tick is the set
    intersection; ``tick_of`` requires coverage by *both* operands.
    Requires both operands to keep producing ticks (the scan stops at
    whichever exhausts first).
    """

    def __init__(
        self,
        a: TemporalType,
        b: TemporalType,
        label: Optional[str] = None,
        max_ticks: int = 1_000_000,
    ):
        self.a = a
        self.b = b
        self.label = (
            label if label is not None else "%s*%s" % (a.label, b.label)
        )
        self.max_ticks = max_ticks
        self.alignment_seconds = max(
            1, _gcd(a.alignment_seconds, b.alignment_seconds)
        )
        self.total = a.total and b.total
        # Discovered ticks: parallel lists of (a index, b index) pairs
        # and their [first, last] second bounds, in time order.
        self._pairs: List[Tuple[int, int]] = []
        self._firsts: List[int] = []
        self._lasts: List[int] = []
        self._next_a = 0
        self._next_b = 0
        self._exhausted = False
        self._period_info_cache = False  # False = not computed yet

    #: Overlap streams wider than this per lcm window get no declared
    #: period (the bounded scan would be as bad as the sweep).
    _PERIOD_SCAN_BOUND = 1 << 20

    def period_info(self):
        """Exact period when both operands declare one.

        The joint boundary configuration repeats every ``lcm(Sa, Sb)``
        seconds, and because each operand is periodic from *its* tick
        0, the overlap stream is periodic from tick 0 too (instants
        before both operands start contain no overlaps at all).  The
        tick count per lcm window is counted by one bounded merge scan
        and cached; None when an operand declares no period, the
        estimated scan exceeds the bound, or the operands exhaust
        before one full window.
        """
        if self._period_info_cache is not False:
            return self._period_info_cache
        info = None
        info_a = getattr(self.a, "period_info", None)
        info_a = info_a() if callable(info_a) else None
        info_b = getattr(self.b, "period_info", None)
        info_b = info_b() if callable(info_b) else None
        if info_a is not None and info_b is not None:
            ticks_a, seconds_a = info_a
            ticks_b, seconds_b = info_b
            window = seconds_a * seconds_b // _gcd(seconds_a, seconds_b)
            estimate = ticks_a * (window // seconds_a) + ticks_b * (
                window // seconds_b
            )
            if 0 < estimate <= min(self._PERIOD_SCAN_BOUND, self.max_ticks):
                try:
                    first0 = self.tick_bounds(0)[0]
                except ValueError:
                    first0 = None
                if first0 is not None:
                    self._ensure_time(first0 + window)
                    if self._lasts and self._lasts[-1] >= first0 + window:
                        count = bisect_right(self._firsts, first0 + window - 1)
                        info = (count, window)
        self._period_info_cache = info
        return info

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def _extend(self) -> bool:
        """Discover the next overlapping pair; False when exhausted."""
        if self._exhausted or len(self._pairs) >= self.max_ticks:
            return False
        while True:
            try:
                first_a, last_a = self.a.tick_bounds(self._next_a)
                first_b, last_b = self.b.tick_bounds(self._next_b)
            except ValueError:
                self._exhausted = True
                return False
            lo = max(first_a, first_b)
            hi = min(last_a, last_b)
            advance_a = last_a <= last_b
            advance_b = last_b <= last_a
            if lo <= hi:
                pair = (self._next_a, self._next_b)
                if advance_a:
                    self._next_a += 1
                if advance_b:
                    self._next_b += 1
                self._pairs.append(pair)
                self._firsts.append(lo)
                self._lasts.append(hi)
                return True
            if advance_a:
                self._next_a += 1
            if advance_b:
                self._next_b += 1

    def _ensure_time(self, second: int) -> None:
        """Scan until the discovered ticks pass ``second``."""
        while (not self._lasts or self._lasts[-1] < second) and self._extend():
            pass

    def _ensure_count(self, count: int) -> None:
        while len(self._pairs) < count and self._extend():
            pass

    # ------------------------------------------------------------------
    # TemporalType interface
    # ------------------------------------------------------------------
    def tick_of(self, second: int) -> Optional[int]:
        if second < 0:
            return None
        self._ensure_time(second)
        slot = bisect_right(self._firsts, second) - 1
        if slot < 0 or self._lasts[slot] < second:
            return None
        index_a, index_b = self._pairs[slot]
        # Within the bounds overlap, but the instant must belong to
        # both ticks (operands may have interior gaps).
        if self.a.tick_of(second) != index_a:
            return None
        if self.b.tick_of(second) != index_b:
            return None
        return slot

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        self._ensure_count(index + 1)
        if index >= len(self._pairs):
            raise ValueError(
                "tick %d of %r not found (operands exhausted or "
                "max_ticks reached)" % (index, self.label)
            )
        return self._firsts[index], self._lasts[index]


def _gcd(a: int, b: int) -> int:
    from math import gcd

    return gcd(a, b)


def business_hours(
    bday: TemporalType,
    start_hour: int = 9,
    end_hour: int = 17,
    label: Optional[str] = None,
) -> IntersectionType:
    """Office hours: working days intersected with a daily time window.

    One tick per working day, covering ``start_hour:00`` to
    ``end_hour:00`` (exclusive) of that day.
    """
    if not 0 <= start_hour < end_hour <= 24:
        raise ValueError("need 0 <= start < end <= 24")
    window = PeriodicPatternType(
        "daily-%02d-%02d" % (start_hour, end_hour),
        cycle_seconds=86400,
        segments=[(start_hour * 3600, (end_hour - start_hour) * 3600)],
    )
    return IntersectionType(
        bday,
        window,
        label=label
        if label is not None
        else "business-hours-%02d-%02d" % (start_hour, end_hour),
    )
