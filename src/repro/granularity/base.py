"""Temporal types (time granularities) over a discrete absolute timeline.

A *temporal type* in the paper is a mapping ``mu`` from tick indices to
sets of absolute time instants such that (1) non-empty ticks are strictly
ordered and (2) once a tick is empty, all later ticks are empty.  This
module implements the discrete-time instantiation the paper notes all
results carry over to: the absolute timeline is the non-negative integers
(*seconds* since the epoch of :mod:`repro.granularity.gregorian`), and a
temporal type is described by two total functions:

``tick_of(second)``
    the index of the tick covering a second, or ``None`` when the second
    falls into a *gap* of the type (e.g. a Saturday for ``business-day``)
    — the paper's "undefined" case of the conversion operator
    ``ceil(z, mu)``;

``tick_bounds(index)``
    the first and last second (inclusive) of a tick.  Ticks may have
    internal gaps (e.g. a ``business-month`` tick excludes its weekends);
    the bounds are the min and max instants of the tick's instant set.

Tick indices are 0-based (the paper's positive integers shifted by one).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

from .gregorian import SECONDS_PER_DAY


class TemporalType(ABC):
    """Abstract base class of all temporal types (granularities).

    Concrete types are immutable and hashable; two types compare equal iff
    they have the same label, which the :class:`~repro.granularity.registry.
    GranularitySystem` keeps unique.
    """

    #: Human-readable unique name, e.g. ``"b-day"``.
    label: str

    #: The coarsest step (in seconds) at which this type's tick boundaries
    #: can move: 1 for second-based types, 86400 for day-based types, etc.
    #: Used by coverage checks to scan instants without visiting every
    #: second.
    alignment_seconds: int = 1

    #: True when the type covers every non-negative instant (no gaps and
    #: no phase).  Lets feasibility checks short-circuit; subclasses set
    #: it when they can guarantee totality.
    total: bool = False

    @abstractmethod
    def tick_of(self, second: int) -> Optional[int]:
        """Index of the tick covering ``second``, or None in a gap."""

    @abstractmethod
    def tick_bounds(self, index: int) -> Tuple[int, int]:
        """First and last second (inclusive) of tick ``index``.

        Raises :class:`ValueError` for negative indices.
        """

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def covers(self, second: int) -> bool:
        """Return True if ``second`` belongs to some tick of this type."""
        return self.tick_of(second) is not None

    def contains(self, index: int, second: int) -> bool:
        """Return True if ``second`` is an instant of tick ``index``.

        For types with internal tick gaps this is more precise than a
        bounds check: the second must also be *covered* and covered by
        this very tick.
        """
        return self.tick_of(second) == index

    def distance(self, t1: int, t2: int) -> Optional[int]:
        """Tick distance ``tick_of(t2) - tick_of(t1)``, or None.

        This is the quantity constrained by a TCG.  None is returned when
        either second is uncovered.
        """
        z1 = self.tick_of(t1)
        if z1 is None:
            return None
        z2 = self.tick_of(t2)
        if z2 is None:
            return None
        return z2 - z1

    def first_tick_at_or_after(self, second: int) -> int:
        """Index of the first tick whose instants are all >= ``second``...

        More precisely: the smallest index ``i`` with
        ``tick_bounds(i)[0] >= second``.  Used by workload generators to
        sample tick-aligned instants.
        """
        i = self.tick_of(second)
        if i is None:
            # Binary search over indices using tick_bounds.
            lo, hi = 0, 1
            while self.tick_bounds(hi)[0] < second:
                hi *= 2
            while lo < hi:
                mid = (lo + hi) // 2
                if self.tick_bounds(mid)[0] >= second:
                    hi = mid
                else:
                    lo = mid + 1
            return lo
        first, _ = self.tick_bounds(i)
        return i if first >= second else i + 1

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<%s %r>" % (type(self).__name__, self.label)

    def __str__(self) -> str:
        return self.label

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalType):
            return NotImplemented
        return self.label == other.label

    def __hash__(self) -> int:
        return hash(self.label)


class UniformType(TemporalType):
    """A type whose ticks all span the same number of seconds.

    Covers ``second``, ``minute``, ``hour``, ``day`` and ``week`` (our
    epoch day 0 is a Monday, so weeks are Monday-aligned with phase 0).
    An optional ``phase`` shifts tick 0 to start at ``phase`` seconds;
    instants before the phase are uncovered, matching the paper's
    requirement that a type need not cover all of absolute time.
    """

    def __init__(self, label: str, seconds_per_tick: int, phase: int = 0):
        if seconds_per_tick <= 0:
            raise ValueError("seconds_per_tick must be positive")
        if phase < 0:
            raise ValueError("phase must be non-negative")
        self.label = label
        self.seconds_per_tick = seconds_per_tick
        self.phase = phase
        self.alignment_seconds = _alignment_for(seconds_per_tick)
        self.total = phase == 0

    def tick_of(self, second: int) -> Optional[int]:
        if second < self.phase:
            return None
        return (second - self.phase) // self.seconds_per_tick

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        first = self.phase + index * self.seconds_per_tick
        return first, first + self.seconds_per_tick - 1

    def period_info(self) -> Tuple[int, int]:
        """Uniform types repeat trivially: one tick per period."""
        return 1, self.seconds_per_tick


def _alignment_for(seconds_per_tick: int) -> int:
    """Pick the natural boundary alignment for a uniform tick length."""
    for unit in (SECONDS_PER_DAY, 3600, 60):
        if seconds_per_tick % unit == 0:
            return unit
    return 1


class DayBasedType(TemporalType):
    """Base class for types whose ticks are unions of whole days.

    Subclasses implement the mapping between *day indices* and tick
    indices; this class lifts them to seconds.
    """

    alignment_seconds = SECONDS_PER_DAY

    @abstractmethod
    def day_tick_of(self, day_index: int) -> Optional[int]:
        """Tick index covering a day, or None if the day is a gap."""

    @abstractmethod
    def day_tick_bounds(self, index: int) -> Tuple[int, int]:
        """First and last day index (inclusive) of a tick."""

    def tick_of(self, second: int) -> Optional[int]:
        if second < 0:
            return None
        return self.day_tick_of(second // SECONDS_PER_DAY)

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        first_day, last_day = self.day_tick_bounds(index)
        return (
            first_day * SECONDS_PER_DAY,
            (last_day + 1) * SECONDS_PER_DAY - 1,
        )
