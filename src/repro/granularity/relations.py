"""Relationships between granularities (the classical lattice notions).

The granularity literature the paper builds on (and the authors' later
glossary work) organises temporal types by structural relationships.
This module decides the standard ones *empirically over a prefix* -
exact for the (eventually) periodic types the library ships when the
prefix covers a period, which the defaults do:

``finer_than(a, b)``
    every tick of ``a`` is contained in some tick of ``b``
    (e.g. day is finer than month; b-day is finer than week);

``groups_into(a, b)``
    every tick of ``b`` is a union of ticks of ``a``
    (e.g. day groups into week; minute groups into hour);

``partitions(a, b)``
    ``a`` groups into ``b`` and ``a`` covers exactly the instants
    ``b`` covers (e.g. month partitions year);

``subgranularity(a, b)``
    every tick of ``a`` *is* a tick of ``b`` (same instants), e.g.
    b-day's ticks are all ticks of day.
"""

from __future__ import annotations

from typing import Optional

from .base import TemporalType


def _prefix_ticks(ttype: TemporalType, count: int):
    """Yield (index, first, last) for up to ``count`` leading ticks."""
    for index in range(count):
        try:
            first, last = ttype.tick_bounds(index)
        except ValueError:
            return
        yield index, first, last


def finer_than(
    a: TemporalType, b: TemporalType, ticks: int = 256
) -> bool:
    """Is every tick of ``a`` contained in a single tick of ``b``?

    Checked on the leading ``ticks`` ticks of ``a``: the covering tick
    of ``b`` must exist and be the same at both ends of each ``a`` tick
    (sufficient for contiguous-tick types; types with interior gaps are
    additionally probed at their alignment stride).
    """
    stride = max(1, min(a.alignment_seconds, b.alignment_seconds))
    for index, first, last in _prefix_ticks(a, ticks):
        target = b.tick_of(first)
        if target is None:
            return False
        instant = first
        while instant <= last:
            if a.tick_of(instant) == index and b.tick_of(instant) != target:
                return False
            instant += stride
        if a.tick_of(last) == index and b.tick_of(last) != target:
            return False
    return True


def groups_into(
    a: TemporalType, b: TemporalType, ticks: int = 64
) -> bool:
    """Is every tick of ``b`` a union of ticks of ``a``?

    Checked on the leading ``ticks`` ticks of ``b``: each instant of
    the ``b`` tick must be covered by ``a`` (at ``a``'s alignment
    stride), and the ``a`` ticks at the boundaries must not leak out.
    """
    stride = max(1, min(a.alignment_seconds, b.alignment_seconds))
    for index, first, last in _prefix_ticks(b, ticks):
        instant = first
        while instant <= last:
            if b.tick_of(instant) == index:
                inner = a.tick_of(instant)
                if inner is None:
                    return False
                inner_first, inner_last = a.tick_bounds(inner)
                if b.tick_of(inner_first) != index or b.tick_of(inner_last) != index:
                    return False
            instant += stride
        if b.tick_of(last) == index and a.tick_of(last) is None:
            return False
    return True


def partitions(
    a: TemporalType, b: TemporalType, ticks: int = 64
) -> bool:
    """Does ``a`` group into ``b`` while covering the same instants?

    ``groups_into`` plus the converse coverage: every tick of ``a``
    (within the span of the checked ``b`` ticks) lies inside some tick
    of ``b``.
    """
    if not groups_into(a, b, ticks=ticks):
        return False
    try:
        _, horizon = b.tick_bounds(min(ticks, 8) - 1)
    except ValueError:
        return True
    index = 0
    while True:
        try:
            first, last = a.tick_bounds(index)
        except ValueError:
            return True
        if first > horizon:
            return True
        if b.tick_of(first) is None or b.tick_of(last) is None:
            return False
        index += 1


def subgranularity(
    a: TemporalType, b: TemporalType, ticks: int = 256
) -> bool:
    """Is every tick of ``a`` exactly some tick of ``b``?

    E.g. every b-day tick is a day tick.  Checked on leading ticks.
    """
    for _, first, last in _prefix_ticks(a, ticks):
        target = b.tick_of(first)
        if target is None:
            return False
        if b.tick_bounds(target) != (first, last):
            return False
    return True
