"""Finitely-represented periodic temporal types (paper Section 6).

The paper notes that "a real system can only treat ... infinite temporal
types that have finite representations" and points at symbolic periodic
representations (Niezette-Stevenne) and calendar packages (Soo).  This
module provides that representation: a :class:`PeriodicPatternType` is
defined by a repeating *cycle* of tick segments, each tick a contiguous
run of seconds, with gaps wherever the cycle doesn't cover.

Examples expressible this way: shifts (8h on / 16h off), lecture slots,
pharmacy opening hours, maintenance windows - plus every uniform type
and (holiday-free) business-day pattern.

Because the period is explicit, :meth:`period_info` lets
:class:`~repro.granularity.sizes.SizeTable` treat scanned values as
exact rather than horizon-heuristic.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

from .base import TemporalType


class PeriodicPatternType(TemporalType):
    """A temporal type from a repeating cycle of tick segments.

    Parameters
    ----------
    label:
        Unique name.
    cycle_seconds:
        Length of one full cycle.
    segments:
        ``(offset, length)`` pairs within the cycle, one tick each,
        non-overlapping and in increasing offset order, with
        ``offset + length <= cycle_seconds``.
    phase:
        Absolute second at which cycle 0 begins (seconds before the
        phase are gaps).
    """

    def __init__(
        self,
        label: str,
        cycle_seconds: int,
        segments: Sequence[Tuple[int, int]],
        phase: int = 0,
    ):
        if cycle_seconds <= 0:
            raise ValueError("cycle_seconds must be positive")
        if phase < 0:
            raise ValueError("phase must be non-negative")
        if not segments:
            raise ValueError("at least one segment is required")
        previous_end = 0
        for offset, length in segments:
            if length <= 0:
                raise ValueError("segment lengths must be positive")
            if offset < previous_end:
                raise ValueError("segments must be disjoint and ordered")
            previous_end = offset + length
        if previous_end > cycle_seconds:
            raise ValueError("segments exceed the cycle length")
        self.label = label
        self.cycle_seconds = cycle_seconds
        self.segments = tuple((int(o), int(l)) for o, l in segments)
        self.phase = phase
        self._offsets = [o for o, _ in self.segments]
        self.alignment_seconds = _gcd_all(
            [cycle_seconds, phase]
            + [o for o, _ in self.segments]
            + [l for _, l in self.segments]
        )
        self.total = (
            phase == 0
            and len(self.segments) == 1
            and self.segments[0] == (0, cycle_seconds)
        )

    # ------------------------------------------------------------------
    def tick_of(self, second: int) -> Optional[int]:
        if second < self.phase:
            return None
        position = second - self.phase
        cycle, within = divmod(position, self.cycle_seconds)
        slot = bisect_right(self._offsets, within) - 1
        if slot < 0:
            return None
        offset, length = self.segments[slot]
        if within >= offset + length:
            return None
        return cycle * len(self.segments) + slot

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        cycle, slot = divmod(index, len(self.segments))
        offset, length = self.segments[slot]
        first = self.phase + cycle * self.cycle_seconds + offset
        return first, first + length - 1

    def period_info(self) -> Tuple[int, int]:
        """(ticks per period, seconds per period) - the type repeats
        exactly with this period after the phase."""
        return len(self.segments), self.cycle_seconds


def _gcd_all(values: List[int]) -> int:
    from math import gcd

    result = 0
    for value in values:
        result = gcd(result, value)
    return max(result, 1)


def shifts(
    label: str,
    on_seconds: int,
    off_seconds: int,
    phase: int = 0,
) -> PeriodicPatternType:
    """An on/off duty-cycle type (one tick per on-period)."""
    return PeriodicPatternType(
        label,
        cycle_seconds=on_seconds + off_seconds,
        segments=[(0, on_seconds)],
        phase=phase,
    )


def weekly_slots(
    label: str,
    slots: Sequence[Tuple[int, int, int]],
) -> PeriodicPatternType:
    """A weekly schedule: ``(weekday, start_hour, hours)`` slots.

    Weekday 0 is Monday (the epoch day).  One tick per slot per week.
    """
    segments = []
    for weekday, start_hour, hours in slots:
        if not 0 <= weekday <= 6:
            raise ValueError("weekday must be 0..6")
        if not 0 <= start_hour < 24 or hours <= 0 or start_hour + hours > 24:
            raise ValueError("slot must fit within its day")
        segments.append(
            (weekday * 86400 + start_hour * 3600, hours * 3600)
        )
    segments.sort()
    return PeriodicPatternType(label, 7 * 86400, segments)
