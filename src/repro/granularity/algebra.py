"""The calendar algebra: compositional lowering to minimal normal forms.

This module implements the operator layer of Bettini & Mascetti's
"Mapping Calendar Expressions to Minimal Periodic Sets" (PAPERS.md, the
same authors as the source paper) on top of
:class:`~repro.granularity.normalform.PeriodicNormalForm`:

* **Closed operators on normal forms** - :func:`nf_intersect`,
  :func:`nf_union`, :func:`nf_select`, :func:`nf_group`,
  :func:`nf_shift` and :func:`nf_nth_within` each take compiled operand
  forms, take the period ``lcm`` (the common refinement), enumerate a
  bounded window of result ticks, and re-fold the stream into a new
  eventually-periodic form via :func:`eventually_periodic_form`.

* **Direct lowerings** for the stock types the single-period scan
  cannot reach: Gregorian months/years via the 400-year (146097-day)
  cycle - numpy-vectorized boundary generation with a pure-python
  fallback under ``REPRO_NO_NUMPY`` - and the business calendars as
  week-periodic forms overlaid with the finite holiday exception set
  folded into the aperiodic prefix.

* A **minimization pass** (:func:`minimize_form`): the smallest period
  divisor that reproduces the boundary arrays, then the shortest
  aperiodic prefix (trailing prefix ticks that already obey the
  recurrence rotate into the period), so compiled forms are canonical
  and memo/cache keys stay small.

Every lowering is budgeted by ``REPRO_NF_MAX_PERIOD``
(:func:`~repro.granularity.normalform.nf_max_period`): an over-budget
expression raises :class:`~repro.granularity.normalform.NormalFormError`
with ``reason="over-budget"`` and the type falls back to the sweep
backend (counted by ``repro_sizetable_fallback_total{reason}``).
Lowerings run under a ``sizetable.algebra`` span; minimizations that
shrink a form count into ``repro_sizetable_minimized_total``.
"""

from __future__ import annotations

import os
from math import gcd
from typing import Callable, List, Optional, Tuple

from ..obs import counter, span
from . import gregorian as greg
from .base import TemporalType
from .business import BusinessDayType, BusinessMonthType, BusinessWeekType
from .calendar import MonthType, YearType
from .customcal import CustomMonthType, CustomYearType
from .combinators import (
    FilteredType,
    GroupedType,
    NthSubgranuleType,
    ShiftedType,
    UnionType,
)
from .intersection import IntersectionType
from .normalform import (
    NormalFormError,
    PeriodicNormalForm,
    _covers_whole_bounds,
    cached_normal_form,
    nf_max_period,
)

try:  # pragma: no cover - exercised via the no-numpy CI job
    if os.environ.get("REPRO_NO_NUMPY"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in dev envs
    _np = None

_MINIMIZED = counter(
    "repro_sizetable_minimized_total",
    "Normal forms the minimization pass shrank (period divisor found or "
    "prefix ticks absorbed into the period)",
)

Bounds = Tuple[int, int]


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)


def _divisors(n: int) -> List[int]:
    """All divisors of ``n`` in ascending order."""
    small: List[int] = []
    large: List[int] = []
    i = 1
    while i * i <= n:
        if n % i == 0:
            small.append(i)
            if i != n // i:
                large.append(n // i)
        i += 1
    large.reverse()
    return small + large


# ----------------------------------------------------------------------
# Minimization
# ----------------------------------------------------------------------
def _reduce_period(
    form: PeriodicNormalForm,
) -> Tuple[int, int, Tuple[int, ...], Tuple[int, ...]]:
    """Smallest period divisor reproducing the boundary arrays.

    Returns ``(P, S, firsts, lasts)`` - unchanged when no proper
    divisor works.  A divisor ``d`` is valid iff ``S * d`` is a whole
    number of seconds per ``d`` ticks and both boundary arrays are
    slice-shift-invariant by ``d`` (which implies the cyclic wrap too,
    because the slice condition chains across the whole array).
    """
    P, S = form.period_ticks, form.period_seconds
    firsts, lasts = form.firsts, form.lasts
    for d in _divisors(P):
        if d == P:
            break
        if (S * d) % P:
            continue
        Sd = S * d // P
        if _np is not None and P >= 64:
            nf = _np.asarray(firsts, dtype=object if max(
                abs(firsts[0]), lasts[-1]
            ) >= 2 ** 62 else _np.int64)
            nl = _np.asarray(lasts, dtype=nf.dtype)
            ok = bool(
                (nf[d:] == nf[:-d] + Sd).all()
                and (nl[d:] == nl[:-d] + Sd).all()
            )
        else:
            ok = all(
                firsts[i + d] == firsts[i] + Sd
                and lasts[i + d] == lasts[i] + Sd
                for i in range(P - d)
            )
        if ok:
            return d, Sd, firsts[:d], lasts[:d]
    return P, S, firsts, lasts


def minimize_form(form: PeriodicNormalForm) -> PeriodicNormalForm:
    """Canonicalize: smallest period divisor, shortest aperiodic prefix.

    Idempotent; returns the input unchanged (same object) when it is
    already minimal.  A shrunk form records the original
    ``(period_ticks, prefix_ticks)`` in ``minimized_from`` and counts
    into ``repro_sizetable_minimized_total``.
    """
    P0, B0 = form.period_ticks, form.prefix_ticks
    P, S, firsts, lasts = _reduce_period(form)
    # Absorb trailing prefix ticks that already obey the (reduced)
    # recurrence: prefix tick B - j is absorbable when it equals the
    # virtual periodic tick at offset -j (phase (-j) mod P, shifted by
    # floor(-j / P) periods).
    prefix = list(zip(form.prefix_firsts, form.prefix_lasts))
    absorbed = 0
    while absorbed < len(prefix):
        j = absorbed + 1
        q, r = divmod(-j, P)
        expected = (firsts[r] + q * S, lasts[r] + q * S)
        if prefix[len(prefix) - j] != expected:
            break
        absorbed += 1
    if P == P0 and absorbed == 0:
        return form
    if absorbed:
        # Re-anchor the periodic part ``absorbed`` ticks earlier; the
        # new arrays are the bounds of ticks B - absorbed .. B - 1 then
        # the rotated remainder, all expressed via the old arrays.
        new_firsts = []
        new_lasts = []
        for i in range(P):
            q, r = divmod(i - absorbed, P)
            new_firsts.append(firsts[r] + q * S)
            new_lasts.append(lasts[r] + q * S)
        firsts = tuple(new_firsts)
        lasts = tuple(new_lasts)
        prefix = prefix[: len(prefix) - absorbed]
    minimized = PeriodicNormalForm(
        label=form.label,
        period_ticks=P,
        period_seconds=S,
        firsts=tuple(int(f) for f in firsts),
        lasts=tuple(int(l) for l in lasts),
        prefix_firsts=tuple(int(f) for f, _ in prefix),
        prefix_lasts=tuple(int(l) for _, l in prefix),
        exact_cover=form.exact_cover,
        source=form.source,
        rule=form.rule,
        minimized_from=form.minimized_from or (P0, B0),
    )
    _MINIMIZED.inc()
    return minimized


# ----------------------------------------------------------------------
# Eventually-periodic folding (shared by every enumerating lowering)
# ----------------------------------------------------------------------
def eventually_periodic_form(
    label: str,
    bounds: List[Bounds],
    period_ticks: int,
    period_seconds: int,
    *,
    exact_cover: bool,
    rule: str,
) -> PeriodicNormalForm:
    """Fold an enumerated tick stream into a minimal periodic form.

    ``bounds`` must hold the bounds of ticks ``0 .. W-1`` with ``W``
    at least ``prefix + 2 * period_ticks``: the minimal aperiodic
    prefix is found by scanning the recurrence
    ``bounds[j + P] == bounds[j] + S`` backwards from the end, and one
    full period beyond the prefix must verify or the stream is
    rejected as aperiodic.  The result is minimized before returning.
    """
    P, S = period_ticks, period_seconds
    W = len(bounds)
    if P < 1:
        raise NormalFormError(
            "operator result %r has no ticks per period" % (label,),
            reason="empty",
        )
    if P > nf_max_period():
        raise NormalFormError(
            "period of %r exceeds the compile budget (%d ticks)"
            % (label, P),
            reason="over-budget",
        )
    if W < 2 * P + 1:
        raise NormalFormError(
            "enumerated only %d ticks of %r, need %d to verify the "
            "period" % (W, label, 2 * P + 1),
            reason="verification",
        )
    prefix_len = 0
    for j in range(W - P - 1, -1, -1):
        first, last = bounds[j]
        if bounds[j + P] != (first + S, last + S):
            prefix_len = j + 1
            break
    if W - prefix_len < 2 * P:
        raise NormalFormError(
            "tick stream of %r is not periodic within the enumerated "
            "window (prefix %d of %d ticks)" % (label, prefix_len, W),
            reason="aperiodic",
        )
    if prefix_len + P > nf_max_period():
        raise NormalFormError(
            "form of %r exceeds the compile budget (%d prefix + %d "
            "period ticks)" % (label, prefix_len, P),
            reason="over-budget",
        )
    form = PeriodicNormalForm(
        label=label,
        period_ticks=P,
        period_seconds=S,
        firsts=tuple(int(f) for f, _ in bounds[prefix_len : prefix_len + P]),
        lasts=tuple(int(l) for _, l in bounds[prefix_len : prefix_len + P]),
        prefix_firsts=tuple(int(f) for f, _ in bounds[:prefix_len]),
        prefix_lasts=tuple(int(l) for _, l in bounds[:prefix_len]),
        exact_cover=exact_cover,
        source="algebra",
        rule=rule,
    )
    return minimize_form(form)


def _operand_form(ttype: TemporalType) -> PeriodicNormalForm:
    """Compile an operand, or fail the whole expression with a reason."""
    form = cached_normal_form(ttype)
    if form is None:
        raise NormalFormError(
            "operand %r does not lower to a periodic normal form"
            % (ttype.label,),
            reason="operand",
        )
    return form


def _form_is_contiguous(form: PeriodicNormalForm) -> bool:
    """No gap anywhere after the first tick's start."""
    if form.gap_runs:
        return False
    chain = list(zip(form.prefix_firsts, form.prefix_lasts))
    chain += [(form.firsts[0], form.lasts[0])]
    return all(
        chain[i][1] + 1 == chain[i + 1][0] for i in range(len(chain) - 1)
    )


# ----------------------------------------------------------------------
# Gregorian 400-year-cycle lowerings
# ----------------------------------------------------------------------
def _cycle_lengths(kind: str):
    """Vectorized month/year day-length arrays for one 400-year cycle.

    numpy builds the table by tiling the common-year lengths and adding
    the leap-day mask; the pure-python fallback (and the differential
    reference for the vectorized path) is
    :func:`repro.granularity.gregorian.cycle_month_lengths`.
    """
    if _np is None:
        if kind == "months":
            return list(greg.cycle_month_lengths())
        return list(greg.cycle_year_lengths())
    years = _np.arange(
        greg.EPOCH_YEAR, greg.EPOCH_YEAR + 400, dtype=_np.int64
    )
    leap = (years % 4 == 0) & ((years % 100 != 0) | (years % 400 == 0))
    if kind == "months":
        lengths = _np.tile(
            _np.asarray(greg.DAYS_IN_MONTH_COMMON, dtype=_np.int64),
            (400, 1),
        )
        lengths[:, 1] += leap
        return lengths.reshape(-1)
    return 365 + leap.astype(_np.int64)


def _cycle_bounds(kind: str, label: str) -> List[Bounds]:
    """Second-domain tick bounds of one full cycle plus the wrap tick."""
    lengths = _cycle_lengths(kind)
    day = greg.SECONDS_PER_DAY
    total = 0
    bounds: List[Bounds] = []
    for length in lengths:
        length = int(length)
        bounds.append((total * day, (total + length) * day - 1))
        total += length
    if total != greg.DAYS_PER_400_YEARS:
        raise NormalFormError(
            "cycle generator for %r produced %d days, expected %d"
            % (label, total, greg.DAYS_PER_400_YEARS),
            reason="verification",
        )
    return bounds


def _lower_cycle(
    ttype: TemporalType,
    kind: str,
    period_ticks: int,
    reference: Callable[[int], Bounds],
) -> PeriodicNormalForm:
    """Shared month/year lowering: one generated cycle, spot-checked."""
    if period_ticks > nf_max_period():
        raise NormalFormError(
            "period of %r exceeds the compile budget (%d ticks)"
            % (ttype.label, period_ticks),
            reason="over-budget",
        )
    bounds = _cycle_bounds(kind, ttype.label)
    day = greg.SECONDS_PER_DAY
    # Spot-check the generator against the day-arithmetic reference at
    # the cycle edges and an interior leap boundary.
    for index in (0, 1, period_ticks // 2, period_ticks - 1):
        first_day, last_day = reference(index)
        expected = (first_day * day, (last_day + 1) * day - 1)
        if bounds[index] != expected:
            raise NormalFormError(
                "cycle generator for %r disagrees with the calendar at "
                "tick %d: %r != %r"
                % (ttype.label, index, bounds[index], expected),
                reason="verification",
            )
    form = PeriodicNormalForm(
        label=ttype.label,
        period_ticks=period_ticks,
        period_seconds=greg.DAYS_PER_400_YEARS * day,
        firsts=tuple(f for f, _ in bounds),
        lasts=tuple(l for _, l in bounds),
        exact_cover=True,
        source="algebra",
        rule="gregorian-cycle",
    )
    return minimize_form(form)


def _lower_month(ttype: MonthType) -> PeriodicNormalForm:
    return _lower_cycle(
        ttype, "months", greg.MONTHS_PER_400_YEARS, greg.month_bounds
    )


def _lower_year(ttype: YearType) -> PeriodicNormalForm:
    return _lower_cycle(ttype, "years", 400, greg.year_bounds)


# ----------------------------------------------------------------------
# Custom calendars with undeclared leap cycles
# ----------------------------------------------------------------------
def _lower_custom(ttype) -> Optional[PeriodicNormalForm]:
    """Infer and verify the leap cycle of an undeclared custom calendar.

    Calendars that declare ``period_years`` lower by the period scan
    already; this rule only fires for undeclared ones, inferring the
    cycle from the per-year day counts and letting
    :func:`eventually_periodic_form`'s recurrence check reject a wrong
    inference (an adversarial leap rule that breaks past the detection
    window fails with ``reason="aperiodic"`` rather than compiling a
    wrong form).
    """
    calendar = ttype.calendar
    if calendar.period_years is not None:
        return None
    years = calendar.detect_period_years()
    if years is None:
        raise NormalFormError(
            "calendar of %r has no leap cycle within the detection "
            "window" % (ttype.label,),
            reason="no-period",
        )
    if isinstance(ttype, CustomMonthType):
        P = years * calendar.months_per_year()
    else:
        P = years
    if 2 * P + 1 > nf_max_period():
        raise NormalFormError(
            "inferred period of %r exceeds the compile budget (%d "
            "ticks)" % (ttype.label, P),
            reason="over-budget",
        )
    S = sum(calendar.days_in_year(y) for y in range(years)) * (
        greg.SECONDS_PER_DAY
    )
    bounds = [ttype.tick_bounds(i) for i in range(2 * P + 1)]
    return eventually_periodic_form(
        ttype.label,
        bounds,
        P,
        S,
        exact_cover=_covers_whole_bounds(ttype),
        rule="custom-cycle",
    )


# ----------------------------------------------------------------------
# Business-calendar overlays
# ----------------------------------------------------------------------
def _lower_business_day(ttype: BusinessDayType) -> PeriodicNormalForm:
    """Weekly-periodic pattern with holidays folded into the prefix.

    Only reached when the holiday set is non-empty (a holiday-free
    business day declares ``period_info`` and lowers by the scan):
    enumerating pattern workdays in day order while skipping holidays
    yields exactly the type's tick sequence, aperiodic until the last
    holiday and weekly-periodic beyond it.
    """
    per_week = len(ttype.workdays)
    week_seconds = 7 * greg.SECONDS_PER_DAY
    day = greg.SECONDS_PER_DAY
    cutoff = ttype.holidays[-1]
    estimate = (cutoff // 7 + 1) * per_week + 3 * per_week
    if estimate > nf_max_period():
        raise NormalFormError(
            "holiday prefix of %r exceeds the compile budget (~%d "
            "ticks)" % (ttype.label, estimate),
            reason="over-budget",
        )
    bounds: List[Bounds] = []
    needed: Optional[int] = None
    rank = 0
    while needed is None or len(bounds) < needed:
        day_index = ttype._pattern_day(rank)
        rank += 1
        if day_index not in ttype._holiday_set:
            bounds.append((day_index * day, (day_index + 1) * day - 1))
        if needed is None and day_index > cutoff:
            needed = len(bounds) + 2 * per_week + 1
    form = eventually_periodic_form(
        ttype.label,
        bounds,
        per_week,
        week_seconds,
        exact_cover=True,
        rule="business-overlay",
    )
    _spot_check(form, ttype)
    return form


def _week_window_bounds(
    bform: PeriodicNormalForm, label: str, windows: List[Bounds]
) -> List[Bounds]:
    """First/last covered instant of each window over a day-exact form."""
    bounds: List[Bounds] = []
    for start, end in windows:
        first = bform.first_covered_at_or_after(start)
        if first is None or first > end:
            raise NormalFormError(
                "a tick of %r contains no business day; the paper "
                "forbids interior empty ticks" % (label,),
                reason="empty",
            )
        last = bform.last_covered_at_or_before(end)
        bounds.append((first, last))
    return bounds


def _lower_business_week(ttype: BusinessWeekType) -> PeriodicNormalForm:
    """One tick per week, clipped to the business-day form's coverage."""
    bform = _operand_form(ttype.bday)
    week_seconds = 7 * greg.SECONDS_PER_DAY
    holidays = ttype.bday.holidays
    prefix_weeks = (holidays[-1] // 7 + 2) if holidays else 0
    count = prefix_weeks + 3
    windows = [
        (w * week_seconds, (w + 1) * week_seconds - 1) for w in range(count)
    ]
    form = eventually_periodic_form(
        ttype.label,
        _week_window_bounds(bform, ttype.label, windows),
        1,
        week_seconds,
        exact_cover=False,
        rule="business-overlay",
    )
    _spot_check(form, ttype)
    return form


def _lower_business_month(ttype: BusinessMonthType) -> PeriodicNormalForm:
    """One tick per month, clipped to the business-day form's coverage.

    Months and weeks only re-align after a full 400-year cycle
    (146097 is divisible by 7), so the period is 4800 months; the
    month windows come from the same cycle-length table as the month
    lowering, and each window costs two O(log) bisections over the
    business-day form.
    """
    bform = _operand_form(ttype.bday)
    P = greg.MONTHS_PER_400_YEARS
    if 2 * P + 1 > nf_max_period():
        raise NormalFormError(
            "period of %r exceeds the compile budget (%d ticks)"
            % (ttype.label, P),
            reason="over-budget",
        )
    day = greg.SECONDS_PER_DAY
    cycle = [int(v) for v in _cycle_lengths("months")]
    starts = [0]
    for length in cycle:
        starts.append(starts[-1] + length)
    holidays = ttype.bday.holidays
    prefix_months = (
        greg.month_index_of_day(holidays[-1]) + 2 if holidays else 0
    )
    count = prefix_months + 2 * P + 1
    windows: List[Bounds] = []
    for m in range(count):
        q, r = divmod(m, P)
        start_day = q * greg.DAYS_PER_400_YEARS + starts[r]
        end_day = q * greg.DAYS_PER_400_YEARS + starts[r + 1] - 1
        windows.append((start_day * day, (end_day + 1) * day - 1))
    form = eventually_periodic_form(
        ttype.label,
        _week_window_bounds(bform, ttype.label, windows),
        P,
        greg.DAYS_PER_400_YEARS * day,
        exact_cover=False,
        rule="business-overlay",
    )
    _spot_check(form, ttype)
    return form


def _spot_check(form: PeriodicNormalForm, ttype: TemporalType) -> None:
    """Cross-check a lowered form against the type at a few indices."""
    P = form.period_ticks
    for index in (0, form.prefix_ticks, form.prefix_ticks + P):
        if form.instant_of_tick(index) != ttype.tick_bounds(index):
            raise NormalFormError(
                "lowered form of %r disagrees with the type at tick %d"
                % (ttype.label, index),
                reason="verification",
            )


# ----------------------------------------------------------------------
# Closed operators on normal forms
# ----------------------------------------------------------------------
def nf_group(
    form: PeriodicNormalForm,
    n: int,
    offset: int = 0,
    label: Optional[str] = None,
    exact_cover: Optional[bool] = None,
) -> PeriodicNormalForm:
    """Group each ``n`` consecutive ticks (from ``offset``) into one.

    The fiscal-offset operator: ``nf_group(month_form, 12, offset=3)``
    is an April-anchored fiscal year.  ``exact_cover`` defaults to
    "operand is exact and has no gaps at all" (a grouped tick spanning
    an operand gap cannot certify interior coverage).
    """
    if n < 1 or offset < 0:
        raise NormalFormError(
            "group size must be positive and offset non-negative",
            reason="invalid",
        )
    P0, S0 = form.period_ticks, form.period_seconds
    window = _lcm(P0, n)
    P = window // n
    S = window // P0 * S0
    prefix_groups = (form.prefix_ticks + offset) // n + 1
    count = prefix_groups + 2 * P + 1
    if count > 4 * nf_max_period():
        raise NormalFormError(
            "grouped form would enumerate %d ticks, over the compile "
            "budget" % (count,),
            reason="over-budget",
        )
    bounds = [
        (
            form.instant_of_tick(offset + j * n)[0],
            form.instant_of_tick(offset + j * n + n - 1)[1],
        )
        for j in range(count)
    ]
    if exact_cover is None:
        exact_cover = form.exact_cover and _form_is_contiguous(form)
    return eventually_periodic_form(
        label if label is not None else "%d-%s" % (n, form.label),
        bounds,
        P,
        S,
        exact_cover=exact_cover,
        rule="group",
    )


def nf_select(
    form: PeriodicNormalForm,
    predicate: Callable[[int], bool],
    predicate_period: int,
    label: Optional[str] = None,
) -> PeriodicNormalForm:
    """Keep the operand ticks selected by a periodic predicate.

    ``predicate`` receives operand tick indices and must be periodic
    with ``predicate_period``; the result repeats after
    ``lcm(operand period, predicate_period)`` operand ticks.
    """
    if predicate_period < 1:
        raise NormalFormError(
            "predicate period must be positive", reason="invalid"
        )
    P0, S0 = form.period_ticks, form.period_seconds
    B0 = form.prefix_ticks
    window = _lcm(P0, predicate_period)
    if window > 2 * nf_max_period():
        raise NormalFormError(
            "selection window of %d operand ticks exceeds the compile "
            "budget" % (window,),
            reason="over-budget",
        )
    S = window // P0 * S0
    selected_prefix = [i for i in range(B0) if predicate(i)]
    selected_period = [j for j in range(window) if predicate(B0 + j)]
    P = len(selected_period)
    if P == 0:
        raise NormalFormError(
            "predicate selects no tick in a full period; the result "
            "would run out of ticks",
            reason="empty",
        )
    bounds = [form.instant_of_tick(i) for i in selected_prefix]
    for cycle in range(3):
        shift = cycle * window
        bounds.extend(
            form.instant_of_tick(B0 + j + shift) for j in selected_period
        )
        if len(bounds) >= len(selected_prefix) + 2 * P + 1:
            break
    return eventually_periodic_form(
        label if label is not None else "select(%s)" % (form.label,),
        bounds,
        P,
        S,
        exact_cover=form.exact_cover,
        rule="select",
    )


def nf_shift(
    form: PeriodicNormalForm, delta: int, label: Optional[str] = None
) -> PeriodicNormalForm:
    """Shift every tick by ``delta`` seconds (timezone displacement).

    Negative shifts drop the leading ticks that would start before
    instant 0 and re-index the rest, mirroring
    :class:`~repro.granularity.combinators.ShiftedType`.
    """
    new_label = label if label is not None else "%s%+ds" % (form.label, delta)
    skip = 0
    if delta < 0:
        skip = form.tick_starting_at_or_after(-delta)
    remaining_prefix = max(0, form.prefix_ticks - skip)
    count = remaining_prefix + 2 * form.period_ticks + 1
    bounds = []
    for j in range(count):
        first, last = form.instant_of_tick(skip + j)
        bounds.append((first + delta, last + delta))
    return eventually_periodic_form(
        new_label,
        bounds,
        form.period_ticks,
        form.period_seconds,
        exact_cover=form.exact_cover,
        rule="shift",
    )


def _periodicize_stream(
    label: str,
    ticks: List[Bounds],
    window_seconds: int,
    anchor: int,
    *,
    exact_cover: bool,
    rule: str,
) -> PeriodicNormalForm:
    """Fold a merged tick stream that is periodic past ``anchor``.

    ``ticks`` must extend past ``anchor + 2 * window_seconds``; the
    ticks starting at or after ``anchor`` repeat every
    ``window_seconds``.  Any over-long prefix the anchor estimate
    introduces is rotated away by the minimization pass.
    """
    i0 = 0
    while i0 < len(ticks) and ticks[i0][0] < anchor:
        i0 += 1
    if i0 == len(ticks):
        raise NormalFormError(
            "%r has no ticks past its periodic anchor" % (label,),
            reason="empty",
        )
    first0 = ticks[i0][0]
    P = 0
    for first, _ in ticks[i0:]:
        if first >= first0 + window_seconds:
            break
        P += 1
    return eventually_periodic_form(
        label,
        ticks,
        P,
        window_seconds,
        exact_cover=exact_cover,
        rule=rule,
    )


def _check_refinement_budget(
    label: str, fa: PeriodicNormalForm, fb: PeriodicNormalForm
) -> Tuple[int, int]:
    """lcm window and per-window tick estimate, budget-checked."""
    window = _lcm(fa.period_seconds, fb.period_seconds)
    estimate = fa.period_ticks * (
        window // fa.period_seconds
    ) + fb.period_ticks * (window // fb.period_seconds)
    if estimate > nf_max_period():
        raise NormalFormError(
            "common refinement of %r needs ~%d ticks per window, over "
            "the compile budget" % (label, estimate),
            reason="over-budget",
        )
    return window, estimate


def nf_intersect(
    fa: PeriodicNormalForm,
    fb: PeriodicNormalForm,
    label: Optional[str] = None,
) -> PeriodicNormalForm:
    """Common refinement: one tick per non-empty bounds overlap.

    Replicates the merge scan of
    :class:`~repro.granularity.intersection.IntersectionType` over the
    operand *forms*, then folds the overlap stream - periodic past the
    later operand's periodic start with period ``lcm(Sa, Sb)`` - into
    a minimal form.
    """
    new_label = label if label is not None else "%s*%s" % (fa.label, fb.label)
    window, estimate = _check_refinement_budget(new_label, fa, fb)
    anchor = max(fa.firsts[0], fb.firsts[0])
    stop = anchor + 3 * window
    limit = 8 * estimate + fa.prefix_ticks + fb.prefix_ticks + 64
    overlaps: List[Bounds] = []
    index_a = index_b = 0
    for _ in range(limit):
        first_a, last_a = fa.instant_of_tick(index_a)
        first_b, last_b = fb.instant_of_tick(index_b)
        lo = max(first_a, first_b)
        hi = min(last_a, last_b)
        if lo <= hi:
            overlaps.append((lo, hi))
            if lo > stop:
                break
        if last_a <= last_b:
            index_a += 1
        if last_b <= last_a:
            index_b += 1
    else:
        raise NormalFormError(
            "intersection %r found no periodic overlap stream within "
            "its scan bound" % (new_label,),
            reason="aperiodic",
        )
    return _periodicize_stream(
        new_label,
        overlaps,
        window,
        anchor,
        exact_cover=fa.exact_cover and fb.exact_cover,
        rule="intersect",
    )


def nf_union(
    fa: PeriodicNormalForm,
    fb: PeriodicNormalForm,
    label: Optional[str] = None,
) -> PeriodicNormalForm:
    """Union: maximal overlap-chained runs of both operands' ticks.

    Mirrors :class:`~repro.granularity.combinators.UnionType`:
    adjacent-but-disjoint ticks stay separate, overlapping ones
    coalesce.
    """
    new_label = label if label is not None else "%s+%s" % (fa.label, fb.label)
    window, estimate = _check_refinement_budget(new_label, fa, fb)
    anchor = max(fa.firsts[0], fb.firsts[0])
    stop = anchor + 3 * window
    limit = 8 * estimate + fa.prefix_ticks + fb.prefix_ticks + 64
    runs: List[Bounds] = []
    index_a = index_b = 0
    consumed = 0
    run: Optional[List[int]] = None
    while consumed < limit:
        consumed += 1
        first_a, _ = fa.instant_of_tick(index_a)
        first_b, _ = fb.instant_of_tick(index_b)
        if first_a <= first_b:
            first, last = fa.instant_of_tick(index_a)
            index_a += 1
        else:
            first, last = fb.instant_of_tick(index_b)
            index_b += 1
        if run is not None and first <= run[1]:
            run[1] = max(run[1], last)
            continue
        if run is not None:
            runs.append((run[0], run[1]))
            if run[0] > stop:
                break
        run = [first, last]
    else:
        raise NormalFormError(
            "union %r found no periodic run stream within its scan "
            "bound" % (new_label,),
            reason="aperiodic",
        )
    return _periodicize_stream(
        new_label,
        runs,
        window,
        anchor,
        exact_cover=fa.exact_cover and fb.exact_cover,
        rule="union",
    )


def nf_nth_within(
    fine: PeriodicNormalForm,
    coarse: PeriodicNormalForm,
    n: int,
    label: Optional[str] = None,
) -> PeriodicNormalForm:
    """The ``n``-th fine tick fully inside each coarse tick.

    The 2nd-Tuesday-of-month operator: coarse ticks with fewer than
    ``n`` fully contained fine ticks contribute nothing and the result
    is re-indexed, mirroring
    :class:`~repro.granularity.combinators.NthSubgranuleType`.
    """
    if n < 1:
        raise NormalFormError("n must be at least 1", reason="invalid")
    new_label = (
        label
        if label is not None
        else "%d@%s/%s" % (n, fine.label, coarse.label)
    )
    window, estimate = _check_refinement_budget(new_label, fine, coarse)
    anchor = max(fine.firsts[0], coarse.firsts[0])
    stop = anchor + 3 * window
    limit = 4 * (
        coarse.period_ticks * (window // coarse.period_seconds) + 1
    ) + coarse.prefix_ticks + 64
    picks: List[Bounds] = []
    coarse_index = 0
    for _ in range(limit):
        coarse_first, coarse_last = coarse.instant_of_tick(coarse_index)
        coarse_index += 1
        k = fine.tick_starting_at_or_after(coarse_first) + n - 1
        fine_first, fine_last = fine.instant_of_tick(k)
        if fine_last <= coarse_last:
            picks.append((fine_first, fine_last))
            if fine_first > stop:
                break
    else:
        raise NormalFormError(
            "nth-subgranule %r found no periodic pick stream within "
            "its scan bound" % (new_label,),
            reason="aperiodic",
        )
    return _periodicize_stream(
        new_label,
        picks,
        window,
        anchor,
        exact_cover=fine.exact_cover,
        rule="nth-subgranule",
    )


# ----------------------------------------------------------------------
# Form-backed granularities (operator results as first-class types)
# ----------------------------------------------------------------------
class FormBackedType(TemporalType):
    """A temporal type realised directly by a normal form.

    Wraps an operator result (``nf_intersect``, ``nf_group``, ...) so
    it can join a :class:`~repro.granularity.registry.GranularitySystem`
    like any other type.  Requires ``exact_cover`` - a boundary-only
    form cannot answer ``tick_of`` for types with interior gaps.
    """

    def __init__(
        self, form: PeriodicNormalForm, label: Optional[str] = None
    ):
        if not form.exact_cover:
            raise ValueError(
                "FormBackedType requires an exact-cover form; %r only "
                "certifies boundaries" % (form.label,)
            )
        self.form = form
        self.label = label if label is not None else form.label
        self.alignment_seconds = 1
        start = (
            form.prefix_firsts[0] if form.prefix_firsts else form.firsts[0]
        )
        self.total = start == 0 and _form_is_contiguous(form)
        # cached_normal_form finds the form without compiling.
        self._normal_form_cache = form

    def tick_of(self, second: int) -> Optional[int]:
        if second < 0:
            return None
        return self.form.tick_of_instant(second)

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        return self.form.instant_of_tick(index)

    def period_info(self):
        """Periodic from tick 0 only when the form has no prefix."""
        if self.form.prefix_firsts:
            return None
        return self.form.period_ticks, self.form.period_seconds


# ----------------------------------------------------------------------
# The dispatcher
# ----------------------------------------------------------------------
def lower_algebraic(ttype: TemporalType) -> Optional[PeriodicNormalForm]:
    """Apply the first matching calendar-algebra rule, or None.

    Called by :func:`~repro.granularity.normalform.compile_normal_form`
    after the structural and period-scan stages; every firing runs
    under a ``sizetable.algebra`` span carrying the rule name.
    """
    matched = _match_rule(ttype)
    if matched is None:
        return None
    rule, lowering = matched
    with span(
        "sizetable.algebra", label=ttype.label, rule=rule
    ) as algebra_span:
        form = lowering(ttype)
        if form is None:
            # Rules may decline (filter without a declared predicate
            # period, holiday-free business day handled by the scan).
            algebra_span.set(declined=True)
            return None
        algebra_span.set(
            period=form.period_ticks, prefix=form.prefix_ticks
        )
        return form


def _lower_grouped(ttype: GroupedType) -> PeriodicNormalForm:
    return nf_group(
        _operand_form(ttype.base),
        ttype.n,
        offset=ttype.offset,
        label=ttype.label,
        exact_cover=_covers_whole_bounds(ttype),
    )


def _lower_filtered(ttype: FilteredType) -> Optional[PeriodicNormalForm]:
    if ttype.predicate_period is None:
        return None
    return nf_select(
        _operand_form(ttype.base),
        ttype.predicate,
        ttype.predicate_period,
        label=ttype.label,
    )


def _lower_intersection(ttype: IntersectionType) -> PeriodicNormalForm:
    return nf_intersect(
        _operand_form(ttype.a), _operand_form(ttype.b), label=ttype.label
    )


def _lower_union(ttype: UnionType) -> PeriodicNormalForm:
    return nf_union(
        _operand_form(ttype.a), _operand_form(ttype.b), label=ttype.label
    )


def _lower_shifted(ttype: ShiftedType) -> PeriodicNormalForm:
    return nf_shift(
        _operand_form(ttype.base), ttype.delta, label=ttype.label
    )


def _lower_nth(ttype: NthSubgranuleType) -> PeriodicNormalForm:
    return nf_nth_within(
        _operand_form(ttype.fine),
        _operand_form(ttype.coarse),
        ttype.n,
        label=ttype.label,
    )


def _lower_form_backed(ttype: "FormBackedType") -> PeriodicNormalForm:
    return ttype.form


def _lower_bday_overlay(
    ttype: BusinessDayType,
) -> Optional[PeriodicNormalForm]:
    # Holiday-free business days lower by the period scan already.
    if not ttype.holidays:
        return None
    return _lower_business_day(ttype)


_RULES: List[Tuple[type, str, Callable]] = [
    (MonthType, "gregorian-cycle", _lower_month),
    (CustomMonthType, "custom-cycle", _lower_custom),
    (CustomYearType, "custom-cycle", _lower_custom),
    (YearType, "gregorian-cycle", _lower_year),
    (BusinessDayType, "business-overlay", _lower_bday_overlay),
    (BusinessWeekType, "business-overlay", _lower_business_week),
    (BusinessMonthType, "business-overlay", _lower_business_month),
    (GroupedType, "group", _lower_grouped),
    (FilteredType, "select", _lower_filtered),
    (IntersectionType, "intersect", _lower_intersection),
    (UnionType, "union", _lower_union),
    (ShiftedType, "shift", _lower_shifted),
    (NthSubgranuleType, "nth-subgranule", _lower_nth),
    (FormBackedType, "form", _lower_form_backed),
]


def _match_rule(ttype: TemporalType):
    for klass, rule, lowering in _RULES:
        if isinstance(ttype, klass):
            return rule, lowering
    return None
