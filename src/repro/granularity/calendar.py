"""Calendar temporal types: month, year, and the standard uniform types.

The factory functions here produce the intuitive types of the paper's
Section 2 (``second``, ``minute``, ``hour``, ``day``, ``week``, ``month``,
``year``) over the synthetic proleptic Gregorian calendar of
:mod:`repro.granularity.gregorian`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from . import gregorian as greg
from .base import DayBasedType, TemporalType, UniformType


class MonthType(DayBasedType):
    """Calendar months; tick 0 is the epoch month (January, epoch year)."""

    total = True

    def __init__(self, label: str = "month"):
        self.label = label

    def day_tick_of(self, day_index: int) -> Optional[int]:
        if day_index < 0:
            return None
        return greg.month_index_of_day(day_index)

    def day_tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        return greg.month_bounds(index)


class YearType(DayBasedType):
    """Calendar years; tick 0 is the epoch year."""

    total = True

    def __init__(self, label: str = "year"):
        self.label = label

    def day_tick_of(self, day_index: int) -> Optional[int]:
        if day_index < 0:
            return None
        return greg.year_index_of_day(day_index)

    def day_tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        return greg.year_bounds(index)


def second() -> TemporalType:
    """The primitive type: one tick per second."""
    return UniformType("second", 1)


def minute() -> TemporalType:
    """Sixty-second ticks aligned to the epoch."""
    return UniformType("minute", greg.SECONDS_PER_MINUTE)


def hour() -> TemporalType:
    """Hour ticks aligned to the epoch."""
    return UniformType("hour", greg.SECONDS_PER_HOUR)


def day() -> TemporalType:
    """Calendar-day ticks; day 0 is a Monday by construction."""
    return UniformType("day", greg.SECONDS_PER_DAY)


def week() -> TemporalType:
    """Monday-aligned calendar weeks (the epoch day is a Monday)."""
    return UniformType("week", 7 * greg.SECONDS_PER_DAY)


def month() -> TemporalType:
    """Calendar months of the synthetic Gregorian calendar."""
    return MonthType()


def year() -> TemporalType:
    """Calendar years of the synthetic Gregorian calendar."""
    return YearType()
