"""Business-calendar temporal types: b-day, b-week, business-month.

These are the paper's showcase granularities *with gaps* (a Saturday is
covered by no ``b-day`` tick) and with *non-contiguous ticks* (a
``business-month`` tick is the union of the business days of a month,
excluding its weekends).  Both weekend days and an explicit holiday list
are configurable, so the same classes model e.g. a six-day trading week.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Optional, Sequence, Tuple

from . import gregorian as greg
from .base import DayBasedType


class BusinessDayType(DayBasedType):
    """Business days: one tick per working day, gaps elsewhere.

    Parameters
    ----------
    workdays:
        The weekday numbers (0 = Monday .. 6 = Sunday) that are working
        days.  Defaults to Monday-Friday.
    holidays:
        Day indices that are non-working despite falling on a workday
        weekday.  Holidays on weekend days are ignored (redundant).
    """

    def __init__(
        self,
        label: str = "b-day",
        workdays: Sequence[int] = (0, 1, 2, 3, 4),
        holidays: Iterable[int] = (),
    ):
        workdays = tuple(sorted(set(workdays)))
        if not workdays:
            raise ValueError("at least one workday is required")
        if any(not 0 <= w <= 6 for w in workdays):
            raise ValueError("workdays must be weekday numbers 0..6")
        self.label = label
        self.workdays = workdays
        self.holidays = tuple(
            sorted(
                d for d in set(holidays) if greg.weekday(d) in set(workdays)
            )
        )
        self._holiday_set = frozenset(self.holidays)
        self._per_week = len(workdays)
        # rank of each weekday within a week's workdays (or None).
        self._weekday_rank = {w: i for i, w in enumerate(workdays)}

    # ------------------------------------------------------------------
    # Pattern arithmetic ignoring holidays
    # ------------------------------------------------------------------
    def _pattern_rank(self, day_index: int) -> Optional[int]:
        """0-based rank of a day among pattern workdays, None if not one."""
        rank_in_week = self._weekday_rank.get(greg.weekday(day_index))
        if rank_in_week is None:
            return None
        return (day_index // 7) * self._per_week + rank_in_week

    def _pattern_day(self, rank: int) -> int:
        """Inverse of :meth:`_pattern_rank` for non-negative ranks."""
        week, pos = divmod(rank, self._per_week)
        return week * 7 + self.workdays[pos]

    def _holidays_at_or_before(self, day_index: int) -> int:
        return bisect_right(self.holidays, day_index)

    def period_info(self):
        """Exactly weekly-periodic when there are no holidays; holiday
        lists break periodicity, so no period is declared then."""
        if self.holidays:
            return None
        return self._per_week, 7 * greg.SECONDS_PER_DAY

    # ------------------------------------------------------------------
    # DayBasedType interface
    # ------------------------------------------------------------------
    def day_tick_of(self, day_index: int) -> Optional[int]:
        if day_index < 0:
            return None
        rank = self._pattern_rank(day_index)
        if rank is None:
            return None
        if day_index in self._holiday_set:
            return None
        return rank - self._holidays_at_or_before(day_index)

    def day_tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        day = self._pattern_day(index)
        # Holidays push the index-th business day later; each correction
        # step accounts for holidays skipped so far, so the loop runs at
        # most len(holidays) + 1 times.
        while True:
            tick = self.day_tick_of(day)
            if tick == index:
                return day, day
            # Move to the next pattern workday.
            rank = self._pattern_rank(day)
            assert rank is not None
            day = self._pattern_day(rank + 1)


class BusinessWeekType(DayBasedType):
    """Business weeks: tick *i* is the set of business days of week *i*.

    A tick is non-contiguous when the underlying business-day type skips
    days inside the week.  The paper requires empty ticks only at the end
    of time, so a week consisting entirely of holidays raises
    :class:`ValueError` when its bounds are requested.
    """

    def __init__(self, label: str = "b-week", bday: Optional[BusinessDayType] = None):
        self.label = label
        self.bday = bday if bday is not None else BusinessDayType()

    def day_tick_of(self, day_index: int) -> Optional[int]:
        if day_index < 0 or self.bday.day_tick_of(day_index) is None:
            return None
        return day_index // 7

    def day_tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        days = [
            d
            for d in range(index * 7, index * 7 + 7)
            if self.bday.day_tick_of(d) is not None
        ]
        if not days:
            raise ValueError(
                "week %d contains no business day; such a temporal type "
                "violates the paper's non-empty-tick requirement" % index
            )
        return days[0], days[-1]


class BusinessMonthType(DayBasedType):
    """Business months: tick *i* is the set of business days of month *i*."""

    def __init__(
        self,
        label: str = "business-month",
        bday: Optional[BusinessDayType] = None,
    ):
        self.label = label
        self.bday = bday if bday is not None else BusinessDayType()

    def day_tick_of(self, day_index: int) -> Optional[int]:
        if day_index < 0 or self.bday.day_tick_of(day_index) is None:
            return None
        return greg.month_index_of_day(day_index)

    def day_tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        first, last = greg.month_bounds(index)
        days = [
            d
            for d in range(first, last + 1)
            if self.bday.day_tick_of(d) is not None
        ]
        if not days:
            raise ValueError(
                "month %d contains no business day; such a temporal type "
                "violates the paper's non-empty-tick requirement" % index
            )
        return days[0], days[-1]


def business_day(**kwargs) -> BusinessDayType:
    """Factory for the default Monday-Friday business day."""
    return BusinessDayType(**kwargs)


def business_week(**kwargs) -> BusinessWeekType:
    """Factory for the default business week."""
    return BusinessWeekType(**kwargs)


def business_month(**kwargs) -> BusinessMonthType:
    """Factory for the default business month."""
    return BusinessMonthType(**kwargs)
