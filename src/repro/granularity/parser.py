"""A small textual language for temporal types.

The paper's Section 6 points at calendar-definition languages (Leban et
al., Niezette-Stevenne, Chandra-Segev-Stonebraker) whose granularities
"are all instances of our temporal types".  This module provides such a
front end: a compact expression grammar that builds library types, so
event structures can be configured from text (used by the CLI and the
JSON serialisation layer).

Grammar::

    expr     := call | NAME
    call     := NAME '(' args ')'
    args     := (arg (',' arg)*)?
    arg      := expr | INT | INT '-' INT        # integer ranges expand

Builtins::

    group(base, n [, offset])      GroupedType - e.g. group(month, 3)
    shifts(on_secs, off_secs [, phase])
    weekly(day:starth:hours, ...)  weekly_slots - e.g. weekly(0:9:8, 2:9:8)
    businessday(workday, ...)      BusinessDayType over the weekdays
    uniform(seconds [, phase])     UniformType
    intersect(a, b)                IntersectionType (pairwise overlaps)
    union(a, b)                    UnionType (overlap-coalesced merge)
    select(base, m, r, ...)        FilteredType keeping ticks with
                                   index % m in {r, ...}
    shift(base, delta)             ShiftedType - delta seconds (may be
                                   negative: shift(day, -3600))
    nth(fine, coarse, n)           NthSubgranuleType - e.g. the second
                                   tuesday of each month
    businesshours(start, end [, b]) business_hours over b (default b-day)

Plain names resolve against the supplied
:class:`~repro.granularity.registry.GranularitySystem` (so ``month``,
``b-day``, previously-parsed labels, etc. are all available).  The
parsed type is registered in the system under its canonical spelling.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from .base import TemporalType, UniformType
from .business import BusinessDayType
from .combinators import (
    FilteredType,
    GroupedType,
    NthSubgranuleType,
    ShiftedType,
    UnionType,
)
from .periodic import PeriodicPatternType, shifts, weekly_slots
from .registry import GranularitySystem

_TOKEN = re.compile(
    r"\s*(?:(?P<name>[A-Za-z][\w\-]*)|(?P<int>\d+)|(?P<punct>[(),:\-]))"
)


class GranularityParseError(ValueError):
    """Raised on malformed granularity expressions."""


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise GranularityParseError(
                "unexpected character at %d in %r" % (position, text)
            )
        position = match.end()
        for kind in ("name", "int", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]], system: GranularitySystem):
        self.tokens = tokens
        self.position = 0
        self.system = system

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self, kind: Optional[str] = None, value: Optional[str] = None):
        token = self.peek()
        if token is None:
            raise GranularityParseError("unexpected end of expression")
        if kind is not None and token[0] != kind:
            raise GranularityParseError(
                "expected %s, got %r" % (kind, token[1])
            )
        if value is not None and token[1] != value:
            raise GranularityParseError(
                "expected %r, got %r" % (value, token[1])
            )
        self.position += 1
        return token

    # ------------------------------------------------------------------
    def parse_expr(self) -> Union[TemporalType, int, Tuple[int, ...]]:
        kind, value = self.take()
        if kind == "punct" and value == "-":
            # Unary minus: negative integer literal (shift deltas).
            return -int(self.take("int")[1])
        if kind == "int":
            first = int(value)
            # INT-INT ranges and INT:INT:INT triples.
            if self.peek() == ("punct", "-"):
                self.take()
                second = int(self.take("int")[1])
                if second < first:
                    raise GranularityParseError("descending range")
                return tuple(range(first, second + 1))
            if self.peek() == ("punct", ":"):
                parts = [first]
                while self.peek() == ("punct", ":"):
                    self.take()
                    parts.append(int(self.take("int")[1]))
                return tuple(parts)
            return first
        if kind != "name":
            raise GranularityParseError("unexpected token %r" % (value,))
        if self.peek() == ("punct", "("):
            return self.parse_call(value)
        try:
            return self.system.get(value)
        except KeyError:
            raise GranularityParseError("unknown granularity %r" % (value,))

    def parse_call(self, name: str) -> TemporalType:
        self.take("punct", "(")
        args: List[Union[TemporalType, int, Tuple[int, ...]]] = []
        if self.peek() != ("punct", ")"):
            args.append(self.parse_expr())
            while self.peek() == ("punct", ","):
                self.take()
                args.append(self.parse_expr())
        self.take("punct", ")")
        return self._build(name, args)

    # ------------------------------------------------------------------
    def _build(self, name: str, args) -> TemporalType:
        if name == "group":
            if not 2 <= len(args) <= 3 or not isinstance(args[0], TemporalType):
                raise GranularityParseError(
                    "group(base, n[, offset]) expected"
                )
            base, n = args[0], args[1]
            offset = args[2] if len(args) == 3 else 0
            return GroupedType(base, int(n), offset=int(offset))
        if name == "uniform":
            if not 1 <= len(args) <= 2:
                raise GranularityParseError("uniform(seconds[, phase]) expected")
            seconds = int(args[0])
            phase = int(args[1]) if len(args) == 2 else 0
            label = "uniform-%d" % seconds + ("+%d" % phase if phase else "")
            return UniformType(label, seconds, phase=phase)
        if name == "shifts":
            if not 2 <= len(args) <= 3:
                raise GranularityParseError(
                    "shifts(on_secs, off_secs[, phase]) expected"
                )
            on, off = int(args[0]), int(args[1])
            phase = int(args[2]) if len(args) == 3 else 0
            label = "shifts-%d-%d" % (on, off) + ("+%d" % phase if phase else "")
            return shifts(label, on, off, phase=phase)
        if name == "weekly":
            slots = []
            for arg in args:
                if not isinstance(arg, tuple) or len(arg) != 3:
                    raise GranularityParseError(
                        "weekly(day:start:hours, ...) expected"
                    )
                slots.append(arg)
            label = "weekly-" + "-".join(
                "%d.%d.%d" % slot for slot in slots
            )
            return weekly_slots(label, slots)
        if name == "intersect":
            if len(args) != 2 or not all(
                isinstance(a, TemporalType) for a in args
            ):
                raise GranularityParseError("intersect(a, b) expected")
            from .intersection import IntersectionType

            return IntersectionType(args[0], args[1])
        if name == "businesshours":
            if not 2 <= len(args) <= 3:
                raise GranularityParseError(
                    "businesshours(start, end[, base]) expected"
                )
            start, end = int(args[0]), int(args[1])
            if len(args) == 3:
                base = args[2]
                if not isinstance(base, TemporalType):
                    raise GranularityParseError(
                        "businesshours base must be a granularity"
                    )
            else:
                try:
                    base = self.system.get("b-day")
                except KeyError:
                    base = BusinessDayType()
            from .intersection import business_hours

            try:
                return business_hours(base, start, end)
            except ValueError as exc:
                raise GranularityParseError(str(exc))
        if name == "select":
            if (
                len(args) < 3
                or not isinstance(args[0], TemporalType)
                or not all(isinstance(a, int) for a in args[1:])
            ):
                raise GranularityParseError(
                    "select(base, modulus, residue, ...) expected"
                )
            base, modulus = args[0], int(args[1])
            residues = frozenset(int(a) % max(modulus, 1) for a in args[2:])
            if modulus < 1:
                raise GranularityParseError("select modulus must be >= 1")
            label = "select-%s-%d-%s" % (
                base.label,
                modulus,
                ".".join(str(r) for r in sorted(residues)),
            )
            return FilteredType(
                base,
                lambda index, m=modulus, rs=residues: index % m in rs,
                label,
                predicate_period=modulus,
            )
        if name == "shift":
            if (
                len(args) != 2
                or not isinstance(args[0], TemporalType)
                or not isinstance(args[1], int)
            ):
                raise GranularityParseError("shift(base, delta) expected")
            return ShiftedType(args[0], args[1])
        if name == "union":
            if len(args) != 2 or not all(
                isinstance(a, TemporalType) for a in args
            ):
                raise GranularityParseError("union(a, b) expected")
            return UnionType(args[0], args[1])
        if name == "nth":
            if (
                len(args) != 3
                or not isinstance(args[0], TemporalType)
                or not isinstance(args[1], TemporalType)
                or not isinstance(args[2], int)
            ):
                raise GranularityParseError("nth(fine, coarse, n) expected")
            return NthSubgranuleType(args[0], args[1], int(args[2]))
        if name == "businessday":
            workdays = []
            for arg in args:
                if isinstance(arg, tuple):
                    workdays.extend(arg)
                else:
                    workdays.append(int(arg))
            label = "businessday-" + "".join(str(w) for w in sorted(set(workdays)))
            return BusinessDayType(label=label, workdays=tuple(workdays))
        raise GranularityParseError("unknown constructor %r" % (name,))


def parse_type(text: str, system: GranularitySystem) -> TemporalType:
    """Parse a granularity expression and register the result.

    >>> from repro.granularity import standard_system
    >>> system = standard_system()
    >>> parse_type("group(month, 3)", system).label
    '3-month'
    """
    parser = _Parser(_tokenize(text), system)
    result = parser.parse_expr()
    if parser.peek() is not None:
        raise GranularityParseError(
            "trailing input after expression: %r" % (parser.peek()[1],)
        )
    if not isinstance(result, TemporalType):
        raise GranularityParseError("expression is not a temporal type")
    return system.register(result)
