"""Size tables: ``minsize``, ``maxsize`` and ``mingap`` of temporal types.

The appendix A.1 conversion algorithm of the paper is driven by a table of
three quantities, all expressed in ticks of the primitive type (here:
seconds):

``minsize(mu, k)`` / ``maxsize(mu, k)``
    the minimum / maximum *span* of ``k`` consecutive ticks of ``mu``,
    i.e. ``last instant - first instant + 1`` (0 for ``k = 0``);

``mingap(mu, k)``
    the minimum of ``min(mu(i + k)) - max(mu(i))`` over all ``i`` - the
    smallest possible distance from an instant of a tick to an instant of
    the tick ``k`` positions later.

The paper assumes these values come from a pre-computed table for ``k``
up to some constant and are extended by "a linear combination of the known
values".  :class:`SizeTable` computes values by scanning tick boundaries
up to a horizon; a value is *certified exact* when the window sweep
provably saw every phase of the type - up to the full scan for finite
types, up to ``scanned - period`` for types declaring
``period_info()``, and up to half the horizon otherwise (the documented
``horizon >= 2 * period`` contract).  Beyond the certified range,
values are extended with *sound* combinations: ``minsize`` and
``mingap`` are never over-estimated and ``maxsize`` is never
under-estimated, which is exactly what the soundness of constraint
conversion requires.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from ..obs import counter
from .base import TemporalType

#: Default bound on each memo dict of a size table.  Streaming matchers
#: keep tables alive for the life of the process and probe them with
#: ever-new ``k`` values, so the memos must not grow without limit.
DEFAULT_MEMO_ENTRIES = 4096

# Process-wide table traffic, by backend (docs/OBSERVABILITY.md
# catalog).  The per-instance ``probes``/``probe_hits`` ints stay the
# per-table views the benchmark harness records.
_PROBES_SWEEP = counter(
    "repro_sizetable_probes_total",
    "Size-table lookups (minsize/maxsize/mingap), by backend",
    labels={"backend": "sweep"},
)
_EVICTIONS = counter(
    "repro_sizetable_evictions_total",
    "Size-table memo entries evicted by the LRU bound",
)


class BoundedMemo:
    """An LRU-bounded memo dict for size-table values.

    ``get`` refreshes recency; ``put`` beyond the bound evicts the
    least-recently-used entry and counts it (per instance and into
    ``repro_sizetable_evictions_total``).  Values are never None, so
    ``get`` returning None always means a miss.
    """

    __slots__ = ("cap", "_data", "evictions")

    def __init__(self, cap: int = DEFAULT_MEMO_ENTRIES):
        if cap < 1:
            raise ValueError("memo cap must be >= 1")
        self.cap = cap
        self._data: "OrderedDict" = OrderedDict()
        self.evictions = 0

    def get(self, key):
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        if key in self._data:
            self._data[key] = value
            self._data.move_to_end(key)
            return
        if len(self._data) >= self.cap:
            self._data.popitem(last=False)
            self.evictions += 1
            _EVICTIONS.inc()
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)


class SizeTable:
    """Lazy, memoised min/max-span and min-gap table for one type.

    Parameters
    ----------
    ttype:
        The temporal type to tabulate.
    horizon:
        Number of leading ticks whose boundaries are scanned exactly.
        For (eventually) periodic types, a horizon covering one full
        period makes every in-horizon value exact; the default covers
        e.g. 42 years of months or 512 years outright, far more than one
        leap cycle of everything except bare ``year`` (which is uniform
        enough at this scale for the extrapolation to stay sound).
    memo_entries:
        LRU bound on each of the three memo dicts (see
        :class:`BoundedMemo`); long-lived processes keep probing tables
        with fresh ``k`` values, so the memos must stay bounded.
    """

    #: Backend tag surfaced by :meth:`probe_stats` (the compiled
    #: counterpart reports ``"compiled"``).
    backend = "sweep"

    def __init__(
        self,
        ttype: TemporalType,
        horizon: int = 512,
        memo_entries: int = DEFAULT_MEMO_ENTRIES,
    ):
        if horizon < 8:
            raise ValueError("horizon too small to be useful")
        self.ttype = ttype
        # Types that declare an exact period (see PeriodicPatternType)
        # get provably-exact in-horizon values: a window sweep covering
        # one full period of positions sees every phase.
        self._period_ticks: Optional[int] = None
        period_info = getattr(ttype, "period_info", None)
        if callable(period_info):
            info = period_info()
            if info is not None:
                self._period_ticks = int(info[0])
                horizon = max(horizon, 3 * self._period_ticks + 2)
        self.horizon = horizon
        self._first: List[int] = []
        self._last: List[int] = []
        self._exhausted = False  # the type ran out of ticks before horizon
        self._minsize_cache = BoundedMemo(memo_entries)
        self._maxsize_cache = BoundedMemo(memo_entries)
        self._mingap_cache = BoundedMemo(memo_entries)
        self._max_step_cache: Optional[int] = None
        #: Probe counters: total table lookups vs. the ones answered
        #: from the memo dicts (surfaced by the benchmark harness).
        self.probes = 0
        self.probe_hits = 0

    @property
    def memo_evictions(self) -> int:
        """Entries the LRU bound evicted across the three memos."""
        return (
            self._minsize_cache.evictions
            + self._maxsize_cache.evictions
            + self._mingap_cache.evictions
        )

    def probe_stats(self) -> dict:
        """JSON-friendly counters of table probes and memo hits."""
        return {
            "backend": self.backend,
            "probes": self.probes,
            "memo_hits": self.probe_hits,
            "scanned_ticks": len(self._first),
            "memo_evictions": self.memo_evictions,
        }

    # ------------------------------------------------------------------
    # Boundary scanning
    # ------------------------------------------------------------------
    def _ensure(self, count: int) -> None:
        """Scan tick boundaries until ``count`` ticks are known (or fewer
        if the type runs out of ticks)."""
        count = min(count, self.horizon)
        while len(self._first) < count and not self._exhausted:
            index = len(self._first)
            try:
                first, last = self.ttype.tick_bounds(index)
            except ValueError:
                self._exhausted = True
                break
            if first > last:
                raise ValueError(
                    "tick %d of %r has inverted bounds" % (index, self.ttype)
                )
            if self._last and first <= self._last[-1]:
                raise ValueError(
                    "ticks of %r are not monotonically ordered" % (self.ttype,)
                )
            self._first.append(first)
            self._last.append(last)

    def _scanned(self) -> int:
        self._ensure(self.horizon)
        return len(self._first)

    def _exact_limit(self, n: int, for_gap: bool = False) -> int:
        """Largest k whose scanned value is certifiably the global one.

        With an exhausted (finite) type everything scanned is exact; a
        declared period needs one period's worth of window positions;
        otherwise the half-horizon heuristic applies (the documented
        horizon >= 2 * period contract).
        """
        if self._exhausted:
            return n - 1 if for_gap else n
        if self._period_ticks is not None:
            slack = self._period_ticks + (1 if for_gap else 0)
            return max(1, n - slack + 1)
        return max(1, n // 2)

    def bounds(self, index: int):
        """Cached ``tick_bounds``; None beyond the horizon or the type's
        last tick."""
        if index < 0:
            raise ValueError("tick index must be non-negative")
        self._ensure(index + 1)
        if index < len(self._first):
            return self._first[index], self._last[index]
        return None

    def scanned_ticks(self) -> int:
        """Number of ticks whose boundaries are exactly known."""
        return self._scanned()

    # ------------------------------------------------------------------
    # Table entries
    # ------------------------------------------------------------------
    def minsize(self, k: int) -> int:
        """Minimum span (in seconds) of ``k`` consecutive ticks.

        Exact for ``k`` up to half the scanned horizon (every phase of a
        type whose period fits in the other half is then covered); for
        larger ``k`` the value is *under*-estimated using
        super-additivity of spans, preserving soundness of conversions.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        if k == 0:
            return 0
        self.probes += 1
        _PROBES_SWEEP.inc()
        cached = self._minsize_cache.get(k)
        if cached is not None:
            self.probe_hits += 1
            return cached
        n = self._scanned()
        if n == 0:
            raise ValueError("type %r has no ticks" % (self.ttype,))
        exact_limit = self._exact_limit(n)
        if k <= exact_limit:
            value = min(
                self._last[i + k - 1] - self._first[i] + 1
                for i in range(n - k + 1)
            )
        else:
            # Split k into blocks of at most exact_limit ticks;
            # consecutive blocks never overlap, so the total span is at
            # least the sum of block minima.
            q, r = divmod(k, exact_limit)
            value = q * self.minsize(exact_limit) + (
                self.minsize(r) if r else 0
            )
        self._minsize_cache.put(k, value)
        return value

    def maxsize(self, k: int) -> int:
        """Maximum span (in seconds) of ``k`` consecutive ticks.

        Exact for ``k`` up to half the scanned horizon; beyond that the
        value is *over*-estimated by extending the largest exact span
        with the largest observed per-tick step.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        if k == 0:
            return 0
        self.probes += 1
        _PROBES_SWEEP.inc()
        cached = self._maxsize_cache.get(k)
        if cached is not None:
            self.probe_hits += 1
            return cached
        n = self._scanned()
        if n == 0:
            raise ValueError("type %r has no ticks" % (self.ttype,))
        exact_limit = self._exact_limit(n)
        if k <= exact_limit:
            value = max(
                self._last[i + k - 1] - self._first[i] + 1
                for i in range(n - k + 1)
            )
        else:
            value = self.maxsize(exact_limit) + (
                k - exact_limit
            ) * self._max_step()
        self._maxsize_cache.put(k, value)
        return value

    def mingap(self, k: int) -> int:
        """Minimum of ``first(i + k) - last(i)`` over all ``i``.

        Note that ``mingap(0)`` is non-positive except for single-instant
        ticks.  Exact for ``k`` up to half the scanned horizon; beyond
        that the value is *under*-estimated via the identity
        ``gap(a + b) >= gap(a) + gap(b) + minsize(1) - 1``.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        self.probes += 1
        _PROBES_SWEEP.inc()
        cached = self._mingap_cache.get(k)
        if cached is not None:
            self.probe_hits += 1
            return cached
        n = self._scanned()
        if n == 0:
            raise ValueError("type %r has no ticks" % (self.ttype,))
        exact_limit = self._exact_limit(n, for_gap=True)
        if k <= exact_limit and k < n:
            value = min(
                self._first[i + k] - self._last[i] for i in range(n - k)
            )
        else:
            # Peel off q chunks of size exact_limit using
            # gap(a + b) >= gap(a) + gap(b) + minsize(1) - 1.
            chunk = exact_limit
            if chunk <= 0:
                raise ValueError(
                    "horizon too small to extrapolate mingap for %r"
                    % (self.ttype,)
                )
            q, r = divmod(k, chunk)
            if r > exact_limit:  # unreachable, defensive
                raise AssertionError("remainder exceeds exact limit")
            bridge = self.minsize(1) - 1
            value = q * (self.mingap(chunk) + bridge) + self.mingap(r)
        self._mingap_cache.put(k, value)
        return value

    def _max_step(self) -> int:
        """Largest observed advance of the tick *end* between neighbours."""
        if self._max_step_cache is not None:
            return self._max_step_cache
        n = self._scanned()
        if n < 2:
            raise ValueError(
                "horizon too small to extrapolate maxsize for %r"
                % (self.ttype,)
            )
        value = max(self._last[i + 1] - self._last[i] for i in range(n - 1))
        self._max_step_cache = value
        return value

    # ------------------------------------------------------------------
    # Searches used by the conversion algorithm
    # ------------------------------------------------------------------
    def min_k_with_minsize_at_least(
        self, target: int, cap: int = 1 << 24
    ) -> Optional[int]:
        """Smallest ``k`` with ``minsize(k) >= target``, or None past cap.

        ``minsize`` is non-decreasing in ``k``, so an exponential-then-
        binary search applies.
        """
        if target <= 0:
            return 0
        hi = 1
        while self.minsize(hi) < target:
            hi *= 2
            if hi > cap:
                return None
        lo = hi // 2
        while lo < hi:
            mid = (lo + hi) // 2
            if self.minsize(mid) >= target:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def min_k_with_maxsize_greater(
        self, target: int, cap: int = 1 << 24
    ) -> Optional[int]:
        """Smallest ``k`` with ``maxsize(k) > target``, or None past cap."""
        if self.maxsize(0) > target:
            return 0
        hi = 1
        while self.maxsize(hi) <= target:
            hi *= 2
            if hi > cap:
                return None
        lo = hi // 2
        while lo < hi:
            mid = (lo + hi) // 2
            if self.maxsize(mid) > target:
                hi = mid
            else:
                lo = mid + 1
        return lo
