"""Constraint conversion between granularities (paper appendix A.1).

Implements the Figure 3 algorithm: given a constraint
``Y - X in [m, n]_mu1``, derive an *implied* constraint
``Y - X in [m', n']_mu2``:

* ``n' = min { s : minsize(mu2, s) >= maxsize(mu1, n + 1) - 1 }``
* ``m' = min { r : maxsize(mu2, r) > mingap(mu1, m) } - 1``

with the feasibility precondition that every instant covered by the
source type is covered by the target type (otherwise the derived
constraint's ``ceil`` operator could be undefined for events satisfying
the original constraint, and the conversion would not be implied).

Soundness (proved in the module tests by exhaustive/property checks): if
timestamps ``t1 <= t2`` satisfy ``[m, n]_mu1`` and both are covered by
``mu2``, then they satisfy ``[m', n']_mu2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .base import TemporalType
from .sizes import SizeTable


@dataclass(frozen=True)
class ConversionOutcome:
    """Result of converting one interval between granularities.

    ``interval`` is None when no finite implied constraint exists within
    the search cap (the conversion is then simply not added, which keeps
    the propagation sound).  ``empty`` is True when the implied interval
    is empty, i.e. the source constraint is unsatisfiable for instants
    covered by the target - an inconsistency witness.
    """

    interval: Optional[Tuple[int, int]]
    empty: bool = False


def convert_interval(
    m: int,
    n: int,
    source_table: SizeTable,
    target_table: SizeTable,
    cap: int = 1 << 24,
) -> ConversionOutcome:
    """Convert ``[m, n]`` from the source type to the target type.

    The caller is responsible for having checked feasibility (see
    :func:`covers_prefix`); this function is pure table arithmetic.
    """
    if m < 0 or n < m:
        raise ValueError("invalid interval [%r, %r]" % (m, n))
    max_span = source_table.maxsize(n + 1) - 1
    upper = target_table.min_k_with_minsize_at_least(max_span, cap=cap)
    if upper is None:
        return ConversionOutcome(interval=None)
    min_gap = source_table.mingap(m)
    lower_plus_one = target_table.min_k_with_maxsize_greater(min_gap, cap=cap)
    lower = 0 if lower_plus_one is None else max(lower_plus_one - 1, 0)
    if lower > upper:
        return ConversionOutcome(interval=None, empty=True)
    return ConversionOutcome(interval=(lower, upper))


def direct_convert_interval(
    m: int,
    n: int,
    source: TemporalType,
    target: TemporalType,
    source_table: SizeTable,
) -> ConversionOutcome:
    """Tight sound conversion by direct boundary scanning.

    Instead of going through the primitive type twice (Figure 3), this
    computes the implied target interval from the actual positions of
    source-tick boundaries inside the target type:

    * lower bound: 0 when ``m = 0``, else
      ``min_i  tick_tgt(first(src, i+m)) - tick_tgt(last(src, i))``
      (the closest two instants at source distance ``m`` can sit);
    * upper bound:
      ``max_i  tick_tgt(last(src, i+n)) - tick_tgt(first(src, i))``.

    The scan runs over the source table's horizon; for the (eventually)
    periodic calendar types this is exact, and it is what the follow-up
    literature on direct multi-granularity conversions computes.  The
    caller must have established feasibility (target covers source).
    """
    if m < 0 or n < m:
        raise ValueError("invalid interval [%r, %r]" % (m, n))
    scanned = source_table.scanned_ticks()
    if scanned <= n + 1:
        # Not enough exact boundary data: fall back to the table method.
        raise ValueError(
            "horizon %d too small for direct conversion of [%d, %d]"
            % (scanned, m, n)
        )
    lower = None
    upper = None
    for i in range(scanned - n):
        first_i, last_i = source_table.bounds(i)
        if m == 0:
            low_candidate = 0
        else:
            first_im, _ = source_table.bounds(i + m)
            c_from = target.tick_of(last_i)
            c_to = target.tick_of(first_im)
            if c_from is None or c_to is None:
                return ConversionOutcome(interval=None)
            low_candidate = max(0, c_to - c_from)
        _, last_in = source_table.bounds(i + n)
        d_from = target.tick_of(first_i)
        d_to = target.tick_of(last_in)
        if d_from is None or d_to is None:
            return ConversionOutcome(interval=None)
        high_candidate = d_to - d_from
        lower = low_candidate if lower is None else min(lower, low_candidate)
        upper = high_candidate if upper is None else max(upper, high_candidate)
    if lower is None or upper is None:
        return ConversionOutcome(interval=None)
    return ConversionOutcome(interval=(lower, upper))


def covers_prefix(
    target: TemporalType,
    source: TemporalType,
    min_span_seconds: int = 40_000_000,
    max_checks: int = 200_000,
) -> bool:
    """Empirically check the A.1 feasibility condition on a prefix.

    The condition is: every instant belonging to a tick of ``source``
    belongs to some tick of ``target``.  This cannot be decided for
    arbitrary types, so we scan a prefix of the timeline:

    * a ``target`` declared :attr:`~repro.granularity.base.TemporalType.
      total` covers everything by construction - certified immediately;
    * otherwise instants are probed at the target's boundary alignment
      (target coverage is constant inside an alignment block, so one
      probe per block intersecting a source tick is exact) across at
      least ``min_span_seconds`` of timeline - the ~463-day default sees
      every weekday-pattern gap and any holiday within the first year.

    A check that would exceed ``max_checks`` probes refuses to certify
    (returns False), which merely drops a conversion - always sound.
    """
    if target.total:
        return True
    stride = max(1, target.alignment_seconds)
    checks = 0
    index = 0
    while True:
        try:
            first, last = source.tick_bounds(index)
        except ValueError:
            return True  # source ran out of ticks; prefix fully verified
        if first > min_span_seconds and index > 0:
            return True
        instant = first
        while instant <= last:
            checks += 1
            if checks > max_checks:
                return False  # refuse to certify: treat as not covering
            if source.tick_of(instant) == index and not target.covers(instant):
                return False
            instant += stride
        # Always test the very last instant of the tick as well.
        if source.tick_of(last) == index and not target.covers(last):
            return False
        index += 1
