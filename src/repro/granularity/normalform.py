"""Minimal periodic normal forms and the compiled size-table backend.

Every (eventually) periodic temporal type admits a *minimal periodic
representation* from which the appendix A.1 table quantities have
closed forms (Bettini & Mascetti; Franceschet & Montanari make the same
compact-representation move for automata over granularities - see
PAPERS.md).  This module implements that lowering:

* :func:`compile_normal_form` lowers a :class:`~repro.granularity.base.
  TemporalType` into a :class:`PeriodicNormalForm` - an aperiodic
  prefix of explicit tick bounds followed by one period of ``P`` tick
  boundary offsets repeating every ``S`` seconds.  Uniform and
  :class:`~repro.granularity.periodic.PeriodicPatternType` types lower
  *structurally* (no boundary scan at all); every other type declaring
  ``period_info()`` is lowered by scanning a single period and
  verifying the declared recurrence, two-thirds less scanning than the
  sweep table's ``3 * period + 2`` horizon.  Types beyond the scan -
  Gregorian months/years, holiday-laden business types, the
  filtered/grouped/intersection combinators, custom calendars with an
  undeclared leap cycle - are lowered by the calendar algebra
  (:mod:`repro.granularity.algebra`): direct cycle rules plus closed
  operators on compiled operand forms, every result minimized to the
  smallest period divisor and shortest aperiodic prefix.  A type can
  still refuse (period over the ``REPRO_NF_MAX_PERIOD`` budget, or
  genuinely aperiodic): the window-sweep
  :class:`~repro.granularity.sizes.SizeTable` remains the fallback
  backend - counted by ``repro_sizetable_fallback_total{reason}`` -
  and the differential reference for everything else.

* :class:`CompiledSizeTable` answers ``minsize``/``maxsize``/``mingap``
  from per-phase extrema over the doubled boundary arrays:
  ``k = q * P + r`` decomposes every query into ``q * S`` plus a
  per-residue extremum, so values are *exact for every k* (the sweep
  backend extrapolates beyond its horizon) at O(P) for the first
  probe of a residue and O(1) from the bounded memo afterwards.  The
  ``min_k_*`` searches stay the exponential-then-binary probes of the
  sweep backend, O(log cap) probes each.

* :meth:`PeriodicNormalForm.tick_of_instant` /
  :meth:`~PeriodicNormalForm.instant_of_tick` convert between instants
  and tick indices by bisection over one period of boundary offsets -
  O(log P) for *any* instant, replacing the linear scans several
  calendar types perform per ``tick_of`` call.  TAG clock evaluation
  (:mod:`repro.automata.clocks`, the matcher and the streaming layer)
  routes through :func:`clock_tick_of`/:func:`clock_distance`, which
  use the compiled form when the type certifies exact instant coverage
  and fall back to the type's own ``tick_of`` otherwise;
  :func:`clock_ticks_of` converts whole timestamp columns at once
  through :meth:`~PeriodicNormalForm.ticks_of_instants` (vectorized
  under numpy, memoized per-element otherwise) for the columnar
  matcher.

Backend selection follows the repository's environment-knob idiom:
``REPRO_SIZETABLE=auto|compiled|sweep`` (``auto``, the default, uses
the compiled backend for every type that lowers and the sweep
otherwise; ``sweep`` forces the reference backend everywhere).
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..obs import counter, span
from .base import TemporalType, UniformType
from .periodic import PeriodicPatternType
from .sizes import DEFAULT_MEMO_ENTRIES, BoundedMemo, SizeTable

try:  # pragma: no cover - exercised via the no-numpy CI job
    if os.environ.get("REPRO_NO_NUMPY"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in dev envs
    _np = None

#: Backend names accepted by :func:`resolve_backend` (and the env knob).
BACKENDS = ("auto", "compiled", "sweep")

#: Environment variable selecting the size-table backend.
ENV_VAR = "REPRO_SIZETABLE"

#: Refuse to compile periods larger than this (a scan that long is as
#: bad as the sweep it replaces; nothing in the repertoire comes close).
MAX_PERIOD_TICKS = 1 << 20

#: Environment variable bounding the compile-time budget: normal forms
#: whose period (plus aperiodic prefix) would exceed this many ticks
#: fall back to the sweep backend with a reason-labelled counter.
ENV_MAX_PERIOD = "REPRO_NF_MAX_PERIOD"


def nf_max_period() -> int:
    """The compile budget in ticks (``REPRO_NF_MAX_PERIOD``).

    Defaults to :data:`MAX_PERIOD_TICKS`; a malformed or non-positive
    value is surfaced early rather than silently ignored.
    """
    raw = os.environ.get(ENV_MAX_PERIOD)
    if raw is None or raw == "":
        return MAX_PERIOD_TICKS
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            "%s must be a positive integer, got %r" % (ENV_MAX_PERIOD, raw)
        )
    if value < 1:
        raise ValueError(
            "%s must be a positive integer, got %r" % (ENV_MAX_PERIOD, raw)
        )
    return value

_PROBES_COMPILED = counter(
    "repro_sizetable_probes_total",
    "Size-table lookups (minsize/maxsize/mingap), by backend",
    labels={"backend": "compiled"},
)
_COMPILED_HITS = counter(
    "repro_sizetable_compiled_hits_total",
    "Size-table probes answered in closed form by the compiled backend",
)
_COMPILES = counter(
    "repro_sizetable_compiles_total", "Normal-form compilations performed"
)


class NormalFormError(ValueError):
    """The type does not lower to a periodic normal form.

    ``reason`` is a small machine-readable vocabulary used by the
    ``repro_sizetable_fallback_total{reason}`` counter and the
    ``repro gran info`` provenance report:

    ``no-period``
        no lowering rule applies and the type declares no period.
    ``degenerate`` / ``verification`` / ``exhausted`` / ``aperiodic``
        a declared or derived recurrence is malformed or fails the
        boundary-scan check.
    ``over-budget``
        the form would exceed the ``REPRO_NF_MAX_PERIOD`` budget.
    ``operand``
        an algebraic operand does not itself lower.
    ``empty``
        an operator result has an empty tick (no valid temporal type).
    ``invalid``
        operator arguments outside the operator's domain.
    """

    def __init__(self, message: str, reason: str = "no-period"):
        super().__init__(message)
        self.reason = reason


def resolve_backend(override: Optional[str] = None) -> str:
    """Normalise a backend name; None reads ``REPRO_SIZETABLE``.

    Raises ValueError on names outside :data:`BACKENDS` (including a
    malformed environment variable, surfaced early rather than being
    silently treated as a default).
    """
    value = override if override is not None else os.environ.get(ENV_VAR)
    if value is None or value == "":
        return "auto"
    if value not in BACKENDS:
        raise ValueError(
            "unknown size-table backend %r (expected one of %r)"
            % (value, BACKENDS)
        )
    return value


@dataclass(frozen=True)
class PeriodicNormalForm:
    """One type's minimal periodic representation.

    ``prefix_firsts``/``prefix_lasts`` are the bounds of the leading
    aperiodic ticks (empty for every type the compiler currently
    emits - kept in the form because conversion outputs and hand-built
    forms may carry one); from tick ``len(prefix_firsts)`` on, tick
    ``prefix + q * period_ticks + r`` spans
    ``(firsts[r] + q * period_seconds, lasts[r] + q * period_seconds)``.

    ``exact_cover`` certifies that every instant inside a tick's bounds
    belongs to that tick (no interior gaps): only then may
    :meth:`tick_of_instant` replace the type's own ``tick_of``.  Size
    queries need bounds only and are valid either way.
    """

    label: str
    period_ticks: int
    period_seconds: int
    firsts: Tuple[int, ...]
    lasts: Tuple[int, ...]
    prefix_firsts: Tuple[int, ...] = ()
    prefix_lasts: Tuple[int, ...] = ()
    exact_cover: bool = False
    source: str = "scanned"
    #: Which lowering rule produced the form (compile provenance shown
    #: by ``repro gran info``); empty for hand-built forms.
    rule: str = ""
    #: ``(period_ticks, prefix_ticks)`` before minimization when the
    #: minimization pass shrank the form, else None.
    minimized_from: Optional[Tuple[int, int]] = None
    #: Covered instants per period (exact under ``exact_cover``, an
    #: upper bound otherwise - interior tick gaps are invisible to a
    #: boundary representation).
    period_instants: int = field(init=False)
    #: Uncovered runs between consecutive ticks of one period, as
    #: ``(offset_from_firsts[0], length)`` pairs including the wrap to
    #: the next period's first tick.
    gap_runs: Tuple[Tuple[int, int], ...] = field(init=False)

    def __post_init__(self) -> None:
        P, S = self.period_ticks, self.period_seconds
        if P < 1 or S < 1:
            raise NormalFormError(
                "period must be at least one tick/second", reason="invalid"
            )
        if len(self.firsts) != P or len(self.lasts) != P:
            raise NormalFormError(
                "boundary arrays must cover one period", reason="invalid"
            )
        if len(self.prefix_firsts) != len(self.prefix_lasts):
            raise NormalFormError(
                "prefix arrays must have equal length", reason="invalid"
            )
        bounds = list(zip(self.prefix_firsts, self.prefix_lasts))
        bounds += list(zip(self.firsts, self.lasts))
        previous_last = None
        for first, last in bounds:
            if first > last:
                raise NormalFormError(
                    "a tick has inverted bounds", reason="invalid"
                )
            if previous_last is not None and first <= previous_last:
                raise NormalFormError(
                    "ticks are not strictly ordered", reason="invalid"
                )
            previous_last = last
        if self.prefix_lasts and self.prefix_lasts[-1] >= self.firsts[0]:
            raise NormalFormError(
                "prefix overlaps the periodic part", reason="invalid"
            )
        if self.lasts[-1] - self.firsts[0] >= S:
            raise NormalFormError(
                "one period of ticks exceeds the period", reason="invalid"
            )
        object.__setattr__(
            self,
            "period_instants",
            sum(l - f + 1 for f, l in zip(self.firsts, self.lasts)),
        )
        runs = []
        for r in range(P):
            gap_from = self.lasts[r] + 1
            gap_to = self.firsts[r + 1] if r + 1 < P else self.firsts[0] + S
            if gap_to > gap_from:
                runs.append((gap_from - self.firsts[0], gap_to - gap_from))
        object.__setattr__(self, "gap_runs", tuple(runs))

    # ------------------------------------------------------------------
    # Tick/instant conversion (O(log P) bisection)
    # ------------------------------------------------------------------
    @property
    def prefix_ticks(self) -> int:
        return len(self.prefix_firsts)

    def instant_of_tick(self, index: int) -> Tuple[int, int]:
        """Exact ``(first, last)`` bounds of any tick index, O(1)."""
        if index < 0:
            raise ValueError("tick index must be non-negative")
        B = len(self.prefix_firsts)
        if index < B:
            return self.prefix_firsts[index], self.prefix_lasts[index]
        q, r = divmod(index - B, self.period_ticks)
        shift = q * self.period_seconds
        return self.firsts[r] + shift, self.lasts[r] + shift

    def tick_of_instant(self, second: int) -> Optional[int]:
        """Tick index covering ``second``, or None in a gap.

        Only meaningful as a ``tick_of`` replacement under
        ``exact_cover``; without it, an instant inside a tick's bounds
        may still be a gap of the underlying type.
        """
        if second < self.firsts[0]:
            if not self.prefix_firsts or second < self.prefix_firsts[0]:
                return None
            slot = bisect_right(self.prefix_firsts, second) - 1
            if second > self.prefix_lasts[slot]:
                return None
            return slot
        q, w = divmod(second - self.firsts[0], self.period_seconds)
        w += self.firsts[0]
        slot = bisect_right(self.firsts, w) - 1
        if w > self.lasts[slot]:
            return None
        return len(self.prefix_firsts) + q * self.period_ticks + slot

    def distance(self, t1: int, t2: int) -> Optional[int]:
        """Tick distance ``tick_of(t2) - tick_of(t1)``, or None."""
        z1 = self.tick_of_instant(t1)
        if z1 is None:
            return None
        z2 = self.tick_of_instant(t2)
        if z2 is None:
            return None
        return z2 - z1

    # ------------------------------------------------------------------
    # Covered-instant bisection (the calendar-algebra building blocks)
    # ------------------------------------------------------------------
    def tick_starting_at_or_after(self, second: int) -> int:
        """Index of the first tick whose *first* instant is >= second."""
        B = len(self.prefix_firsts)
        if self.prefix_firsts and second <= self.prefix_firsts[-1]:
            return bisect_left(self.prefix_firsts, second)
        f0 = self.firsts[0]
        if second <= f0:
            return B
        q, w = divmod(second - f0, self.period_seconds)
        slot = bisect_left(self.firsts, w + f0)
        if slot == self.period_ticks:
            q, slot = q + 1, 0
        return B + q * self.period_ticks + slot

    def first_covered_at_or_after(self, second: int) -> Optional[int]:
        """First instant >= second inside some tick's bounds, or None.

        A *bounds*-coverage question: only meaningful as an instant
        query under ``exact_cover`` (the algebra operators require it
        of their operands).  Never None for a periodic form - every
        period has at least one tick ahead.
        """
        tick = self.tick_of_instant(second)
        if tick is not None:
            return second
        index = self.tick_starting_at_or_after(second)
        return self.instant_of_tick(index)[0]

    def last_covered_at_or_before(self, second: int) -> Optional[int]:
        """Last instant <= second inside some tick's bounds, or None."""
        tick = self.tick_of_instant(second)
        if tick is not None:
            return second
        index = self.tick_starting_at_or_after(second)
        if index == 0:
            return None
        return self.instant_of_tick(index - 1)[1]

    # ------------------------------------------------------------------
    # Batched conversion (whole event columns in one numpy pass)
    # ------------------------------------------------------------------
    def ticks_of_instants(self, seconds):
        """``tick_of_instant`` over a whole sequence.

        Returns ``(ticks, defined)`` parallel lists: ``ticks[i]`` is the
        covering tick index (0 where undefined) and ``defined[i]`` is
        1/0 coverage.  The periodic part vectorizes to one divmod plus
        one ``searchsorted`` over the period arrays (int64 arithmetic,
        bit-identical to the scalar bisection); instants before the
        periodic start fall back to the scalar path per element.
        """
        arrays = self._batch_arrays()
        if arrays is None:
            ticks, defined = [], []
            for t in seconds:
                z = self.tick_of_instant(int(t))
                ticks.append(0 if z is None else z)
                defined.append(0 if z is None else 1)
            return ticks, defined
        np_firsts, np_lasts = arrays
        t = _np.asarray(seconds, dtype=_np.int64)
        f0 = self.firsts[0]
        B = len(self.prefix_firsts)
        q, w = _np.divmod(t - f0, self.period_seconds)
        slot = _np.searchsorted(np_firsts, w + f0, side="right") - 1
        defined = (w + f0) <= np_lasts[slot]
        ticks = B + q * self.period_ticks + slot
        pre = t < f0
        if bool(pre.any()):
            for i in _np.flatnonzero(pre):
                z = self.tick_of_instant(int(t[i]))
                ticks[i] = 0 if z is None else z
                defined[i] = z is not None
        ticks = _np.where(defined, ticks, 0)
        return ticks.tolist(), defined.astype(_np.int64).tolist()

    def _batch_arrays(self):
        """Cached int64 period arrays, or None when numpy can't apply."""
        cached = getattr(self, "_batch_cache", False)
        if cached is not False:
            return cached
        arrays = None
        if _np is not None and -(2 ** 62) < self.firsts[0] and (
            self.lasts[-1] + self.period_seconds < 2 ** 62
        ):
            arrays = (
                _np.asarray(self.firsts, dtype=_np.int64),
                _np.asarray(self.lasts, dtype=_np.int64),
            )
        object.__setattr__(self, "_batch_cache", arrays)
        return arrays

    def describe(self) -> dict:
        """JSON-friendly summary (the ``repro gran info`` payload)."""
        info = {
            "label": self.label,
            "source": self.source,
            "rule": self.rule or self.source,
            "period_ticks": self.period_ticks,
            "period_seconds": self.period_seconds,
            "period_instants": self.period_instants,
            "prefix_ticks": self.prefix_ticks,
            "gap_runs": len(self.gap_runs),
            "gap_seconds": sum(length for _, length in self.gap_runs),
            "exact_cover": self.exact_cover,
        }
        if self.minimized_from is not None:
            info["minimized_from_period"] = self.minimized_from[0]
            info["minimized_from_prefix"] = self.minimized_from[1]
        return info


# ----------------------------------------------------------------------
# The compiler
# ----------------------------------------------------------------------
def _structural_form(ttype: TemporalType) -> Optional[PeriodicNormalForm]:
    """Lower types whose representation *is* the normal form, scan-free."""
    if isinstance(ttype, UniformType):
        return PeriodicNormalForm(
            label=ttype.label,
            period_ticks=1,
            period_seconds=ttype.seconds_per_tick,
            firsts=(ttype.phase,),
            lasts=(ttype.phase + ttype.seconds_per_tick - 1,),
            exact_cover=True,
            source="structural",
            rule="uniform",
        )
    if isinstance(ttype, PeriodicPatternType):
        firsts = tuple(ttype.phase + o for o, _ in ttype.segments)
        lasts = tuple(
            ttype.phase + o + length - 1 for o, length in ttype.segments
        )
        return PeriodicNormalForm(
            label=ttype.label,
            period_ticks=len(ttype.segments),
            period_seconds=ttype.cycle_seconds,
            firsts=firsts,
            lasts=lasts,
            exact_cover=True,
            source="structural",
            rule="pattern",
        )
    return None


def _covers_whole_bounds(ttype: TemporalType) -> bool:
    """Does every instant inside a tick's bounds belong to that tick?

    Structural knowledge only - never answered by scanning: a total
    type has no gaps at all, and day-based types whose ticks are single
    days (business days) or contiguous day runs of a total calendar are
    handled by their own classes' guarantees via ``total``.  Everything
    else conservatively answers False, keeping ``tick_of`` fallbacks
    exact.
    """
    if ttype.total:
        return True
    from .business import BusinessDayType
    from .combinators import (
        FilteredType,
        NthSubgranuleType,
        ShiftedType,
        UnionType,
    )
    from .intersection import IntersectionType

    if isinstance(ttype, BusinessDayType):
        # Each tick is exactly one day - contiguous by construction
        # (a holiday set removes whole ticks, never interior instants).
        return True
    if isinstance(ttype, IntersectionType):
        # An instant inside an overlap window lies inside both operand
        # ticks, hence inside the intersection tick, when both operands
        # certify exact coverage themselves.
        return _covers_whole_bounds(ttype.a) and _covers_whole_bounds(
            ttype.b
        )
    if isinstance(ttype, UnionType):
        # Ticks are maximal covered runs: no interior gap can survive
        # when both operands cover their own bounds exactly.
        return _covers_whole_bounds(ttype.a) and _covers_whole_bounds(
            ttype.b
        )
    if isinstance(ttype, (FilteredType, ShiftedType)):
        # Selection and shift keep each tick's instant set equal to one
        # base tick's (shifted for ShiftedType).
        return _covers_whole_bounds(ttype.base)
    if isinstance(ttype, NthSubgranuleType):
        # Each tick is exactly one fine tick's instant set.
        return _covers_whole_bounds(ttype.fine)
    return False


def compile_normal_form(ttype: TemporalType) -> PeriodicNormalForm:
    """Lower a temporal type to its minimal periodic normal form.

    Three lowering stages, first match wins, each followed by the
    minimization pass of :mod:`repro.granularity.algebra`:

    1. *structural* - uniform and periodic-pattern types whose
       representation is the form;
    2. *scanned* - types declaring ``period_info()``, lowered by
       scanning one period and verifying the declared recurrence;
    3. *algebraic* - the calendar-algebra rules (Gregorian 400-year
       cycle, business overlays, combinator operators on the operands'
       compiled forms).

    Raises :class:`NormalFormError` (with a machine-readable
    ``reason``) when no stage applies, a recurrence fails verification,
    or the form would exceed the ``REPRO_NF_MAX_PERIOD`` budget.  The
    compilation is recorded under a ``sizetable.compile`` span and
    counts into ``repro_sizetable_compiles_total``.
    """
    from .algebra import lower_algebraic, minimize_form

    with span("sizetable.compile", label=ttype.label) as compile_span:
        _COMPILES.inc()
        form = _structural_form(ttype)
        if form is None:
            form = _scanned_form(ttype)
        if form is None:
            form = lower_algebraic(ttype)
        if form is None:
            raise NormalFormError(
                "type %r declares no exact period and no algebra "
                "lowering rule applies" % (ttype.label,)
            )
        form = minimize_form(form)
        compile_span.set(
            source=form.source, rule=form.rule, period=form.period_ticks
        )
        return form


def _scanned_form(ttype: TemporalType) -> Optional[PeriodicNormalForm]:
    """Lower a type declaring ``period_info()`` by a one-period scan.

    None when the type declares no period (the algebra rules get their
    turn); raises on a malformed, over-budget or unverifiable
    declaration (a declared period that fails its own recurrence is an
    error, never a silent fallback to a different rule).
    """
    period_info = getattr(ttype, "period_info", None)
    info = period_info() if callable(period_info) else None
    if info is None:
        return None
    P, S = int(info[0]), int(info[1])
    if P < 1 or S < 1:
        raise NormalFormError(
            "type %r declares a degenerate period" % (ttype.label,),
            reason="degenerate",
        )
    if P > nf_max_period():
        raise NormalFormError(
            "period of %r too large to compile (%d ticks)" % (ttype.label, P),
            reason="over-budget",
        )
    bounds = []
    try:
        for index in range(P + 1):
            bounds.append(ttype.tick_bounds(index))
    except ValueError as exc:
        raise NormalFormError(
            "type %r ran out of ticks inside one period" % (ttype.label,),
            reason="exhausted",
        ) from exc
    first0, last0 = bounds[0]
    if bounds[P] != (first0 + S, last0 + S):
        raise NormalFormError(
            "declared period of %r fails verification: tick %d is %r, "
            "expected %r"
            % (ttype.label, P, bounds[P], (first0 + S, last0 + S)),
            reason="verification",
        )
    return PeriodicNormalForm(
        label=ttype.label,
        period_ticks=P,
        period_seconds=S,
        firsts=tuple(first for first, _ in bounds[:P]),
        lasts=tuple(last for _, last in bounds[:P]),
        exact_cover=_covers_whole_bounds(ttype),
        source="scanned",
        rule="period-scan",
    )


def explain_normal_form(ttype: TemporalType) -> dict:
    """Compile provenance for ``repro gran info``.

    On success, the form's :meth:`~PeriodicNormalForm.describe` payload
    plus ``compiles: True``; on failure a structured
    ``{compiles: False, reason, detail}`` record instead of a bare
    exception.
    """
    try:
        form = compile_normal_form(ttype)
    except NormalFormError as exc:
        return {
            "compiles": False,
            "label": ttype.label,
            "reason": exc.reason,
            "detail": str(exc),
        }
    info = form.describe()
    info["compiles"] = True
    return info


_FORM_CACHE_ATTR = "_normal_form_cache"

_FALLBACK_COUNTERS: dict = {}


def _count_fallback(reason: str) -> None:
    """Bump ``repro_sizetable_fallback_total{reason}`` (lazy registry)."""
    fallback = _FALLBACK_COUNTERS.get(reason)
    if fallback is None:
        fallback = counter(
            "repro_sizetable_fallback_total",
            "Types that fell back to the sweep backend, by compile-failure "
            "reason",
            labels={"reason": reason},
        )
        _FALLBACK_COUNTERS[reason] = fallback
    fallback.inc()


def cached_normal_form(ttype: TemporalType) -> Optional[PeriodicNormalForm]:
    """Compile once per type instance; None when the type doesn't lower.

    The form (or the negative answer) is cached on the instance, so
    repeated table construction, clock evaluation and fork-inherited
    worker state all share a single compilation.  Each negative answer
    counts into ``repro_sizetable_fallback_total{reason}`` once.
    """
    cached = ttype.__dict__.get(_FORM_CACHE_ATTR, False)
    if cached is not False:
        return cached
    try:
        form: Optional[PeriodicNormalForm] = compile_normal_form(ttype)
    except NormalFormError as exc:
        _count_fallback(exc.reason)
        form = None
    try:
        setattr(ttype, _FORM_CACHE_ATTR, form)
    except AttributeError:  # pragma: no cover - slotted third-party type
        pass
    return form


# ----------------------------------------------------------------------
# The compiled size-table backend
# ----------------------------------------------------------------------
class CompiledSizeTable:
    """Closed-form size table over a periodic normal form.

    Drop-in compatible with :class:`~repro.granularity.sizes.SizeTable`
    (``minsize``/``maxsize``/``mingap``, the ``min_k_*`` searches,
    ``bounds``/``scanned_ticks``/``probe_stats`` and the
    ``probes``/``probe_hits`` counters) but *exact for every k*: a
    query decomposes into whole periods plus a per-residue extremum
    over the doubled boundary arrays, O(period) for the first probe of
    a residue and O(1) from the bounded memo afterwards.

    ``bounds``/``scanned_ticks`` mirror the sweep backend's virtual
    horizon (``max(horizon, 3 * period + 2)``) so the direct
    boundary-scan conversion visits the identical index range and both
    backends produce bit-identical conversion outcomes.
    """

    backend = "compiled"

    def __init__(
        self,
        ttype: TemporalType,
        form: Optional[PeriodicNormalForm] = None,
        horizon: int = 512,
        memo_entries: int = DEFAULT_MEMO_ENTRIES,
    ):
        if form is None:
            form = compile_normal_form(ttype)
        self.ttype = ttype
        self.form = form
        P = form.period_ticks
        S = form.period_seconds
        self._P = P
        self._S = S
        self._B = form.prefix_ticks
        self._firsts = form.firsts
        self._lasts = form.lasts
        # Doubled arrays: index j in [0, 2P) is tick j of the periodic
        # part, second copy shifted one period - every window of up to
        # one period starting anywhere in a period stays in range.
        self._firsts_ext = form.firsts + tuple(f + S for f in form.firsts)
        self._lasts_ext = form.lasts + tuple(l + S for l in form.lasts)
        if _np is not None and self._lasts_ext[-1] < 2 ** 62:
            # int64 subtraction and extrema are exact, so the
            # vectorized residue probe stays bit-identical to python.
            self._np_firsts = _np.asarray(self._firsts, dtype=_np.int64)
            self._np_lasts = _np.asarray(self._lasts, dtype=_np.int64)
            self._np_firsts_ext = _np.asarray(
                self._firsts_ext, dtype=_np.int64
            )
            self._np_lasts_ext = _np.asarray(self._lasts_ext, dtype=_np.int64)
        else:
            self._np_firsts = None
        # Mirror the sweep backend's virtual horizon *exactly*: the
        # sweep widens to 3 * declared-period + 2 only for types that
        # declare period_info() themselves.  Algebra-lowered types
        # (months, business overlays) declare none, so their sweep
        # horizon - and hence the index range the direct boundary-scan
        # conversion visits - stays at the caller's horizon; widening
        # here would change conversion outcomes between backends.
        declared = getattr(ttype, "period_info", None)
        info = declared() if callable(declared) else None
        if info is not None:
            self.horizon = max(horizon, 3 * int(info[0]) + 2)
        else:
            self.horizon = horizon
        self._min_base = BoundedMemo(memo_entries)
        self._max_base = BoundedMemo(memo_entries)
        self._gap_base = BoundedMemo(memo_entries)
        self.probes = 0
        self.probe_hits = 0
        #: Probes answered in closed form (everything the memo did not).
        self.compiled_hits = 0

    # ------------------------------------------------------------------
    # SizeTable-compatible boundary access
    # ------------------------------------------------------------------
    def bounds(self, index: int):
        """Exact ``tick_bounds``; None beyond the virtual horizon.

        The None cut-off mirrors the sweep backend's horizon so both
        backends expose the identical scan range to the direct
        conversion (the closed form itself has no horizon).
        """
        if index < 0:
            raise ValueError("tick index must be non-negative")
        if index >= self.horizon:
            return None
        return self.form.instant_of_tick(index)

    def scanned_ticks(self) -> int:
        """Ticks with exactly-known boundaries (the virtual horizon)."""
        return self.horizon

    @property
    def memo_evictions(self) -> int:
        """Entries the LRU bound evicted across the residue memos."""
        return (
            self._min_base.evictions
            + self._max_base.evictions
            + self._gap_base.evictions
        )

    def probe_stats(self) -> dict:
        """JSON-friendly counters of table probes and memo hits."""
        return {
            "backend": self.backend,
            "probes": self.probes,
            "memo_hits": self.probe_hits,
            "scanned_ticks": self._B + self._P,
            "memo_evictions": self.memo_evictions,
            "compiled_hits": self.compiled_hits,
        }

    # ------------------------------------------------------------------
    # Per-residue extrema (the per-phase arrays behind the closed forms)
    # ------------------------------------------------------------------
    def _min_span_base(self, r: int) -> int:
        """``min`` span of ``r`` consecutive periodic ticks, r in [1, P].

        The window end for phase ``a`` is tick ``a + r - 1`` of the
        doubled array, so one pass over an aligned slice visits every
        phase - this is the hot loop of a residue's first probe
        (vectorized when numpy is importable, zip over tuple slices
        otherwise; int64 arithmetic keeps both paths bit-identical).
        """
        if self._np_firsts is not None:
            ends = self._np_lasts_ext[r - 1 : r - 1 + self._P]
            return int((ends - self._np_firsts).min()) + 1
        ends = self._lasts_ext[r - 1 : r - 1 + self._P]
        return min(e - f for e, f in zip(ends, self._firsts)) + 1

    def _max_span_base(self, r: int) -> int:
        if self._np_firsts is not None:
            ends = self._np_lasts_ext[r - 1 : r - 1 + self._P]
            return int((ends - self._np_firsts).max()) + 1
        ends = self._lasts_ext[r - 1 : r - 1 + self._P]
        return max(e - f for e, f in zip(ends, self._firsts)) + 1

    def _gap_base_value(self, r: int) -> int:
        """``min first(a + r) - last(a)`` over periodic phases, r in [0, P)."""
        if self._np_firsts is not None:
            starts = self._np_firsts_ext[r : r + self._P]
            return int((starts - self._np_lasts).min())
        starts = self._firsts_ext[r : r + self._P]
        return min(f - l for f, l in zip(starts, self._lasts))

    def _prefix_spans(self, k: int):
        """Spans of the k-windows starting inside the aperiodic prefix."""
        form = self.form
        for a in range(self._B):
            first, _ = form.instant_of_tick(a)
            _, last = form.instant_of_tick(a + k - 1)
            yield last - first + 1

    # ------------------------------------------------------------------
    # Table entries (exact for every k)
    # ------------------------------------------------------------------
    def minsize(self, k: int) -> int:
        """Minimum span (in seconds) of ``k`` consecutive ticks; exact."""
        if k < 0:
            raise ValueError("k must be non-negative")
        if k == 0:
            return 0
        self.probes += 1
        _PROBES_COMPILED.inc()
        q, r = divmod(k - 1, self._P)
        r += 1
        base = self._min_base.get(r)
        if base is not None:
            self.probe_hits += 1
        else:
            base = self._min_span_base(r)
            self._min_base.put(r, base)
            self.compiled_hits += 1
            _COMPILED_HITS.inc()
        value = q * self._S + base
        if self._B:
            value = min(value, min(self._prefix_spans(k)))
        return value

    def maxsize(self, k: int) -> int:
        """Maximum span (in seconds) of ``k`` consecutive ticks; exact."""
        if k < 0:
            raise ValueError("k must be non-negative")
        if k == 0:
            return 0
        self.probes += 1
        _PROBES_COMPILED.inc()
        q, r = divmod(k - 1, self._P)
        r += 1
        base = self._max_base.get(r)
        if base is not None:
            self.probe_hits += 1
        else:
            base = self._max_span_base(r)
            self._max_base.put(r, base)
            self.compiled_hits += 1
            _COMPILED_HITS.inc()
        value = q * self._S + base
        if self._B:
            value = max(value, max(self._prefix_spans(k)))
        return value

    def mingap(self, k: int) -> int:
        """Minimum of ``first(i + k) - last(i)`` over all ``i``; exact."""
        if k < 0:
            raise ValueError("k must be non-negative")
        self.probes += 1
        _PROBES_COMPILED.inc()
        q, r = divmod(k, self._P)
        base = self._gap_base.get(r)
        if base is not None:
            self.probe_hits += 1
        else:
            base = self._gap_base_value(r)
            self._gap_base.put(r, base)
            self.compiled_hits += 1
            _COMPILED_HITS.inc()
        value = q * self._S + base
        if self._B:
            form = self.form
            for a in range(self._B):
                _, last = form.instant_of_tick(a)
                first, _ = form.instant_of_tick(a + k)
                value = min(value, first - last)
        return value

    # ------------------------------------------------------------------
    # Searches used by the conversion algorithm
    # ------------------------------------------------------------------
    def min_k_with_minsize_at_least(
        self, target: int, cap: int = 1 << 24
    ) -> Optional[int]:
        """Smallest ``k`` with ``minsize(k) >= target``, or None past cap."""
        if target <= 0:
            return 0
        hi = 1
        while self.minsize(hi) < target:
            hi *= 2
            if hi > cap:
                return None
        lo = hi // 2
        while lo < hi:
            mid = (lo + hi) // 2
            if self.minsize(mid) >= target:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def min_k_with_maxsize_greater(
        self, target: int, cap: int = 1 << 24
    ) -> Optional[int]:
        """Smallest ``k`` with ``maxsize(k) > target``, or None past cap."""
        if self.maxsize(0) > target:
            return 0
        hi = 1
        while self.maxsize(hi) <= target:
            hi *= 2
            if hi > cap:
                return None
        lo = hi // 2
        while lo < hi:
            mid = (lo + hi) // 2
            if self.maxsize(mid) > target:
                hi = mid
            else:
                lo = mid + 1
        return lo


# ----------------------------------------------------------------------
# Backend-aware construction and the fast clock path
# ----------------------------------------------------------------------
def build_size_table(
    ttype: TemporalType,
    horizon: int = 512,
    backend: Optional[str] = None,
    form: Optional[PeriodicNormalForm] = None,
):
    """Construct the size table the selected backend dictates.

    ``auto`` compiles when the type lowers and sweeps otherwise;
    ``compiled`` raises :class:`NormalFormError` for types that do not
    lower (an explicit request must not silently degrade); ``sweep``
    always builds the reference table.  ``form`` short-circuits
    compilation with a pre-compiled normal form (the conversion cache
    ships forms to fork-pool workers this way).
    """
    resolved = resolve_backend(backend)
    if resolved == "sweep":
        return SizeTable(ttype, horizon=horizon)
    if form is None:
        form = cached_normal_form(ttype)
    if form is None:
        if resolved == "compiled":
            raise NormalFormError(
                "REPRO_SIZETABLE=compiled but type %r does not lower to "
                "a periodic normal form" % (ttype.label,)
            )
        return SizeTable(ttype, horizon=horizon)
    return CompiledSizeTable(ttype, form=form, horizon=horizon)


def clock_form(ttype: TemporalType) -> Optional[PeriodicNormalForm]:
    """The normal form backing fast clock evaluation, or None.

    None whenever the backend is ``sweep`` (the reference path must
    exercise the types' own ``tick_of``), the type does not lower, or
    the form cannot certify exact instant coverage (a boundary-only
    form must not decide coverage questions).
    """
    if resolve_backend() == "sweep":
        return None
    form = cached_normal_form(ttype)
    if form is None or not form.exact_cover:
        return None
    return form


def clock_tick_of(ttype: TemporalType, second: int) -> Optional[int]:
    """``tick_of`` via O(log P) bisection when the type lowers."""
    form = clock_form(ttype)
    if form is not None:
        return form.tick_of_instant(second)
    return ttype.tick_of(second)


def clock_distance(ttype: TemporalType, t1: int, t2: int) -> Optional[int]:
    """``distance`` via O(log P) bisection when the type lowers."""
    form = clock_form(ttype)
    if form is not None:
        return form.distance(t1, t2)
    return ttype.distance(t1, t2)


def clock_ticks_of(ttype: TemporalType, seconds):
    """Batched ``clock_tick_of`` over a whole timestamp column.

    Returns ``(ticks, defined)`` parallel lists (tick 0 where
    undefined).  With a compiled exact-cover form the whole column
    reduces to one vectorized divmod + ``searchsorted`` pass
    (:meth:`PeriodicNormalForm.ticks_of_instants`); under the sweep
    backend, or for types that do not lower, each element goes through
    the type's own ``tick_of`` with a per-value memo - the reference
    path the vectorized kernel is differentially tested against.
    """
    form = clock_form(ttype)
    if form is not None:
        return form.ticks_of_instants(seconds)
    ticks, defined = [], []
    memo: dict = {}
    for t in seconds:
        t = int(t)
        if t in memo:
            z = memo[t]
        else:
            z = ttype.tick_of(t)
            memo[t] = z
        ticks.append(0 if z is None else z)
        defined.append(0 if z is None else 1)
    return ticks, defined
