"""Proleptic Gregorian calendar arithmetic, built from scratch.

The absolute timeline of this library is a sequence of integer *seconds*
starting at an epoch.  The epoch is second ``0`` = 00:00:00 on day ``0``,
which is declared to be **Monday, January 1 of epoch year 2000** of a
synthetic proleptic Gregorian calendar (standard Gregorian month lengths
and leap rules; the weekday anchoring is synthetic and documented, since
the library never needs to agree with the real-world calendar, only to be
a *valid temporal-type system* in the sense of the paper).

All functions here work on non-negative day indices and are pure integer
arithmetic; no ``datetime`` is used anywhere in the core library.
"""

from __future__ import annotations

from typing import Tuple

#: Seconds per day on the absolute timeline.
SECONDS_PER_DAY = 86400

#: Seconds per hour / minute, for convenience.
SECONDS_PER_HOUR = 3600
SECONDS_PER_MINUTE = 60

#: Calendar year of day index 0.
EPOCH_YEAR = 2000

#: Weekday of day index 0 (0 = Monday .. 6 = Sunday).
EPOCH_WEEKDAY = 0

#: Days in a full 400-year Gregorian cycle.
DAYS_PER_400_YEARS = 146097

#: Days in a non-leap 100-year sub-cycle.
DAYS_PER_100_YEARS = 36524

#: Days in a leap-every-4 4-year sub-cycle.
DAYS_PER_4_YEARS = 1461

#: Months in a full 400-year Gregorian cycle.
MONTHS_PER_400_YEARS = 4800

#: Days in each month of a non-leap year (public: the calendar-algebra
#: boundary generator vectorizes over this table).
DAYS_IN_MONTH_COMMON = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)

_DAYS_IN_MONTH = DAYS_IN_MONTH_COMMON

# Cumulative days before each month in a non-leap year.
_CUM_DAYS = (0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334)


def is_leap_year(year: int) -> bool:
    """Return True if ``year`` is a Gregorian leap year."""
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def days_in_year(year: int) -> int:
    """Return the number of days in ``year`` (365 or 366)."""
    return 366 if is_leap_year(year) else 365


def days_in_month(year: int, month: int) -> int:
    """Return the number of days in ``month`` (1-12) of ``year``."""
    if not 1 <= month <= 12:
        raise ValueError("month must be in 1..12, got %r" % (month,))
    if month == 2 and is_leap_year(year):
        return 29
    return _DAYS_IN_MONTH[month - 1]


def _days_before_year_abs(year: int) -> int:
    """Days from January 1 of proleptic year 1 to January 1 of ``year``."""
    y = year - 1
    return y * 365 + y // 4 - y // 100 + y // 400


#: Day index 0 expressed as days since January 1 of proleptic year 1.
_EPOCH_OFFSET = _days_before_year_abs(EPOCH_YEAR)


def _days_before_year(year: int) -> int:
    """Days between the epoch and January 1 of ``year`` (may be negative)."""
    return _days_before_year_abs(year) - _EPOCH_OFFSET


def _days_before_month(year: int, month: int) -> int:
    """Days between January 1 of ``year`` and the first of ``month``."""
    extra = 1 if month > 2 and is_leap_year(year) else 0
    return _CUM_DAYS[month - 1] + extra


def ymd_to_day(year: int, month: int, day: int) -> int:
    """Convert a calendar date to a day index (day 0 = epoch).

    ``day`` is 1-based within the month, as in ordinary usage.
    """
    if not 1 <= day <= days_in_month(year, month):
        raise ValueError("invalid day %r for %r-%r" % (day, year, month))
    return _days_before_year(year) + _days_before_month(year, month) + day - 1


def day_to_ymd(day_index: int) -> Tuple[int, int, int]:
    """Convert a day index back to a ``(year, month, day)`` tuple.

    Uses the standard year-1-anchored cycle decomposition (the 4-year
    and 400-year sub-cycles end with their leap year, so anchoring at
    year 1 makes all quotient arithmetic exact).
    """
    days = day_index + _EPOCH_OFFSET  # days since Jan 1 of year 1
    n400, days = divmod(days, DAYS_PER_400_YEARS)
    year = n400 * 400 + 1
    n100, days = divmod(days, DAYS_PER_100_YEARS)
    n4, days = divmod(days, DAYS_PER_4_YEARS)
    n1, days = divmod(days, 365)
    year += n100 * 100 + n4 * 4 + n1
    if n1 == 4 or n100 == 4:
        # December 31 of the leap year closing a 4- or 400-year cycle.
        return year - 1, 12, 31
    # ``days`` is now the 0-based ordinal day within ``year``.
    month = 1
    while days >= days_in_month(year, month):
        days -= days_in_month(year, month)
        month += 1
    return year, month, days + 1


def weekday(day_index: int) -> int:
    """Weekday of a day index: 0 = Monday .. 6 = Sunday."""
    return (day_index + EPOCH_WEEKDAY) % 7


def month_index_of_day(day_index: int) -> int:
    """Absolute month index (0 = the epoch month) containing a day index."""
    year, month, _ = day_to_ymd(day_index)
    return (year - EPOCH_YEAR) * 12 + (month - 1)


def month_bounds(month_index: int) -> Tuple[int, int]:
    """First and last day index (inclusive) of an absolute month index."""
    year = EPOCH_YEAR + month_index // 12
    month = month_index % 12 + 1
    first = ymd_to_day(year, month, 1)
    return first, first + days_in_month(year, month) - 1


def year_index_of_day(day_index: int) -> int:
    """Absolute year index (0 = the epoch year) containing a day index."""
    year, _, _ = day_to_ymd(day_index)
    return year - EPOCH_YEAR


def year_bounds(year_index: int) -> Tuple[int, int]:
    """First and last day index (inclusive) of an absolute year index."""
    year = EPOCH_YEAR + year_index
    first = ymd_to_day(year, 1, 1)
    return first, first + days_in_year(year) - 1


# ----------------------------------------------------------------------
# 400-year-cycle length tables (the calendar-algebra lowering source)
# ----------------------------------------------------------------------
# The epoch year 2000 is divisible by 400, so day 0 starts a full
# Gregorian cycle: months and years are exactly periodic with period
# MONTHS_PER_400_YEARS / 400 ticks over DAYS_PER_400_YEARS days, with
# no aperiodic prefix.  These pure-python generators are the reference
# the numpy-vectorized boundary generator in
# :mod:`repro.granularity.algebra` is checked against.

_CYCLE_CACHE: dict = {}


def cycle_month_lengths() -> Tuple[int, ...]:
    """Day lengths of the 4800 months of one cycle from the epoch."""
    cached = _CYCLE_CACHE.get("months")
    if cached is None:
        cached = tuple(
            days_in_month(year, month)
            for year in range(EPOCH_YEAR, EPOCH_YEAR + 400)
            for month in range(1, 13)
        )
        _CYCLE_CACHE["months"] = cached
    return cached


def cycle_year_lengths() -> Tuple[int, ...]:
    """Day lengths of the 400 years of one cycle from the epoch."""
    cached = _CYCLE_CACHE.get("years")
    if cached is None:
        cached = tuple(
            days_in_year(year)
            for year in range(EPOCH_YEAR, EPOCH_YEAR + 400)
        )
        _CYCLE_CACHE["years"] = cached
    return cached
