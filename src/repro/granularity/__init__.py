"""Temporal types (time granularities) and conversions between them.

This package implements Section 2 and appendix A.1 of the paper: the
formal model of granularities over a discrete absolute timeline, the
standard calendar and business-calendar types, size tables, and the
constraint-conversion algorithm of Figure 3.
"""

from .base import DayBasedType, TemporalType, UniformType
from .business import (
    BusinessDayType,
    BusinessMonthType,
    BusinessWeekType,
    business_day,
    business_month,
    business_week,
)
from .calendar import (
    MonthType,
    YearType,
    day,
    hour,
    minute,
    month,
    second,
    week,
    year,
)
from .algebra import (
    FormBackedType,
    eventually_periodic_form,
    minimize_form,
    nf_group,
    nf_intersect,
    nf_nth_within,
    nf_select,
    nf_shift,
    nf_union,
)
from .combinators import (
    FilteredType,
    GroupedType,
    NthSubgranuleType,
    ShiftedType,
    UnionType,
)
from .convcache import (
    ConversionCache,
    global_conversion_cache,
    reset_global_conversion_cache,
)
from .conversion import ConversionOutcome, convert_interval, covers_prefix
from .customcal import (
    CustomCalendar,
    CustomMonthType,
    CustomYearType,
    retail_445_calendar,
    thirteen_period_calendar,
)
from .intersection import IntersectionType, business_hours
from .normalform import (
    CompiledSizeTable,
    NormalFormError,
    PeriodicNormalForm,
    build_size_table,
    clock_ticks_of,
    compile_normal_form,
    explain_normal_form,
    nf_max_period,
    resolve_backend,
)
from .parser import GranularityParseError, parse_type
from .periodic import PeriodicPatternType, shifts, weekly_slots
from .registry import GranularitySystem, standard_system
from .relations import finer_than, groups_into, partitions, subgranularity
from .sizes import SizeTable

__all__ = [
    "TemporalType",
    "UniformType",
    "DayBasedType",
    "MonthType",
    "YearType",
    "BusinessDayType",
    "BusinessWeekType",
    "BusinessMonthType",
    "GroupedType",
    "FilteredType",
    "ShiftedType",
    "UnionType",
    "NthSubgranuleType",
    "FormBackedType",
    "nf_group",
    "nf_select",
    "nf_shift",
    "nf_union",
    "nf_intersect",
    "nf_nth_within",
    "minimize_form",
    "eventually_periodic_form",
    "clock_ticks_of",
    "explain_normal_form",
    "nf_max_period",
    "SizeTable",
    "CompiledSizeTable",
    "PeriodicNormalForm",
    "NormalFormError",
    "compile_normal_form",
    "build_size_table",
    "resolve_backend",
    "ConversionOutcome",
    "ConversionCache",
    "global_conversion_cache",
    "reset_global_conversion_cache",
    "convert_interval",
    "covers_prefix",
    "GranularitySystem",
    "standard_system",
    "PeriodicPatternType",
    "shifts",
    "weekly_slots",
    "parse_type",
    "GranularityParseError",
    "CustomCalendar",
    "CustomMonthType",
    "CustomYearType",
    "thirteen_period_calendar",
    "retail_445_calendar",
    "IntersectionType",
    "business_hours",
    "finer_than",
    "groups_into",
    "partitions",
    "subgranularity",
    "second",
    "minute",
    "hour",
    "day",
    "week",
    "month",
    "year",
    "business_day",
    "business_week",
    "business_month",
]
