"""Combinators that build new temporal types from existing ones.

The paper's NP-hardness gadget needs ``n-month`` types ("grouping each
consecutive n ticks of month into a single tick"); :class:`GroupedType`
implements exactly that, generalised with an offset so that e.g. fiscal
years (12 months starting in April) are expressible too.
:class:`FilteredType` keeps a sub-sequence of a base type's ticks
(re-indexed), which models types like "Mondays" or "odd days" and is used
by the property tests to exercise unusual granularities.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .base import TemporalType


class GroupedType(TemporalType):
    """Group each ``n`` consecutive ticks of a base type into one tick.

    Tick *i* of the grouped type is the union of base ticks
    ``offset + i*n .. offset + i*n + n - 1``.  Instants covered by base
    ticks before ``offset`` are gaps of the grouped type.
    """

    def __init__(
        self,
        base: TemporalType,
        n: int,
        label: Optional[str] = None,
        offset: int = 0,
    ):
        if n <= 0:
            raise ValueError("group size must be positive")
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.base = base
        self.n = n
        self.offset = offset
        if label is None:
            label = "%d-%s" % (n, base.label)
            if offset:
                label += "+%d" % offset
        self.label = label
        self.alignment_seconds = base.alignment_seconds
        # Grouping keeps coverage; an offset uncovers the leading ticks.
        self.total = base.total and offset == 0

    def tick_of(self, second: int) -> Optional[int]:
        b = self.base.tick_of(second)
        if b is None or b < self.offset:
            return None
        return (b - self.offset) // self.n

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        first_base = self.offset + index * self.n
        first, _ = self.base.tick_bounds(first_base)
        _, last = self.base.tick_bounds(first_base + self.n - 1)
        return first, last

    def period_info(self):
        """Exact period when the base declares one: the grouped pattern
        repeats after lcm(base period, group size) base ticks."""
        base_info = getattr(self.base, "period_info", None)
        if not callable(base_info):
            return None
        base_ticks, base_seconds = base_info()
        from math import gcd

        lcm = base_ticks * self.n // gcd(base_ticks, self.n)
        return lcm // self.n, lcm // base_ticks * base_seconds


class FilteredType(TemporalType):
    """Keep the base ticks selected by a predicate, re-indexed from 0.

    The predicate receives a base tick index.  Because ranks of an
    arbitrary predicate cannot be computed in closed form, selected base
    indices are enumerated lazily and cached; ``max_base_index`` bounds
    the search so a predicate that is eventually always-false cannot make
    lookups diverge (the paper requires empties only at the end of time,
    which such a predicate would model).
    """

    def __init__(
        self,
        base: TemporalType,
        predicate: Callable[[int], bool],
        label: str,
        max_base_index: int = 1_000_000,
    ):
        self.base = base
        self.predicate = predicate
        self.label = label
        self.max_base_index = max_base_index
        self.alignment_seconds = base.alignment_seconds
        self._selected = []  # sorted base indices discovered so far
        self._scanned_upto = 0  # base indices < this have been classified

    def _scan_until(self, base_index: int) -> None:
        """Classify base ticks up to and including ``base_index``."""
        limit = min(base_index, self.max_base_index)
        while self._scanned_upto <= limit:
            if self.predicate(self._scanned_upto):
                self._selected.append(self._scanned_upto)
            self._scanned_upto += 1

    def _rank_of_base(self, base_index: int) -> Optional[int]:
        self._scan_until(base_index)
        if base_index > self.max_base_index:
            return None
        from bisect import bisect_left

        pos = bisect_left(self._selected, base_index)
        if pos < len(self._selected) and self._selected[pos] == base_index:
            return pos
        return None

    def tick_of(self, second: int) -> Optional[int]:
        b = self.base.tick_of(second)
        if b is None:
            return None
        return self._rank_of_base(b)

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        while len(self._selected) <= index:
            if self._scanned_upto > self.max_base_index:
                raise ValueError(
                    "tick %d of %r not found within the scan bound; the "
                    "type may have run out of non-empty ticks" % (index, self.label)
                )
            if self.predicate(self._scanned_upto):
                self._selected.append(self._scanned_upto)
            self._scanned_upto += 1
        return self.base.tick_bounds(self._selected[index])
