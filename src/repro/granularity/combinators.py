"""Combinators that build new temporal types from existing ones.

The paper's NP-hardness gadget needs ``n-month`` types ("grouping each
consecutive n ticks of month into a single tick"); :class:`GroupedType`
implements exactly that, generalised with an offset so that e.g. fiscal
years (12 months starting in April) are expressible too.
:class:`FilteredType` keeps a sub-sequence of a base type's ticks
(re-indexed), which models types like "Mondays" or "odd days" and is used
by the property tests to exercise unusual granularities.

:class:`ShiftedType` (timezone/fiscal second offsets),
:class:`UnionType` (maximal overlap-chained runs of two types' ticks)
and :class:`NthSubgranuleType` ("the 2nd Tuesday of each month")
complete the calendar algebra of Bettini & Mascetti; each has a
matching normal-form operator in :mod:`repro.granularity.algebra` that
lowers it to a minimal periodic form, with these lazy merge scans as
the differential reference.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from math import gcd
from typing import Callable, List, Optional, Tuple

from .base import TemporalType


class GroupedType(TemporalType):
    """Group each ``n`` consecutive ticks of a base type into one tick.

    Tick *i* of the grouped type is the union of base ticks
    ``offset + i*n .. offset + i*n + n - 1``.  Instants covered by base
    ticks before ``offset`` are gaps of the grouped type.
    """

    def __init__(
        self,
        base: TemporalType,
        n: int,
        label: Optional[str] = None,
        offset: int = 0,
    ):
        if n <= 0:
            raise ValueError("group size must be positive")
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.base = base
        self.n = n
        self.offset = offset
        if label is None:
            label = "%d-%s" % (n, base.label)
            if offset:
                label += "+%d" % offset
        self.label = label
        self.alignment_seconds = base.alignment_seconds
        # Grouping keeps coverage; an offset uncovers the leading ticks.
        self.total = base.total and offset == 0

    def tick_of(self, second: int) -> Optional[int]:
        b = self.base.tick_of(second)
        if b is None or b < self.offset:
            return None
        return (b - self.offset) // self.n

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        first_base = self.offset + index * self.n
        first, _ = self.base.tick_bounds(first_base)
        _, last = self.base.tick_bounds(first_base + self.n - 1)
        return first, last

    def period_info(self):
        """Exact period when the base declares one: the grouped pattern
        repeats after lcm(base period, group size) base ticks."""
        base_info = getattr(self.base, "period_info", None)
        if not callable(base_info):
            return None
        info = base_info()
        if info is None:
            # A base with a period_info that answers None (e.g. a
            # holiday-laden business day) propagates the non-answer
            # instead of crashing the unpack.
            return None
        base_ticks, base_seconds = info
        lcm = base_ticks * self.n // gcd(base_ticks, self.n)
        return lcm // self.n, lcm // base_ticks * base_seconds


class FilteredType(TemporalType):
    """Keep the base ticks selected by a predicate, re-indexed from 0.

    The predicate receives a base tick index.  Because ranks of an
    arbitrary predicate cannot be computed in closed form, selected base
    indices are enumerated lazily and cached; ``max_base_index`` bounds
    the search so a predicate that is eventually always-false cannot make
    lookups diverge (the paper requires empties only at the end of time,
    which such a predicate would model).
    """

    def __init__(
        self,
        base: TemporalType,
        predicate: Callable[[int], bool],
        label: str,
        max_base_index: int = 1_000_000,
        predicate_period: Optional[int] = None,
    ):
        if predicate_period is not None and predicate_period < 1:
            raise ValueError("predicate_period must be positive")
        self.base = base
        self.predicate = predicate
        self.label = label
        self.max_base_index = max_base_index
        #: Declared period of the predicate in base ticks (a contract,
        #: like ``CustomCalendar.period_years``): the selection pattern
        #: must satisfy ``predicate(i) == predicate(i + period)``.
        #: Enables :meth:`period_info` and hence the compiled backend.
        self.predicate_period = predicate_period
        self.alignment_seconds = base.alignment_seconds
        self._selected = []  # sorted base indices discovered so far
        self._scanned_upto = 0  # base indices < this have been classified
        self._period_info_cache = False  # False = not computed yet

    #: Selection patterns wider than this are not worth a closed form.
    _PERIOD_SCAN_BOUND = 1 << 20

    def period_info(self):
        """Exact period when both the base and the predicate declare one.

        The joint pattern repeats after ``lcm(base period,
        predicate_period)`` base ticks; the tick count per period is the
        number of selected base indices in one such window (counted
        once and cached).  None when either period is undeclared, the
        window exceeds the scan bound, or no index is selected.
        """
        if self._period_info_cache is not False:
            return self._period_info_cache
        info = None
        m = self.predicate_period
        if m is not None:
            base_info = getattr(self.base, "period_info", None)
            base_period = base_info() if callable(base_info) else None
            if base_period is not None:
                base_ticks, base_seconds = base_period
                window = base_ticks * m // gcd(base_ticks, m)
                if window <= self._PERIOD_SCAN_BOUND:
                    count = sum(
                        1 for i in range(window) if self.predicate(i)
                    )
                    if count:
                        info = (count, window // base_ticks * base_seconds)
        self._period_info_cache = info
        return info

    def _scan_until(self, base_index: int) -> None:
        """Classify base ticks up to and including ``base_index``."""
        limit = min(base_index, self.max_base_index)
        while self._scanned_upto <= limit:
            if self.predicate(self._scanned_upto):
                self._selected.append(self._scanned_upto)
            self._scanned_upto += 1

    def _rank_of_base(self, base_index: int) -> Optional[int]:
        self._scan_until(base_index)
        if base_index > self.max_base_index:
            return None
        from bisect import bisect_left

        pos = bisect_left(self._selected, base_index)
        if pos < len(self._selected) and self._selected[pos] == base_index:
            return pos
        return None

    def tick_of(self, second: int) -> Optional[int]:
        b = self.base.tick_of(second)
        if b is None:
            return None
        return self._rank_of_base(b)

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        while len(self._selected) <= index:
            if self._scanned_upto > self.max_base_index:
                raise ValueError(
                    "tick %d of %r not found within the scan bound; the "
                    "type may have run out of non-empty ticks" % (index, self.label)
                )
            if self.predicate(self._scanned_upto):
                self._selected.append(self._scanned_upto)
            self._scanned_upto += 1
        return self.base.tick_bounds(self._selected[index])


class ShiftedType(TemporalType):
    """Shift every tick of a base type by ``delta`` seconds.

    Models timezone displacement (``delta = -5 * 3600`` for UTC-5
    views of a UTC calendar) and fiscal second offsets.  With a
    negative ``delta`` the leading base ticks that would start before
    instant 0 are dropped and the rest re-indexed from 0, keeping the
    non-negative-timeline contract.
    """

    def __init__(
        self, base: TemporalType, delta: int, label: Optional[str] = None
    ):
        self.base = base
        self.delta = int(delta)
        self.label = (
            label if label is not None else "%s%+ds" % (base.label, delta)
        )
        self.alignment_seconds = max(
            1, gcd(base.alignment_seconds, abs(self.delta))
        )
        self.total = base.total and self.delta == 0
        self._skip: Optional[int] = None

    def _skip_count(self) -> int:
        """Leading base ticks whose shifted start would be negative."""
        if self._skip is None:
            if self.delta >= 0:
                self._skip = 0
            else:
                self._skip = self.base.first_tick_at_or_after(-self.delta)
        return self._skip

    def tick_of(self, second: int) -> Optional[int]:
        if second < 0 or second - self.delta < 0:
            return None
        b = self.base.tick_of(second - self.delta)
        skip = self._skip_count()
        if b is None or b < skip:
            return None
        return b - skip

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        first, last = self.base.tick_bounds(index + self._skip_count())
        return first + self.delta, last + self.delta

    def period_info(self):
        """A shift preserves the base period; only the phase moves.

        This holds for negative shifts too: dropping ``skip`` leading
        ticks rotates the phase, and a phase rotation of a sequence
        that is periodic from tick 0 is again periodic from tick 0.
        """
        base_info = getattr(self.base, "period_info", None)
        if not callable(base_info):
            return None
        return base_info()


class UnionType(TemporalType):
    """Union of two types: ticks are maximal overlap-chained runs.

    Both operands' tick streams are merged in time order; consecutive
    stream ticks whose bounds overlap coalesce into one tick (adjacent
    but non-overlapping ticks stay separate, so ``union(day, day)`` is
    ``day``, not one endless tick).  An instant is covered when either
    operand covers it.
    """

    def __init__(
        self,
        a: TemporalType,
        b: TemporalType,
        label: Optional[str] = None,
        max_ticks: int = 1_000_000,
    ):
        self.a = a
        self.b = b
        self.label = (
            label if label is not None else "%s+%s" % (a.label, b.label)
        )
        self.max_ticks = max_ticks
        self.alignment_seconds = max(
            1, gcd(a.alignment_seconds, b.alignment_seconds)
        )
        self.total = a.total or b.total
        self._firsts: List[int] = []
        self._lasts: List[int] = []
        self._next_a = 0
        self._next_b = 0
        self._done_a = False
        self._done_b = False

    def _peek(self):
        """Earlier of the two streams' next ticks, or None."""
        bounds_a = bounds_b = None
        if not self._done_a:
            try:
                bounds_a = self.a.tick_bounds(self._next_a)
            except ValueError:
                self._done_a = True
        if not self._done_b:
            try:
                bounds_b = self.b.tick_bounds(self._next_b)
            except ValueError:
                self._done_b = True
        if bounds_a is not None and (
            bounds_b is None or bounds_a[0] <= bounds_b[0]
        ):
            return "a", bounds_a
        if bounds_b is not None:
            return "b", bounds_b
        return None

    def _pop(self, which: str) -> None:
        if which == "a":
            self._next_a += 1
        else:
            self._next_b += 1

    def _extend(self) -> bool:
        """Discover the next maximal run; False when exhausted."""
        if len(self._firsts) >= self.max_ticks:
            return False
        head = self._peek()
        if head is None:
            return False
        which, (lo, hi) = head
        self._pop(which)
        merged = 0
        while True:
            head = self._peek()
            if head is None or head[1][0] > hi:
                break
            which, (_, last) = head
            self._pop(which)
            hi = max(hi, last)
            merged += 1
            if merged > self.max_ticks:
                raise ValueError(
                    "a single tick of %r chained more than %d operand "
                    "ticks; the union has no finite ticks here"
                    % (self.label, self.max_ticks)
                )
        self._firsts.append(lo)
        self._lasts.append(hi)
        return True

    def _ensure_time(self, second: int) -> None:
        while (
            not self._lasts or self._lasts[-1] < second
        ) and self._extend():
            pass

    def tick_of(self, second: int) -> Optional[int]:
        if second < 0:
            return None
        self._ensure_time(second)
        slot = bisect_right(self._firsts, second) - 1
        if slot < 0 or self._lasts[slot] < second:
            return None
        # Inside the run's bounds; the instant must belong to at least
        # one operand tick (operands may have interior gaps).
        if self.a.tick_of(second) is None and self.b.tick_of(second) is None:
            return None
        return slot

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        while len(self._firsts) <= index and self._extend():
            pass
        if index >= len(self._firsts):
            raise ValueError(
                "tick %d of %r not found (operands exhausted or "
                "max_ticks reached)" % (index, self.label)
            )
        return self._firsts[index], self._lasts[index]


class NthSubgranuleType(TemporalType):
    """The ``n``-th fine tick fully inside each coarse tick.

    ``NthSubgranuleType(tuesdays, month, 2)`` is "the 2nd Tuesday of
    each month".  Coarse ticks containing fewer than ``n`` fully
    contained fine ticks contribute no tick; the result is re-indexed
    over the qualifying coarse ticks in order.
    """

    def __init__(
        self,
        fine: TemporalType,
        coarse: TemporalType,
        n: int,
        label: Optional[str] = None,
        max_ticks: int = 1_000_000,
    ):
        if n < 1:
            raise ValueError("n must be at least 1")
        self.fine = fine
        self.coarse = coarse
        self.n = n
        self.label = (
            label
            if label is not None
            else "%d@%s/%s" % (n, fine.label, coarse.label)
        )
        self.max_ticks = max_ticks
        self.alignment_seconds = fine.alignment_seconds
        self.total = False
        self._fine_indices: List[int] = []
        self._firsts: List[int] = []
        self._lasts: List[int] = []
        self._next_coarse = 0
        self._fine_ptr = 0
        self._exhausted = False

    def _extend(self) -> bool:
        """Discover the next qualifying coarse tick's nth subgranule."""
        if self._exhausted or len(self._firsts) >= self.max_ticks:
            return False
        while True:
            try:
                coarse_first, coarse_last = self.coarse.tick_bounds(
                    self._next_coarse
                )
                # Fully contained fine ticks form a contiguous index
                # range starting at the first fine tick at or after the
                # coarse tick's start (both streams are time-ordered,
                # so the pointer only moves forward).
                while (
                    self.fine.tick_bounds(self._fine_ptr)[0] < coarse_first
                ):
                    self._fine_ptr += 1
                k = self._fine_ptr + self.n - 1
                fine_first, fine_last = self.fine.tick_bounds(k)
            except ValueError:
                self._exhausted = True
                return False
            self._next_coarse += 1
            if fine_last <= coarse_last:
                self._fine_indices.append(k)
                self._firsts.append(fine_first)
                self._lasts.append(fine_last)
                return True

    def _ensure_time(self, second: int) -> None:
        # The next discovery may lie many coarse ticks ahead; scanning
        # stops once a discovered tick *starts* past ``second`` (a tick
        # ending before a gap instant is not enough to classify it).
        while (
            not self._firsts or self._firsts[-1] <= second
        ) and self._extend():
            pass

    def tick_of(self, second: int) -> Optional[int]:
        if second < 0:
            return None
        self._ensure_time(second)
        slot = bisect_right(self._firsts, second) - 1
        if slot < 0 or self._lasts[slot] < second:
            return None
        if self.fine.tick_of(second) != self._fine_indices[slot]:
            return None
        return slot

    def tick_bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            raise ValueError("tick index must be non-negative")
        while len(self._firsts) <= index and self._extend():
            pass
        if index >= len(self._firsts):
            raise ValueError(
                "tick %d of %r not found (operands exhausted or "
                "max_ticks reached)" % (index, self.label)
            )
        return self._firsts[index], self._lasts[index]
