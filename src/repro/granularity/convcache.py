"""Process-wide memoisation of Figure 3 conversion outcomes.

Interval conversion between granularities (appendix A.1 / the direct
boundary scan) is the single hottest primitive shared by constraint
propagation, mining candidate evaluation and TAG horizon derivation:
the same ``(mu1, mu2, m, n)`` queries recur across every fixpoint
iteration and every candidate.  :class:`ConversionCache` memoises the
outcomes once per process so all of those layers share one table, and
keeps hit/miss counters that the propagation engine surfaces on
``PropagationResult`` and the benchmark harness records per experiment.

Keys are namespaced per :class:`~repro.granularity.registry.
GranularitySystem` (two systems may register behaviourally different
types under the same label - e.g. business days over different holiday
lists - so raw label keys would be unsound across systems).
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Optional, Tuple

from .conversion import ConversionOutcome

#: (namespace, m, n, source label, target label, mode)
CacheKey = Tuple[int, int, int, str, str, str]

_namespace_counter = itertools.count()


def new_namespace() -> int:
    """A fresh cache namespace token (one per granularity system)."""
    return next(_namespace_counter)


class ConversionCache:
    """A memo table for conversion outcomes with hit/miss counters.

    Thread-safe for the simple get/put pattern used here (the GIL makes
    dict operations atomic; the lock only guards the compound
    read-modify-write of the counters during :meth:`clear`).
    """

    def __init__(self) -> None:
        self._data: Dict[CacheKey, ConversionOutcome] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: CacheKey) -> Optional[ConversionOutcome]:
        """The cached outcome, or None (counts a hit or a miss)."""
        outcome = self._data.get(key)
        if outcome is None:
            self.misses += 1
        else:
            self.hits += 1
        return outcome

    def put(self, key: CacheKey, outcome: ConversionOutcome) -> None:
        """Store one outcome (overwrites are idempotent by design)."""
        self._data[key] = outcome

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> Tuple[int, int]:
        """Current ``(hits, misses)`` - subtract two snapshots to get
        the traffic of a region of code."""
        return self.hits, self.misses

    def stats(self) -> Dict[str, int]:
        """Counters in a JSON-friendly form (for benchmarks/metrics)."""
        return {
            "entries": len(self._data),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0


_GLOBAL = ConversionCache()


def global_conversion_cache() -> ConversionCache:
    """The process-wide cache every granularity system shares by
    default (pass ``cache=`` to ``GranularitySystem`` to isolate)."""
    return _GLOBAL


def reset_global_conversion_cache() -> None:
    """Clear the process-wide cache (test isolation hook)."""
    _GLOBAL.clear()
