"""Process-wide memoisation of Figure 3 conversion outcomes.

Interval conversion between granularities (appendix A.1 / the direct
boundary scan) is the single hottest primitive shared by constraint
propagation, mining candidate evaluation and TAG horizon derivation:
the same ``(mu1, mu2, m, n)`` queries recur across every fixpoint
iteration and every candidate.  :class:`ConversionCache` memoises the
outcomes once per process so all of those layers share one table, and
keeps hit/miss/eviction counters that the propagation engine surfaces
on ``PropagationResult``, the benchmark harness records per experiment,
and :mod:`repro.obs` exports process-wide (the global cache registers
callback metrics ``repro_convcache_*`` in the global registry, so the
hot path pays nothing for the mirror).

Keys are namespaced per :class:`~repro.granularity.registry.
GranularitySystem` (two systems may register behaviourally different
types under the same label - e.g. business days over different holiday
lists - so raw label keys would be unsound across systems).
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, NamedTuple, Optional, Tuple

from ..obs import global_metrics
from .conversion import ConversionOutcome

#: (namespace, m, n, source label, target label, mode)
CacheKey = Tuple[int, int, int, str, str, str]

_namespace_counter = itertools.count()


def new_namespace() -> int:
    """A fresh cache namespace token (one per granularity system)."""
    return next(_namespace_counter)


class CacheStats(NamedTuple):
    """One consistent reading of a cache's counters.

    Subtract two snapshots field-by-field to get the traffic of a
    region of code (what the propagation engine does per call).
    """

    hits: int
    misses: int
    evictions: int
    entries: int


class ConversionCache:
    """A memo table for conversion outcomes with observable counters.

    Counter updates are thread-safe: every read-modify-write happens
    under the instance lock, so concurrent propagations over the same
    system never lose hits/misses (dict get/set themselves stay outside
    the lock - they are atomic under the GIL and overwrites are
    idempotent by design).

    ``max_entries`` optionally bounds the table: inserts beyond the
    bound evict the oldest entry first (insertion-order FIFO) and count
    into ``evictions``.  The default is unbounded, which matches the
    workloads here (key cardinality is small); bounded caches exist for
    long-lived services with unbounded granularity churn.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self._data: Dict[CacheKey, ConversionOutcome] = {}
        # Compiled periodic normal forms keyed ``(namespace, label)``.
        # A small side table (one entry per type, not per query) that
        # rides the same export/preload protocol so fork-pool workers
        # receive the compiled form instead of re-lowering per worker.
        self._forms: Dict[Tuple[int, str], object] = {}
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Counters (read-only views)
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    def snapshot(self) -> CacheStats:
        """A consistent :class:`CacheStats` reading (taken under the
        lock, so hits/misses/evictions belong to one moment)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._data),
            )

    def reset(self) -> None:
        """Zero the counters *without* dropping cached entries.

        The differential tests bracket a region with
        ``reset()``/``snapshot()`` instead of reaching into private
        attributes; entries survive so the measured region still sees
        a warm cache.
        """
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> Dict[str, int]:
        """Counters in a JSON-friendly form (for benchmarks/metrics)."""
        snap = self.snapshot()
        return {
            "entries": snap.entries,
            "hits": snap.hits,
            "misses": snap.misses,
            "evictions": snap.evictions,
            "normal_forms": len(self._forms),
        }

    # ------------------------------------------------------------------
    # The memo table
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[ConversionOutcome]:
        """The cached outcome, or None (counts a hit or a miss)."""
        outcome = self._data.get(key)
        with self._lock:
            if outcome is None:
                self._misses += 1
            else:
                self._hits += 1
        return outcome

    def put(self, key: CacheKey, outcome: ConversionOutcome) -> None:
        """Store one outcome (overwrites are idempotent by design)."""
        if self.max_entries is not None:
            with self._lock:
                if (
                    key not in self._data
                    and len(self._data) >= self.max_entries
                ):
                    del self._data[next(iter(self._data))]
                    self._evictions += 1
                self._data[key] = outcome
            return
        self._data[key] = outcome

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    # Compiled normal forms (one per type, shared with workers)
    # ------------------------------------------------------------------
    def get_normal_form(self, namespace: int, label: str):
        """The compiled normal form cached for ``label``, or None.

        Counts neither hits nor misses: forms are per-type artefacts
        fetched once per size-table construction, not per-query
        traffic, so folding them into the conversion counters would
        distort hit rates.
        """
        return self._forms.get((namespace, label))

    def put_normal_form(self, namespace: int, label: str, form) -> None:
        """Cache one compiled normal form (overwrites are idempotent)."""
        self._forms[(namespace, label)] = form

    def export_normal_forms(self, namespace: Optional[int] = None) -> list:
        """Compiled forms as a picklable ``[(label, form), ...]`` list.

        Namespace-stripped like :meth:`export_entries`; the importing
        process rebinds them to its own namespace for the same system.
        """
        return [
            (key[1], form)
            for key, form in list(self._forms.items())
            if namespace is None or key[0] == namespace
        ]

    def preload_normal_forms(self, namespace: int, items) -> int:
        """Install exported forms under ``namespace``; returns count."""
        count = 0
        for label, form in items:
            self._forms[(namespace, label)] = form
            count += 1
        return count

    # ------------------------------------------------------------------
    # Cross-process warming and merging (the parallel engine protocol)
    # ------------------------------------------------------------------
    def export_entries(
        self, namespace: Optional[int] = None
    ) -> list:
        """Entries as a picklable list (optionally one namespace only).

        Each item is ``((m, n, source, target, mode), outcome)`` with
        the namespace stripped - namespaces are process-local tokens,
        so the importing side rebinds entries to *its* namespace for
        the same system.  The parallel engine serialises a system's
        namespace once and pre-warms every worker with it.
        """
        return [
            (key[1:], outcome)
            for key, outcome in list(self._data.items())
            if namespace is None or key[0] == namespace
        ]

    def preload(self, namespace: int, entries) -> int:
        """Install exported entries under ``namespace``; returns count.

        Pre-warming counts neither hits nor misses - the entries were
        paid for in the exporting process - so merged statistics stay
        exact.
        """
        count = 0
        for suffix, outcome in entries:
            self._data[(namespace,) + tuple(suffix)] = outcome
            count += 1
        return count

    def merge_counts(
        self, hits: int = 0, misses: int = 0, evictions: int = 0
    ) -> None:
        """Fold a worker's counter deltas into this cache.

        Worker processes accumulate hits/misses in their (forked) cache
        copies; the parent adds the deltas back so process-wide cache
        statistics account for all work, serial or parallel.
        """
        if min(hits, misses, evictions) < 0:
            raise ValueError("cache counter deltas cannot be negative")
        with self._lock:
            self._hits += hits
            self._misses += misses
            self._evictions += evictions

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._data.clear()
            self._forms.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0


_GLOBAL = ConversionCache()

# The process-wide cache mirrors its counters into the global metrics
# registry as callbacks: values are read at export time, so get/put pay
# nothing.  Per-test isolated caches are deliberately not mirrored.
_REGISTRY = global_metrics()
_REGISTRY.counter_callback(
    "repro_convcache_hits_total",
    lambda: _GLOBAL.hits,
    "Process-wide conversion cache hits",
)
_REGISTRY.counter_callback(
    "repro_convcache_misses_total",
    lambda: _GLOBAL.misses,
    "Process-wide conversion cache misses",
)
_REGISTRY.counter_callback(
    "repro_convcache_evictions_total",
    lambda: _GLOBAL.evictions,
    "Process-wide conversion cache evictions",
)
_REGISTRY.gauge_callback(
    "repro_convcache_entries",
    lambda: len(_GLOBAL),
    "Process-wide conversion cache resident entries",
)


def global_conversion_cache() -> ConversionCache:
    """The process-wide cache every granularity system shares by
    default (pass ``cache=`` to ``GranularitySystem`` to isolate)."""
    return _GLOBAL


def reset_global_conversion_cache() -> None:
    """Clear the process-wide cache (test isolation hook)."""
    _GLOBAL.clear()
