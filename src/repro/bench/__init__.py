"""Benchmark regression harness for the X1-X12 experiment suite.

See :mod:`repro.bench.harness` for the machinery and
``docs/PERFORMANCE.md`` for how to run it and read its reports.
"""

from .harness import (
    EXPERIMENT_NAMES,
    PROFILES,
    BenchmarkRegression,
    assert_no_regressions,
    compare_payloads,
    comparison_delta_table,
    format_comparison,
    load_payload,
    run_suite,
    save_payload,
)

__all__ = [
    "EXPERIMENT_NAMES",
    "PROFILES",
    "BenchmarkRegression",
    "assert_no_regressions",
    "compare_payloads",
    "comparison_delta_table",
    "format_comparison",
    "load_payload",
    "run_suite",
    "save_payload",
]
