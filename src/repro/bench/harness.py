"""The X1-X18 regression harness behind ``repro bench``.

Unlike the pytest-benchmark suites in ``benchmarks/`` (which exist to
*regenerate paper artifacts* with statistical care), this module is a
fast, dependency-free sweep of the same experiments designed for
regression gating: each experiment runs a small pinned workload a few
times, records the median wall time plus its work counters, and the
result is written as a ``BENCH_*.json`` file that later runs (or CI)
compare against with a configurable tolerance.

Two profiles are provided: ``quick`` (seconds, the CI gate) and
``full`` (larger workloads for local investigation).  Workloads are
pinned by seed, so counter columns are bitwise reproducible; wall times
are machine-dependent, which is why the CI gate compares two runs from
the *same* machine rather than a checked-in timing.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..constraints import (
    TCG,
    ComplexEventType,
    EventStructure,
    propagate,
)
from ..constraints.propagation import resolve_engine
from ..granularity import GranularitySystem, standard_system
from ..obs import (
    Tracer,
    activate_tracer,
    counter_deltas,
    metrics_snapshot,
    span,
    write_trace,
)

#: Payload format version (bump when the JSON layout changes).
SCHEMA_VERSION = 1

#: repeats per experiment, and the scale knob each workload interprets.
PROFILES: Dict[str, Dict[str, int]] = {
    "quick": {"repeats": 3, "scale": 1},
    "full": {"repeats": 7, "scale": 2},
}


class BenchmarkRegression(RuntimeError):
    """Raised (by the CLI path) when a run regresses past tolerance."""


@dataclass
class _Workload:
    """One prepared experiment: a closure to time plus fixed counters."""

    run: Callable[[], Dict[str, object]]


def _figure_1a(system: GranularitySystem) -> EventStructure:
    bday = system.get("b-day")
    hour = system.get("hour")
    week = system.get("week")
    return EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, bday)],
            ("X1", "X3"): [TCG(0, 1, week)],
            ("X0", "X2"): [TCG(0, 5, bday)],
            ("X2", "X3"): [TCG(0, 8, hour)],
        },
    )


def _figure_1b(system: GranularitySystem) -> EventStructure:
    month = system.get("month")
    year = system.get("year")
    return EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(11, 11, month), TCG(0, 0, year)],
            ("X0", "X2"): [TCG(0, 12, month)],
            ("X2", "X3"): [TCG(11, 11, month), TCG(0, 0, year)],
        },
    )


def _example1_cet(system: GranularitySystem) -> ComplexEventType:
    return ComplexEventType(
        _figure_1a(system),
        {
            "X0": "IBM-rise",
            "X1": "IBM-earnings-report",
            "X2": "HP-rise",
            "X3": "IBM-fall",
        },
    )


def _random_dag(
    n: int, system: GranularitySystem, rng: random.Random
) -> EventStructure:
    """The X4 workload shape: rooted DAG, ~1.5 n arcs, 4 granularities."""
    labels = ["hour", "day", "week", "b-day"]
    names = ["V%d" % i for i in range(n)]
    constraints = {}
    for i in range(1, n):
        parent = names[rng.randrange(0, i)]
        m = rng.randrange(0, 3)
        constraints[(parent, names[i])] = [
            TCG(m, m + rng.randrange(0, 4), system.get(rng.choice(labels)))
        ]
    for _ in range(n // 2):
        a, b = sorted(rng.sample(range(n), 2))
        arc = (names[a], names[b])
        if arc not in constraints:
            constraints[arc] = [TCG(0, 30 * n, system.get("day"))]
    return EventStructure(names, constraints)


def _consistent_random_dag(
    n: int, system: GranularitySystem, rng: random.Random
) -> EventStructure:
    for _ in range(50):
        structure = _random_dag(n, system, rng)
        if propagate(structure, system, engine="python").consistent:
            return structure
    raise RuntimeError("no consistent random structure in 50 draws")


def _planted_workload(
    system: GranularitySystem, n_roots: int, seed: int
):
    from ..mining.generator import planted_sequence

    cet = _example1_cet(system)
    sequence, _ = planted_sequence(
        cet,
        system,
        n_roots=n_roots,
        confidence=0.9,
        rng=random.Random(seed),
        noise_types=["HP-fall", "DEC-rise", "DEC-fall", "SUN-rise"],
    )
    return cet, sequence


# ----------------------------------------------------------------------
# Experiment definitions
# ----------------------------------------------------------------------
def _x1(system, engine, scale) -> _Workload:
    """Figure 1(a) propagation (the Section 5.1 worked numbers)."""
    structure = _figure_1a(system)

    def run():
        result = propagate(structure, system, engine=engine)
        return {
            "iterations": result.iterations,
            "conversions": result.conversions_performed,
            "cache_hits": result.conversion_cache_hits,
        }

    return _Workload(run)


def _x2(system, engine, scale) -> _Workload:
    """Figure 1(b): the gadget propagation provably cannot refute."""
    structure = _figure_1b(system)

    def run():
        result = propagate(structure, system, engine=engine)
        return {
            "iterations": result.iterations,
            "consistent": result.consistent,
        }

    return _Workload(run)


def _x3(system, engine, scale) -> _Workload:
    """A small exact consistency search (the Theorem 1 machinery)."""
    from ..constraints import check_consistency_exact
    from ..granularity.gregorian import SECONDS_PER_DAY

    structure = _figure_1a(system)

    def run():
        report = check_consistency_exact(
            structure, system, window_seconds=30 * SECONDS_PER_DAY
        )
        return {"consistent": report.consistent}

    return _Workload(run)


def _x4(system, engine, scale) -> _Workload:
    """Propagation on a random 48/64-node DAG: the fast-path showcase.

    Times the selected engine but also medians the pure-Python
    reference on the same structure, so the payload records the
    engine's speedup (the PR-2 acceptance number).
    """
    n = 48 * scale
    structure = _consistent_random_dag(n, system, random.Random(n))

    def run():
        reference_times = []
        for _ in range(3):
            start = time.perf_counter()
            propagate(structure, system, engine="python")
            reference_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        result = propagate(structure, system, engine=engine)
        fast_seconds = time.perf_counter() - start
        reference_seconds = statistics.median(reference_times)
        return {
            "n_variables": n,
            "iterations": result.iterations,
            "closures_full": result.closures_full,
            "closures_incremental": result.closures_incremental,
            "reference_median_seconds": reference_seconds,
            "engine_seconds": fast_seconds,
            "speedup_vs_reference": (
                reference_seconds / fast_seconds if fast_seconds else 0.0
            ),
        }

    return _Workload(run)


def _x5(system, engine, scale) -> _Workload:
    """TAG construction for the Example 1 pattern (Theorem 3)."""
    from ..automata.builder import build_tag

    cet = _example1_cet(system)

    def run():
        build = build_tag(cet, system=system)
        return {
            "states": len(build.tag.states),
            "transitions": len(build.tag.transitions),
        }

    return _Workload(run)


def _x6(system, engine, scale) -> _Workload:
    """TAG matching over a planted log (Theorem 4)."""
    from ..automata.builder import build_tag
    from ..automata.matching import TagMatcher

    cet, sequence = _planted_workload(system, n_roots=10 * scale, seed=6)
    matcher = TagMatcher(build_tag(cet, system=system))

    def run():
        return {"matches": matcher.count_occurrences(sequence)}

    return _Workload(run)


def _x7(system, engine, scale) -> _Workload:
    """The optimised discovery pipeline (Section 5 steps 1-5)."""
    from ..mining.discovery import EventDiscoveryProblem, discover

    cet, sequence = _planted_workload(system, n_roots=10 * scale, seed=7)

    def run():
        problem = EventDiscoveryProblem(
            structure=cet.structure,
            min_confidence=0.5,
            reference_type="IBM-rise",
        )
        outcome = discover(problem, sequence, system, engine=engine)
        return {
            "solutions": len(outcome.solutions),
            "candidates_evaluated": outcome.candidates_evaluated,
            "automaton_starts": outcome.automaton_starts,
        }

    return _Workload(run)


def _x8(system, engine, scale) -> _Workload:
    """The naive baseline on the same problem (the X7 contrast)."""
    from ..mining.discovery import EventDiscoveryProblem, naive_discover

    cet, sequence = _planted_workload(system, n_roots=6 * scale, seed=8)

    def run():
        problem = EventDiscoveryProblem(
            structure=cet.structure,
            min_confidence=0.5,
            reference_type="IBM-rise",
        )
        outcome = naive_discover(problem, sequence, system)
        return {
            "solutions": len(outcome.solutions),
            "candidates_evaluated": outcome.candidates_evaluated,
        }

    return _Workload(run)


def _x9(system, engine, scale) -> _Workload:
    """Examples 1 and 2 end to end via the top-level API."""
    from ..core.api import mine

    cet, sequence = _planted_workload(system, n_roots=10 * scale, seed=9)

    def run():
        outcome = mine(
            cet.structure,
            "IBM-rise",
            sequence,
            min_confidence=0.5,
            engine=engine,
        )
        return {"solutions": len(outcome.solutions)}

    return _Workload(run)


def _x10(system, engine, scale) -> _Workload:
    """The sharded-mining showcase (the PR-4 acceptance number).

    Times the pre-index serial scan (anchor screening off, one
    process) against the indexed parallel engine at 4 workers on the
    same discovery problem, asserting the outcomes agree; the payload
    records both wall times and their ratio.  The candidate pool is
    left wide (low confidence threshold, depth-1 screening only) so
    the step-5 TAG scan dominates - the regime the anchor index and
    the worker pool were built for.
    """
    from ..mining.discovery import EventDiscoveryProblem, discover
    from ..mining.generator import planted_sequence

    cet = _example1_cet(system)
    sequence, _ = planted_sequence(
        cet,
        system,
        n_roots=60 * scale,
        confidence=0.6,
        rng=random.Random(10),
        noise_types=[
            "HP-fall",
            "DEC-rise",
            "DEC-fall",
            "SUN-rise",
            "MSFT-rise",
            "MSFT-fall",
        ],
        noise_events_per_root=6,
    )
    problem = EventDiscoveryProblem(
        structure=cet.structure,
        min_confidence=0.05,
        reference_type="IBM-rise",
    )

    def run():
        start = time.perf_counter()
        reference = discover(
            problem,
            sequence,
            system,
            screen_depth=1,
            engine=engine,
            anchor_screen=False,
        )
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        outcome = discover(
            problem,
            sequence,
            system,
            screen_depth=1,
            engine=engine,
            parallel=4,
        )
        parallel_seconds = time.perf_counter() - start
        report = outcome.parallelism or {}
        return {
            "solutions": len(outcome.solutions),
            "candidates_evaluated": outcome.candidates_evaluated,
            "workers": report.get("workers", 1),
            "shards": report.get("shards", 0),
            "identical_to_serial": (
                outcome.solution_assignments()
                == reference.solution_assignments()
                and sorted(outcome.frequencies.values())
                == sorted(reference.frequencies.values())
            ),
            "serial_median_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup_vs_serial": (
                serial_seconds / parallel_seconds if parallel_seconds else 0.0
            ),
        }

    return _Workload(run)


def _x11(system, engine, scale) -> _Workload:
    """Store-scale mining: a generated 10^5-event store end to end.

    Builds an :class:`~repro.store.EventStore` of 100k x scale events
    (planted hour-granularity pattern, rare decoy candidates, heavy
    background noise) and mines it through the parallel engine - the
    posting-list index absorbs the store size, sequence reduction
    strips the noise, and the shard planner spreads the scan.
    """
    from ..mining.discovery import EventDiscoveryProblem
    from ..store import EventStore

    hour = system.get("hour")
    structure = EventStructure(
        ["X0", "X1", "X2"],
        {
            ("X0", "X1"): [TCG(1, 2, hour)],
            ("X1", "X2"): [TCG(0, 3, hour)],
        },
    )
    rng = random.Random(11)
    n_roots = 2000 * scale
    n_events = 100_000 * scale
    span_seconds = n_roots * 7200
    events = []
    for index in range(n_roots):
        t = index * 7200
        events.append(("EV-A", t))
        if rng.random() < 0.7:
            events.append(("EV-B", t + 3600 + rng.randrange(0, 3600)))
            events.append(("EV-C", t + 7200 + rng.randrange(0, 7200)))
    for _ in range(800 * scale):
        events.append(("EV-D", rng.randrange(0, span_seconds)))
        events.append(("EV-E", rng.randrange(0, span_seconds)))
    noise_types = ["BG1", "BG2", "BG3", "BG4", "BG5"]
    while len(events) < n_events:
        events.append(
            (rng.choice(noise_types), rng.randrange(0, span_seconds))
        )
    store = EventStore()
    store.extend(sorted(events, key=lambda event: event[1]))
    problem = EventDiscoveryProblem(
        structure=structure,
        min_confidence=0.5,
        reference_type="EV-A",
        candidates={
            "X1": frozenset(["EV-B", "EV-D"]),
            "X2": frozenset(["EV-C", "EV-E"]),
        },
    )

    def run():
        outcome = store.mine(problem, system, engine=engine, parallel=4)
        report = outcome.parallelism or {}
        return {
            "store_events": len(store),
            "events_after_reduction": outcome.stats.sequence_events_after,
            "roots": outcome.stats.roots_after,
            "solutions": len(outcome.solutions),
            "automaton_starts": outcome.automaton_starts,
            "workers": report.get("workers", 1),
            "shards": report.get("shards", 0),
        }

    return _Workload(run)


def _x12(system, engine, scale) -> _Workload:
    """Ablation: propagation with a cold vs the warm conversion cache."""
    from ..granularity.convcache import ConversionCache

    structure = _consistent_random_dag(24 * scale, system, random.Random(10))

    def run():
        cold_system = standard_system(cache=ConversionCache())
        cold = propagate(structure, cold_system, engine=engine)
        warm = propagate(structure, cold_system, engine=engine)
        return {
            "cold_cache_misses": cold.conversion_cache_misses,
            "warm_cache_misses": warm.conversion_cache_misses,
            "warm_cache_hits": warm.conversion_cache_hits,
        }

    return _Workload(run)


def _x13(system, engine, scale) -> _Workload:
    """Cold size-table construction: compiled normal form vs sweep.

    A second-resolution periodic type (960 telemetry windows per day)
    put through the cold path every table pays once per process or
    fork-pool worker: build the table, answer a spread of
    minsize/maxsize/mingap queries and two searches.  Every probed k
    stays inside the sweep's exact region, so the two backends must
    agree bit for bit (``identical_to_sweep``); the compiled backend
    skips the 3-periods-plus-two boundary scan entirely (structural
    lowering) and answers each residue from the doubled boundary
    arrays (the PR-5 acceptance number).
    """
    from ..granularity.normalform import CompiledSizeTable
    from ..granularity.periodic import PeriodicPatternType
    from ..granularity.sizes import SizeTable

    segments = 960 * scale
    ks = (1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610,
          960, 1500, 1900)

    def make_type():
        return PeriodicPatternType(
            "telemetry-90s",
            86400 * scale,
            [(i * 90, 40) for i in range(segments)],
        )

    def query(table):
        out = []
        for k in ks:
            if k >= 3 * segments:
                continue
            out.append(table.minsize(k))
            out.append(table.maxsize(k))
            out.append(table.mingap(k))
        out.append(table.min_k_with_minsize_at_least(43_200))
        out.append(table.min_k_with_maxsize_greater(20_000))
        return out

    def run():
        start = time.perf_counter()
        sweep_table = SizeTable(make_type())
        sweep_values = query(sweep_table)
        sweep_seconds = time.perf_counter() - start
        start = time.perf_counter()
        compiled_table = CompiledSizeTable(make_type())
        compiled_values = query(compiled_table)
        compiled_seconds = time.perf_counter() - start
        return {
            "period_ticks": segments,
            "queries": len(sweep_values),
            "identical_to_sweep": sweep_values == compiled_values,
            "sweep_seconds": sweep_seconds,
            "compiled_seconds": compiled_seconds,
            "speedup_vs_sweep": (
                sweep_seconds / compiled_seconds if compiled_seconds else 0.0
            ),
            "sweep_probe_stats": sweep_table.probe_stats(),
            "compiled_probe_stats": compiled_table.probe_stats(),
        }

    return _Workload(run)


def _x14(system, engine, scale) -> _Workload:
    """Strict TAG matching with second-granularity clocks.

    Every event of a strict-mode run pays one coverage check and one
    distance per clock; with a second-resolution periodic clock the
    sweep backend routes those through the type's own ``tick_of``
    while the compiled backend answers by bisection over one period
    of boundary offsets.  Both passes must agree on every match.
    """
    import os

    from ..automata.builder import build_tag
    from ..automata.matching import TagMatcher
    from ..granularity.convcache import ConversionCache
    from ..granularity.periodic import PeriodicPatternType
    from ..mining.events import EventSequence

    window = PeriodicPatternType(
        "obs-window", 3600, [(i * 90, 40) for i in range(40)]
    )

    def build(backend):
        bench_system = standard_system(
            cache=ConversionCache(), sizetable_backend=backend
        )
        bench_system.register(window)
        structure = EventStructure(
            ["X0", "X1", "X2"],
            {
                ("X0", "X1"): [TCG(0, 6, window)],
                ("X1", "X2"): [TCG(0, 12, window)],
            },
        )
        cet = ComplexEventType(
            structure, {"X0": "probe", "X1": "echo", "X2": "ack"}
        )
        return TagMatcher(
            build_tag(cet, system=bench_system), strict=True
        )

    rng = random.Random(14)
    events = []
    for index in range(300 * scale):
        t = index * 450
        events.append(("probe", t))
        events.append(("echo", t + 90 + rng.randrange(0, 180)))
        events.append(("ack", t + 270 + rng.randrange(0, 120)))
    sequence = EventSequence(sorted(events, key=lambda event: event[1]))

    def timed_pass(backend):
        previous = os.environ.get("REPRO_SIZETABLE")
        os.environ["REPRO_SIZETABLE"] = backend
        try:
            matcher = build(backend)
            start = time.perf_counter()
            matches = matcher.count_occurrences(sequence)
            return matches, time.perf_counter() - start
        finally:
            if previous is None:
                os.environ.pop("REPRO_SIZETABLE", None)
            else:
                os.environ["REPRO_SIZETABLE"] = previous

    def run():
        sweep_matches, sweep_seconds = timed_pass("sweep")
        compiled_matches, compiled_seconds = timed_pass("compiled")
        return {
            "events": len(sequence),
            "matches": compiled_matches,
            "identical_to_sweep": compiled_matches == sweep_matches,
            "sweep_seconds": sweep_seconds,
            "compiled_seconds": compiled_seconds,
            "speedup_vs_sweep": (
                sweep_seconds / compiled_seconds if compiled_seconds else 0.0
            ),
        }

    return _Workload(run)


def _x15(system, engine, scale) -> _Workload:
    """Multi-tenant service throughput under eviction churn.

    ``500 * scale`` tenants (1k at the full profile) round-robin one
    three-event chain each through the detection service with only 32
    resident sessions, so nearly every event lands on an evicted
    session: the workload measures the checkpoint / rehydrate cycle
    end to end against the in-memory store.  Every tenant must finish
    with exactly one detection - the bit-identity contract holds at
    fleet scale, not just in the unit tests.
    """
    from ..automata.builder import build_tag
    from ..service import (
        MemoryCheckpointStore,
        ServiceConfig,
        serve_events,
    )

    hour = system.get("hour")
    structure = EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(0, 2, hour)],
            ("B", "C"): [TCG(0, 2, hour)],
        },
    )
    cet = ComplexEventType(structure, {"A": "a", "B": "b", "C": "c"})
    tenants = 500 * scale
    chain = [("a", 0), ("b", 3600), ("c", 7200)]
    records = [
        ("tenant-%04d" % index, "k", etype, event_time)
        for etype, event_time in chain
        for index in range(tenants)
    ]
    build = build_tag(cet, system=system)

    def run():
        store = MemoryCheckpointStore()
        start = time.perf_counter()
        service = serve_events(
            build,
            records,
            ServiceConfig(enabled=True, max_resident_sessions=32),
            store,
            system=system,
        )
        elapsed = time.perf_counter() - start
        detected = {sd.tenant for sd in service.detections}
        return {
            "tenants": tenants,
            "events": len(records),
            "detections": len(service.detections),
            "evictions": service.registry.evictions,
            "rehydrations": service.registry.rehydrations,
            "events_per_second": (
                len(records) / elapsed if elapsed else 0.0
            ),
            "all_tenants_detected": len(detected) == tenants,
        }

    return _Workload(run)


def _x16(system, engine, scale) -> _Workload:
    """Columnar batch matching vs the object path at 10^6 events.

    One million (x scale) events - a planted hour-granularity chain
    drowned in background noise - matched twice through the *same*
    :class:`~repro.automata.matching.TagMatcher`: once with
    ``REPRO_COLUMNAR=off`` (the per-event object loop, the reference)
    and once with ``REPRO_COLUMNAR=on`` (the dense transition table
    advancing over the store's typed columns, which never touches a
    noise event).  Both index structures are prebuilt so the passes
    time matching, not index construction, and the run reports whether
    the two root sets are bit-identical - the differential contract at
    bench scale, not just under Hypothesis.
    """
    import os

    from ..core.api import compile_pattern
    from ..mining.events import EventSequence

    hour = system.get("hour")
    structure = EventStructure(
        ["X0", "X1", "X2"],
        {
            ("X0", "X1"): [TCG(1, 2, hour)],
            ("X1", "X2"): [TCG(0, 3, hour)],
        },
    )
    rng = random.Random(16)
    n_roots = 3000 * scale
    n_events = 1_000_000 * scale
    span_seconds = n_roots * 7200
    events = []
    for index in range(n_roots):
        t = index * 7200
        events.append(("EV-A", t))
        if rng.random() < 0.7:
            events.append(("EV-B", t + 3600 + rng.randrange(0, 3600)))
            events.append(("EV-C", t + 7200 + rng.randrange(0, 7200)))
    noise_types = ["BG1", "BG2", "BG3", "BG4", "BG5"]
    while len(events) < n_events:
        events.append(
            (rng.choice(noise_types), rng.randrange(0, span_seconds))
        )
    sequence = EventSequence(sorted(events, key=lambda event: event[1]))
    matcher = compile_pattern(
        structure,
        {"X0": "EV-A", "X1": "EV-B", "X2": "EV-C"},
        system=system,
        engine=engine,
    )
    # Prebuild both sides' indexes: the posting-list anchor index the
    # object path screens with and the columnar view the dense runtime
    # scans, so the timed passes compare matching work only.
    sequence.anchor_index()
    sequence.columnar()

    def timed_pass(mode):
        previous = os.environ.get("REPRO_COLUMNAR")
        os.environ["REPRO_COLUMNAR"] = mode
        try:
            start = time.perf_counter()
            roots = list(matcher.matching_roots(sequence))
            return roots, time.perf_counter() - start
        finally:
            if previous is None:
                os.environ.pop("REPRO_COLUMNAR", None)
            else:
                os.environ["REPRO_COLUMNAR"] = previous

    def run():
        object_roots, object_seconds = timed_pass("off")
        columnar_roots, columnar_seconds = timed_pass("on")
        return {
            "events": len(sequence),
            "matches": len(columnar_roots),
            "identical_to_reference": columnar_roots == object_roots,
            "object_seconds": object_seconds,
            "columnar_seconds": columnar_seconds,
            "speedup": (
                object_seconds / columnar_seconds
                if columnar_seconds
                else 0.0
            ),
        }

    return _Workload(run)


def _x17(system, engine, scale) -> _Workload:
    """Batched frontier scanning: 64 candidates, one shared traversal.

    A mining-shaped frontier - 64 candidate assignments of one
    three-variable chain (8 types for ``X1`` x 8 for ``X2``, all
    anchored on the same root type) - scanned three ways over the same
    sequence: the per-candidate object path (``REPRO_COLUMNAR=off``,
    the reference), the per-candidate dense path (``REPRO_BATCH=off``,
    64 independent table scans), and the banked batch engine
    (``REPRO_BATCH=on``, one :class:`~repro.automata.dense.DenseBatch`
    advancing the whole frontier per root).  All three must produce
    identical match sets; the gate is the batched engine beating the
    single-candidate dense scans >= 3x, which is exactly the shared
    guard/clock-tick/traversal work the banked tables exist to
    amortise.
    """
    import os

    from ..automata.matching import batch_matching_roots
    from ..core.api import compile_pattern
    from ..mining.events import EventSequence

    hour = system.get("hour")
    minute = system.get("minute")
    structure = EventStructure(
        ["X0", "X1", "X2"],
        {
            ("X0", "X1"): [TCG(0, 4, hour)],
            ("X1", "X2"): [TCG(0, 10, minute)],
        },
    )
    mids = ["MID%d" % i for i in range(8)]
    tails = ["TAIL%d" % i for i in range(8)]
    rng = random.Random(17)
    n_roots = 600 * scale
    events = []
    # Roots every 200s under a ~5h horizon: each window spans ~90 root
    # events.  The per-candidate dense path re-steps over that root
    # stream once per candidate per anchor (none of its configurations
    # can consume ROOT mid-run), while the batched sweep skips each of
    # them once for the whole frontier - the asymmetry the experiment
    # exists to measure.  Mids are sparse (one per ~5 roots) and tails
    # face a 10-minute guard, so most wakes reject cheaply and the
    # shared traversal dominates both sides' overhead.
    for index in range(n_roots):
        t = index * 200
        events.append(("ROOT", t))
        if rng.random() < 0.2:
            events.append((rng.choice(mids), t + rng.randrange(0, 14_400)))
        if rng.random() < 0.5:
            events.append((rng.choice(tails), t + rng.randrange(0, 28_800)))
    sequence = EventSequence(sorted(events, key=lambda event: event[1]))
    matchers = [
        compile_pattern(
            structure,
            {"X0": "ROOT", "X1": mid, "X2": tail},
            system=system,
            engine=engine,
        )
        for mid in mids
        for tail in tails
    ]
    sequence.anchor_index()
    sequence.columnar()

    def timed_pass(columnar, batch):
        previous = {
            name: os.environ.get(name)
            for name in ("REPRO_COLUMNAR", "REPRO_BATCH")
        }
        os.environ["REPRO_COLUMNAR"] = columnar
        os.environ["REPRO_BATCH"] = batch
        try:
            start = time.perf_counter()
            roots = batch_matching_roots(matchers, sequence)
            return roots, time.perf_counter() - start
        finally:
            for name, value in previous.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value

    def run():
        object_roots, object_seconds = timed_pass("off", "off")
        single_roots, single_seconds = timed_pass("on", "off")
        batched_roots, batched_seconds = timed_pass("on", "on")
        return {
            "candidates": len(matchers),
            "events": len(sequence),
            "matches": sum(len(roots) for roots in batched_roots),
            "identical_to_reference": (
                batched_roots == single_roots == object_roots
            ),
            "object_seconds": object_seconds,
            "single_dense_seconds": single_seconds,
            "batched_seconds": batched_seconds,
            "speedup_batched_vs_object": (
                object_seconds / batched_seconds if batched_seconds else 0.0
            ),
            "speedup_batched_vs_single_dense": (
                single_seconds / batched_seconds if batched_seconds else 0.0
            ),
        }

    return _Workload(run)


def _x18(system, engine, scale) -> _Workload:
    """Calendar-algebra clocks: Gregorian and business granularities.

    PR 10 teaches the compiler the types the period scan cannot reach
    (months and years via the 400-year cycle, business calendars as
    weekly overlays, grouped quarters via the operator algebra); this
    experiment exercises them on both production paths:

    * **TCG propagation** over month / quarter / business-month
      constraint granularities, compiled backend vs the sweep
      reference, derived interval groups asserted equal;
    * **batched clock matching**: one month-tick column over a pinned
      40-year event spread, the vectorized
      ``PeriodicNormalForm.ticks_of_instants`` kernel (the columnar
      ``tick_columns`` path) vs the per-event ``tick_of`` loop the
      sweep backend uses, outputs asserted bit-identical.

    Forms are pre-compiled outside the timed region (production
    pre-warms them through the conversion cache / parallel engine);
    the timed compiled pass is the steady-state per-batch cost.
    """
    from ..granularity.combinators import GroupedType
    from ..granularity.convcache import ConversionCache
    from ..granularity.normalform import cached_normal_form, clock_ticks_of

    def build_structure(bench_system):
        month = bench_system.get("month")
        bmonth = bench_system.get("business-month")
        quarter = bench_system.register(
            GroupedType(month, 3, label="quarter")
        )
        return EventStructure(
            ["X0", "X1", "X2", "X3"],
            {
                ("X0", "X1"): [TCG(1, 6, month)],
                ("X1", "X2"): [TCG(0, 2, quarter)],
                ("X0", "X2"): [TCG(1, 9, bmonth)],
                ("X2", "X3"): [TCG(2, 11, month)],
            },
        )

    def propagation_pass(backend):
        bench_system = standard_system(
            cache=ConversionCache(), sizetable_backend=backend
        )
        structure = build_structure(bench_system)
        start = time.perf_counter()
        result = propagate(structure, bench_system, engine=engine)
        return result, time.perf_counter() - start

    rng = random.Random(18)
    horizon_seconds = 40 * 366 * 86400
    times = sorted(
        rng.randrange(0, horizon_seconds) for _ in range(20_000 * scale)
    )

    def clock_pass(backend):
        previous = os.environ.get("REPRO_SIZETABLE")
        os.environ["REPRO_SIZETABLE"] = backend
        try:
            bench_system = standard_system(
                cache=ConversionCache(), sizetable_backend=backend
            )
            month = bench_system.get("month")
            if backend != "sweep":
                cached_normal_form(month)
            start = time.perf_counter()
            ticks, defined = clock_ticks_of(month, times)
            elapsed = time.perf_counter() - start
            return [int(v) for v in ticks], [int(v) for v in defined], elapsed
        finally:
            if previous is None:
                os.environ.pop("REPRO_SIZETABLE", None)
            else:
                os.environ["REPRO_SIZETABLE"] = previous

    def run():
        sweep_result, sweep_prop_seconds = propagation_pass("sweep")
        fast_result, fast_prop_seconds = propagation_pass("compiled")
        propagation_identical = (
            sweep_result.consistent == fast_result.consistent
            and sweep_result.groups == fast_result.groups
        )
        sweep_ticks, sweep_defined, sweep_clock_seconds = clock_pass("sweep")
        fast_ticks, fast_defined, fast_clock_seconds = clock_pass("compiled")
        return {
            "events": len(times),
            "iterations": fast_result.iterations,
            "propagation_identical_to_sweep": propagation_identical,
            "identical_to_sweep": (
                propagation_identical
                and sweep_ticks == fast_ticks
                and sweep_defined == fast_defined
            ),
            "sweep_propagation_seconds": sweep_prop_seconds,
            "compiled_propagation_seconds": fast_prop_seconds,
            "sweep_clock_seconds": sweep_clock_seconds,
            "compiled_clock_seconds": fast_clock_seconds,
            "speedup_clock_vs_sweep": (
                sweep_clock_seconds / fast_clock_seconds
                if fast_clock_seconds
                else 0.0
            ),
            "speedup_propagation_vs_sweep": (
                sweep_prop_seconds / fast_prop_seconds
                if fast_prop_seconds
                else 0.0
            ),
        }

    return _Workload(run)


_EXPERIMENTS: Dict[str, Callable] = {
    "X1": _x1,
    "X2": _x2,
    "X3": _x3,
    "X4": _x4,
    "X5": _x5,
    "X6": _x6,
    "X7": _x7,
    "X8": _x8,
    "X9": _x9,
    "X10": _x10,
    "X11": _x11,
    "X12": _x12,
    "X13": _x13,
    "X14": _x14,
    "X15": _x15,
    "X16": _x16,
    "X17": _x17,
    "X18": _x18,
}

EXPERIMENT_NAMES: Tuple[str, ...] = tuple(_EXPERIMENTS)


# ----------------------------------------------------------------------
# Running and comparing
# ----------------------------------------------------------------------
def slowest_spans(
    trace_payload: Dict[str, object], limit: int = 5
) -> List[Dict[str, object]]:
    """The ``limit`` longest spans of a trace payload, for the BENCH
    record's ``slowest_spans`` table (ties broken by name for stable
    output)."""
    flat: List[Dict[str, object]] = []
    stack = list(trace_payload.get("spans") or [])
    while stack:
        span_ = stack.pop()
        flat.append(span_)
        stack.extend(span_.get("children") or ())
    ranked = sorted(
        flat,
        key=lambda s: (-int(s.get("duration_ns") or 0), s.get("name", "")),
    )
    return [
        {
            "name": span_.get("name"),
            "duration_ms": round(
                int(span_.get("duration_ns") or 0) / 1e6, 3
            ),
            "span_id": span_.get("span_id"),
            "trace_id": span_.get("trace_id"),
        }
        for span_ in ranked[:limit]
    ]


def run_suite(
    engine: str = "auto",
    profile: str = "quick",
    experiments: Optional[Sequence[str]] = None,
    system: Optional[GranularitySystem] = None,
    trace_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run the suite and return the ``BENCH_*.json`` payload.

    ``experiments`` restricts the run to a subset of names (e.g.
    ``["X1", "X4"]``); the default runs all eighteen.  ``trace_dir``
    additionally records one trace file per experiment (every repeat
    runs under a ``bench.<name>`` span in a dedicated tracer) and adds
    ``trace_file`` plus a ``slowest_spans`` table to each experiment
    record; tracing adds its own overhead, so traced medians are not
    comparable with untraced baselines.
    """
    if profile not in PROFILES:
        raise ValueError(
            "unknown profile %r (expected one of %r)"
            % (profile, sorted(PROFILES))
        )
    chosen = list(experiments) if experiments is not None else list(
        EXPERIMENT_NAMES
    )
    unknown = [name for name in chosen if name not in _EXPERIMENTS]
    if unknown:
        raise ValueError("unknown experiments %r" % (unknown,))
    resolved_engine = resolve_engine(engine)
    repeats = PROFILES[profile]["repeats"]
    scale = PROFILES[profile]["scale"]
    system = system if system is not None else standard_system()
    payload: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "profile": profile,
        "engine": resolved_engine,
        "repeats": repeats,
        "experiments": {},
    }
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    for name in chosen:
        workload = _EXPERIMENTS[name](system, resolved_engine, scale)
        times = []
        counters: Dict[str, object] = {}
        tracer = Tracer() if trace_dir is not None else None
        before_metrics = metrics_snapshot()
        for index in range(repeats):
            if tracer is not None:
                with activate_tracer(tracer):
                    with span("bench.%s" % name, repeat=index):
                        start = time.perf_counter()
                        counters = workload.run()
                        times.append(time.perf_counter() - start)
            else:
                start = time.perf_counter()
                counters = workload.run()
                times.append(time.perf_counter() - start)
        record: Dict[str, object] = {
            "median_seconds": statistics.median(times),
            "repeats": repeats,
            "counters": counters,
            # What this experiment (all repeats) added to the global
            # registry; empty under REPRO_OBS=off.
            "metrics_delta": counter_deltas(
                before_metrics, metrics_snapshot()
            ),
        }
        if tracer is not None:
            trace_file = os.path.join(trace_dir, "%s.json" % name)
            write_trace(tracer, trace_file)
            record["trace_file"] = trace_file
            record["slowest_spans"] = slowest_spans(tracer.to_dict())
        payload["experiments"][name] = record
    payload["conversion_cache"] = system.conversion_cache.stats()
    payload["size_tables"] = system.size_table_stats()
    payload["metrics"] = metrics_snapshot()
    return payload


def compare_payloads(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.25,
    min_delta_seconds: float = 0.005,
) -> List[Dict[str, object]]:
    """Per-experiment comparison rows against a baseline payload.

    An experiment *regresses* when its median wall time exceeds the
    baseline's by more than ``tolerance`` (0.25 = +25%) *and* by more
    than ``min_delta_seconds`` in absolute terms - the floor keeps
    scheduler jitter on sub-millisecond experiments from tripping the
    gate (a 0.4 ms experiment can easily double without meaning
    anything).

    Experiments whose medians sit entirely under the jitter floor (both
    current and baseline below ``min_delta_seconds``) are
    *informational-only*: their row carries ``informational: True``, is
    never pass/fail, and renders as ``info`` in the delta table.  Such
    timings are dominated by scheduler noise, so the comparison is
    reported for the record but can neither pass nor fail the gate.

    The iteration covers the *union* of registered experiment names and
    whatever keys appear in either payload, so nothing is silently
    dropped: an experiment missing from one payload, or one this
    harness version does not know (a baseline recorded by a newer or
    older harness), still produces a row, with a human-readable
    ``warning`` explaining the asymmetry.  Such rows have ``ratio``
    None when unmeasurable and never count as regressions (so suites
    can grow and shrink without tripping the gate).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    rows: List[Dict[str, object]] = []
    current_runs = current.get("experiments", {})
    baseline_runs = baseline.get("experiments", {})
    extras = sorted(
        (set(current_runs) | set(baseline_runs)) - set(EXPERIMENT_NAMES)
    )
    for name in list(EXPERIMENT_NAMES) + extras:
        cur = current_runs.get(name)
        base = baseline_runs.get(name)
        if cur is None and base is None:
            continue
        warnings = []
        if name not in _EXPERIMENTS:
            warnings.append("unknown experiment (not in this harness)")
        if cur is None:
            warnings.append("missing from current run")
        if base is None:
            warnings.append("missing from baseline")
        warning = "; ".join(warnings) if warnings else None
        if cur is None or base is None:
            rows.append(
                {
                    "experiment": name,
                    "current_seconds": cur and cur["median_seconds"],
                    "baseline_seconds": base and base["median_seconds"],
                    "ratio": None,
                    "regressed": False,
                    "informational": False,
                    "warning": warning,
                }
            )
            continue
        cur_s = float(cur["median_seconds"])
        base_s = float(base["median_seconds"])
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        informational = (
            cur_s < min_delta_seconds and base_s < min_delta_seconds
        )
        rows.append(
            {
                "experiment": name,
                "current_seconds": cur_s,
                "baseline_seconds": base_s,
                "ratio": ratio,
                "regressed": (
                    not informational
                    and ratio > 1.0 + tolerance
                    and cur_s - base_s > min_delta_seconds
                ),
                "informational": informational,
                "warning": warning,
            }
        )
    return rows


def comparison_delta_table(
    current: Dict[str, object],
    baseline: Dict[str, object],
    rows: Sequence[Dict[str, object]],
) -> Dict[str, object]:
    """A nested mapping of the comparison, one subtree per experiment.

    Renders through :func:`repro.obs.format_tree` (the ``repro bench
    --baseline`` output): timing verdicts plus the work-counter deltas
    between the two payloads, so a slowdown can be read next to the
    counter that moved.
    """
    current_runs = current.get("experiments", {})
    baseline_runs = baseline.get("experiments", {})
    table: Dict[str, object] = {}
    for row in rows:
        name = str(row["experiment"])
        ratio = row["ratio"]
        entry: Dict[str, object] = {
            "current_seconds": _fmt_seconds(row["current_seconds"]),
            "baseline_seconds": _fmt_seconds(row["baseline_seconds"]),
            "ratio": "%.2fx" % ratio if ratio is not None else "-",
            "verdict": (
                "REGRESSED"
                if row["regressed"]
                else "info (under jitter floor)"
                if row.get("informational")
                else "ok"
            ),
        }
        if row.get("warning"):
            entry["warning"] = row["warning"]
        cur = current_runs.get(name)
        base = baseline_runs.get(name)
        if cur is not None and base is not None:
            deltas = counter_deltas(
                base.get("counters", {}), cur.get("counters", {})
            )
            if deltas:
                entry["counter_deltas"] = deltas
        table[name] = entry
    return table


def format_comparison(rows: Sequence[Dict[str, object]]) -> str:
    """A fixed-width text table of :func:`compare_payloads` rows."""
    lines = [
        "%-6s %12s %12s %8s %s"
        % ("exp", "current[s]", "baseline[s]", "ratio", "verdict")
    ]
    for row in rows:
        ratio = row["ratio"]
        if row["regressed"]:
            verdict = "REGRESSED"
        elif row.get("informational"):
            verdict = "info (under jitter floor)"
        else:
            verdict = "ok"
        if row.get("warning"):
            verdict += "  [warning: %s]" % row["warning"]
        lines.append(
            "%-6s %12s %12s %8s %s"
            % (
                row["experiment"],
                _fmt_seconds(row["current_seconds"]),
                _fmt_seconds(row["baseline_seconds"]),
                "%.2fx" % ratio if ratio is not None else "-",
                verdict,
            )
        )
    return "\n".join(lines)


def _fmt_seconds(value) -> str:
    return "%.4f" % value if value is not None else "-"


def assert_no_regressions(rows: Sequence[Dict[str, object]]) -> None:
    """Raise :class:`BenchmarkRegression` when any comparison row
    regressed (the programmatic form of the CLI's exit code 1)."""
    regressed = [row["experiment"] for row in rows if row["regressed"]]
    if regressed:
        raise BenchmarkRegression(
            "benchmark regression in %s" % ", ".join(map(str, regressed))
        )


def load_payload(path: str) -> Dict[str, object]:
    """Read a ``BENCH_*.json`` payload (validating the schema field)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            "unsupported benchmark payload schema %r in %s (expected %d)"
            % (payload.get("schema"), path, SCHEMA_VERSION)
        )
    return payload


def save_payload(payload: Dict[str, object], path: str) -> None:
    """Write a payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
