"""CSV event logs, with a from-scratch calendar timestamp parser.

Real event feeds arrive as flat files; this module reads and writes the
library's :class:`~repro.mining.events.EventSequence` as two-column CSV
(``event_type,timestamp``).  Timestamps may be

* plain integers (seconds of the absolute timeline), or
* calendar stamps ``YYYY-MM-DD``, ``YYYY-MM-DD HH:MM`` or
  ``YYYY-MM-DD HH:MM:SS`` interpreted in the library's synthetic
  proleptic Gregorian calendar (no ``datetime`` involved).
"""

from __future__ import annotations

import csv
import re
from typing import IO, Iterable, List, Optional, Tuple, Union

from ..granularity import gregorian as greg
from ..mining.events import Event, EventSequence
from ..resilience.quarantine import Quarantine

_STAMP = re.compile(
    r"^(\d{4})-(\d{2})-(\d{2})(?:[ T](\d{2}):(\d{2})(?::(\d{2}))?)?$"
)


class CsvFormatError(ValueError):
    """Raised on malformed CSV rows or timestamps."""


def parse_timestamp(text: str) -> int:
    """Parse an integer or calendar timestamp into absolute seconds."""
    text = text.strip()
    if re.fullmatch(r"\d+", text):
        return int(text)
    match = _STAMP.match(text)
    if match is None:
        raise CsvFormatError("unparseable timestamp %r" % (text,))
    year, month, day = (int(match.group(i)) for i in (1, 2, 3))
    hour = int(match.group(4) or 0)
    minute = int(match.group(5) or 0)
    second = int(match.group(6) or 0)
    if hour > 23 or minute > 59 or second > 59:
        raise CsvFormatError("time of day out of range in %r" % (text,))
    try:
        day_index = greg.ymd_to_day(year, month, day)
    except ValueError as exc:
        raise CsvFormatError(str(exc))
    if day_index < 0:
        raise CsvFormatError(
            "date %r precedes the epoch (%d-01-01)" % (text, greg.EPOCH_YEAR)
        )
    return (
        day_index * greg.SECONDS_PER_DAY
        + hour * greg.SECONDS_PER_HOUR
        + minute * greg.SECONDS_PER_MINUTE
        + second
    )


def format_timestamp(seconds: int) -> str:
    """Render absolute seconds as ``YYYY-MM-DD HH:MM:SS``."""
    if seconds < 0:
        raise ValueError("timestamps are non-negative")
    day_index, within = divmod(seconds, greg.SECONDS_PER_DAY)
    year, month, day = greg.day_to_ymd(day_index)
    hour, within = divmod(within, greg.SECONDS_PER_HOUR)
    minute, second = divmod(within, greg.SECONDS_PER_MINUTE)
    return "%04d-%02d-%02d %02d:%02d:%02d" % (
        year,
        month,
        day,
        hour,
        minute,
        second,
    )


def read_events(
    source: Union[str, IO],
    has_header: bool = None,
    quarantine: Optional[Quarantine] = None,
) -> EventSequence:
    """Read an event sequence from CSV.

    ``has_header`` None (default) auto-detects a header row by checking
    whether the second column of the first row parses as a timestamp.

    Without a ``quarantine`` the read is strict: the first malformed
    row raises :class:`CsvFormatError` (historical behaviour).  With
    one, malformed rows (too few columns, unparseable timestamps,
    empty event types) are recorded there - line number, reason, raw
    row - and reading continues (dead-letter semantics, shared with
    :meth:`repro.store.EventStore.load_jsonl`).
    """
    if isinstance(source, str):
        with open(source, newline="") as handle:
            return read_events(
                handle, has_header=has_header, quarantine=quarantine
            )
    rows = list(csv.reader(source))
    events: List[Event] = []
    start = 0
    if rows and has_header is None:
        try:
            _require_two(rows[0])
            parse_timestamp(rows[0][1])
        except CsvFormatError:
            start = 1
    elif has_header:
        start = 1
    for number, row in enumerate(rows[start:], start=start + 1):
        if not row or (len(row) == 1 and not row[0].strip()):
            continue  # blank line
        try:
            _require_two(row, line=number)
            etype = row[0].strip()
            if not etype:
                raise CsvFormatError("line %d: empty event type" % number)
            events.append(Event(etype, parse_timestamp(row[1])))
        except CsvFormatError as exc:
            if quarantine is None:
                raise
            quarantine.add(str(exc), raw=list(row), line=number)
    return EventSequence(events)


def read_tenant_events(
    source: Union[str, IO],
    has_header: bool = None,
    quarantine: Optional[Quarantine] = None,
    default_key: str = "default",
) -> List[Tuple[str, str, str, int]]:
    """Read a multi-tenant event stream from CSV.

    Rows are ``tenant,event_type,timestamp`` with an optional fourth
    ``sequence_key`` column (missing or empty -> ``default_key``).
    Timestamps accept the same forms as :func:`read_events`.  Returns
    ``(tenant, key, event_type, time)`` tuples in file order - the
    submission format of
    :func:`repro.service.serve_events` and ``repro serve``.

    Header auto-detection and quarantine semantics mirror
    :func:`read_events`: strict without a quarantine, dead-letter with
    one.
    """
    if isinstance(source, str):
        with open(source, newline="") as handle:
            return read_tenant_events(
                handle,
                has_header=has_header,
                quarantine=quarantine,
                default_key=default_key,
            )
    rows = list(csv.reader(source))
    records: List[Tuple[str, str, str, int]] = []
    start = 0
    if rows and has_header is None:
        try:
            if len(rows[0]) < 3:
                raise CsvFormatError("short row")
            parse_timestamp(rows[0][2])
        except CsvFormatError:
            start = 1
    elif has_header:
        start = 1
    for number, row in enumerate(rows[start:], start=start + 1):
        if not row or (len(row) == 1 and not row[0].strip()):
            continue  # blank line
        try:
            if len(row) < 3:
                raise CsvFormatError(
                    "line %d: expected 'tenant,event_type,timestamp"
                    "[,sequence_key]', got %r" % (number, row)
                )
            tenant = row[0].strip()
            etype = row[1].strip()
            if not tenant:
                raise CsvFormatError("line %d: empty tenant" % number)
            if not etype:
                raise CsvFormatError("line %d: empty event type" % number)
            key = row[3].strip() if len(row) > 3 and row[3].strip() \
                else default_key
            records.append((tenant, key, etype, parse_timestamp(row[2])))
        except CsvFormatError as exc:
            if quarantine is None:
                raise
            quarantine.add(str(exc), raw=list(row), line=number)
    return records


def _require_two(row: List[str], line: int = 1) -> None:
    if len(row) < 2:
        raise CsvFormatError(
            "line %d: expected 'event_type,timestamp', got %r" % (line, row)
        )


def write_events(
    sequence: Iterable[Event],
    target: Union[str, IO],
    calendar_stamps: bool = True,
    header: bool = True,
) -> None:
    """Write events as CSV (calendar stamps by default)."""
    if isinstance(target, str):
        with open(target, "w", newline="") as handle:
            write_events(
                sequence,
                handle,
                calendar_stamps=calendar_stamps,
                header=header,
            )
        return
    writer = csv.writer(target)
    if header:
        writer.writerow(["event_type", "timestamp"])
    for event in sequence:
        stamp = (
            format_timestamp(event.time) if calendar_stamps else event.time
        )
        writer.writerow([event.etype, stamp])
