"""JSON (de)serialisation of the library's value objects.

Temporal types are encoded structurally (kind + parameters) so that
event structures, complex event types, discovery problems and event
sequences round-trip through plain JSON - the format the CLI consumes
and a natural interchange format for downstream tools.

Standard calendar types are referenced by label against the target
:class:`~repro.granularity.registry.GranularitySystem`; derived types
(groupings, business calendars, periodic patterns) carry their full
construction recipe.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Mapping, Optional, Union

from ..constraints.structure import ComplexEventType, EventStructure
from ..constraints.tcg import TCG
from ..granularity.base import TemporalType, UniformType
from ..granularity.business import (
    BusinessDayType,
    BusinessMonthType,
    BusinessWeekType,
)
from ..granularity.calendar import MonthType, YearType
from ..granularity.combinators import GroupedType
from ..granularity.intersection import IntersectionType
from ..granularity.periodic import PeriodicPatternType
from ..granularity.registry import GranularitySystem
from ..mining.discovery import EventDiscoveryProblem, TypeConstraint
from ..mining.events import Event, EventSequence


class SerializationError(ValueError):
    """Raised on malformed or unsupported payloads."""


# ----------------------------------------------------------------------
# Temporal types
# ----------------------------------------------------------------------
def granularity_to_dict(ttype: TemporalType) -> Dict[str, Any]:
    """Encode a temporal type structurally."""
    if isinstance(ttype, GroupedType):
        return {
            "kind": "grouped",
            "label": ttype.label,
            "base": granularity_to_dict(ttype.base),
            "n": ttype.n,
            "offset": ttype.offset,
        }
    if isinstance(ttype, PeriodicPatternType):
        return {
            "kind": "periodic",
            "label": ttype.label,
            "cycle_seconds": ttype.cycle_seconds,
            "segments": [list(s) for s in ttype.segments],
            "phase": ttype.phase,
        }
    if isinstance(ttype, BusinessDayType):
        return {
            "kind": "businessday",
            "label": ttype.label,
            "workdays": list(ttype.workdays),
            "holidays": list(ttype.holidays),
        }
    if isinstance(ttype, BusinessWeekType):
        return {
            "kind": "businessweek",
            "label": ttype.label,
            "bday": granularity_to_dict(ttype.bday),
        }
    if isinstance(ttype, BusinessMonthType):
        return {
            "kind": "businessmonth",
            "label": ttype.label,
            "bday": granularity_to_dict(ttype.bday),
        }
    if isinstance(ttype, IntersectionType):
        return {
            "kind": "intersection",
            "label": ttype.label,
            "a": granularity_to_dict(ttype.a),
            "b": granularity_to_dict(ttype.b),
        }
    if isinstance(ttype, (MonthType, YearType)):
        return {"kind": "label", "label": ttype.label}
    if isinstance(ttype, UniformType):
        return {
            "kind": "uniform",
            "label": ttype.label,
            "seconds_per_tick": ttype.seconds_per_tick,
            "phase": ttype.phase,
        }
    # Fall back to a label reference for exotic user types.
    return {"kind": "label", "label": ttype.label}


def granularity_from_dict(
    payload: Mapping[str, Any], system: GranularitySystem
) -> TemporalType:
    """Decode a temporal type, registering it in the system."""
    kind = payload.get("kind")
    if kind == "label":
        try:
            return system.get(payload["label"])
        except KeyError:
            raise SerializationError(
                "granularity label %r is not registered" % (payload["label"],)
            )
    if kind == "uniform":
        return system.register(
            UniformType(
                payload["label"],
                int(payload["seconds_per_tick"]),
                phase=int(payload.get("phase", 0)),
            )
        )
    if kind == "grouped":
        base = granularity_from_dict(payload["base"], system)
        return system.register(
            GroupedType(
                base,
                int(payload["n"]),
                label=payload.get("label"),
                offset=int(payload.get("offset", 0)),
            )
        )
    if kind == "periodic":
        return system.register(
            PeriodicPatternType(
                payload["label"],
                int(payload["cycle_seconds"]),
                [tuple(s) for s in payload["segments"]],
                phase=int(payload.get("phase", 0)),
            )
        )
    if kind == "intersection":
        return system.register(
            IntersectionType(
                granularity_from_dict(payload["a"], system),
                granularity_from_dict(payload["b"], system),
                label=payload.get("label"),
            )
        )
    if kind == "businessday":
        return system.register(
            BusinessDayType(
                label=payload.get("label", "b-day"),
                workdays=tuple(payload.get("workdays", (0, 1, 2, 3, 4))),
                holidays=payload.get("holidays", ()),
            )
        )
    if kind == "businessweek":
        bday = granularity_from_dict(payload["bday"], system)
        return system.register(
            BusinessWeekType(label=payload.get("label", "b-week"), bday=bday)
        )
    if kind == "businessmonth":
        bday = granularity_from_dict(payload["bday"], system)
        return system.register(
            BusinessMonthType(
                label=payload.get("label", "business-month"), bday=bday
            )
        )
    raise SerializationError("unknown granularity kind %r" % (kind,))


# ----------------------------------------------------------------------
# Constraints and structures
# ----------------------------------------------------------------------
def tcg_to_dict(constraint: TCG) -> Dict[str, Any]:
    """Encode a TCG."""
    return {
        "m": constraint.m,
        "n": constraint.n,
        "granularity": granularity_to_dict(constraint.granularity),
    }


def tcg_from_dict(
    payload: Mapping[str, Any], system: GranularitySystem
) -> TCG:
    """Decode a TCG."""
    return TCG(
        int(payload["m"]),
        int(payload["n"]),
        granularity_from_dict(payload["granularity"], system),
    )


def structure_to_dict(structure: EventStructure) -> Dict[str, Any]:
    """Encode an event structure."""
    return {
        "variables": list(structure.variables),
        "constraints": [
            {
                "from": src,
                "to": dst,
                "tcgs": [tcg_to_dict(c) for c in tcgs],
            }
            for (src, dst), tcgs in structure.constraints.items()
        ],
    }


def structure_from_dict(
    payload: Mapping[str, Any], system: GranularitySystem
) -> EventStructure:
    """Decode an event structure (validated on construction)."""
    try:
        constraints = {
            (arc["from"], arc["to"]): [
                tcg_from_dict(c, system) for c in arc["tcgs"]
            ]
            for arc in payload["constraints"]
        }
        return EventStructure(payload["variables"], constraints)
    except (KeyError, TypeError) as exc:
        raise SerializationError("malformed structure payload: %s" % exc)


def complex_event_type_to_dict(cet: ComplexEventType) -> Dict[str, Any]:
    """Encode a complex event type (structure + assignment)."""
    return {
        "structure": structure_to_dict(cet.structure),
        "assignment": dict(cet.assignment),
    }


def complex_event_type_from_dict(
    payload: Mapping[str, Any], system: GranularitySystem
) -> ComplexEventType:
    """Decode a complex event type."""
    structure = structure_from_dict(payload["structure"], system)
    return ComplexEventType(structure, payload["assignment"])


def problem_to_dict(problem: EventDiscoveryProblem) -> Dict[str, Any]:
    """Encode an event-discovery problem."""
    return {
        "structure": structure_to_dict(problem.structure),
        "min_confidence": problem.min_confidence,
        "reference_type": problem.reference_type,
        "candidates": {
            variable: sorted(pool) if pool is not None else None
            for variable, pool in problem.candidates.items()
        },
        "type_constraints": [
            {"kind": constraint.kind, "variables": list(constraint.variables)}
            for constraint in problem.type_constraints
        ],
    }


def problem_from_dict(
    payload: Mapping[str, Any], system: GranularitySystem
) -> EventDiscoveryProblem:
    """Decode an event-discovery problem."""
    structure = structure_from_dict(payload["structure"], system)
    candidates = {
        variable: frozenset(pool) if pool is not None else None
        for variable, pool in payload.get("candidates", {}).items()
    }
    type_constraints = tuple(
        TypeConstraint(item["kind"], item["variables"])
        for item in payload.get("type_constraints", ())
    )
    return EventDiscoveryProblem(
        structure=structure,
        min_confidence=float(payload["min_confidence"]),
        reference_type=payload["reference_type"],
        candidates=candidates,
        type_constraints=type_constraints,
    )


# ----------------------------------------------------------------------
# Sequences
# ----------------------------------------------------------------------
def sequence_to_dict(sequence: EventSequence) -> Dict[str, Any]:
    """Encode an event sequence."""
    return {"events": [[e.etype, e.time] for e in sequence]}


def sequence_from_dict(payload: Mapping[str, Any]) -> EventSequence:
    """Decode an event sequence."""
    try:
        return EventSequence(
            Event(etype, int(time)) for etype, time in payload["events"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed sequence payload: %s" % exc)


# ----------------------------------------------------------------------
# Streaming-matcher checkpoints
# ----------------------------------------------------------------------
#: Payload format version for streaming checkpoints.
CHECKPOINT_VERSION = 1


def _encode_tag_state(state: Any) -> Any:
    """Encode a TAG state for JSON (builder states are int tuples).

    Tuples nest as ``{"t": [...]}`` so they survive the JSON round
    trip distinguishably from lists; ints and strings pass through.
    """
    if isinstance(state, tuple):
        return {"t": [_encode_tag_state(item) for item in state]}
    if isinstance(state, (int, str)):
        return state
    raise SerializationError(
        "cannot checkpoint TAG state %r (only tuples/ints/strings)"
        % (state,)
    )


def _decode_tag_state(payload: Any) -> Any:
    if isinstance(payload, Mapping) and "t" in payload:
        return tuple(_decode_tag_state(item) for item in payload["t"])
    if isinstance(payload, (int, str)):
        return payload
    raise SerializationError("malformed TAG state payload %r" % (payload,))


def configuration_to_dict(config) -> Dict[str, Any]:
    """Encode one automaton configuration (state, clocks, bindings)."""
    return {
        "state": _encode_tag_state(config.state),
        "reset_times": dict(config.reset_times),
        "last_time": config.last_time,
        "bindings": [[variable, time] for variable, time in config.bindings],
    }


def configuration_from_dict(payload: Mapping[str, Any]):
    """Decode :func:`configuration_to_dict` output."""
    from ..automata.tag import Configuration

    try:
        return Configuration(
            state=_decode_tag_state(payload["state"]),
            reset_times={
                str(name): int(time)
                for name, time in payload["reset_times"].items()
            },
            last_time=int(payload["last_time"]),
            bindings=tuple(
                (str(variable), int(time))
                for variable, time in payload.get("bindings", ())
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            "malformed configuration payload: %s" % exc
        )


def streaming_checkpoint_to_dict(matcher) -> Dict[str, Any]:
    """Snapshot a :class:`~repro.automata.streaming.StreamingMatcher`.

    The payload carries the pattern (so the TAG is rebuilt on
    restore), the matcher's tuning parameters, every live anchor's
    configuration set (bindings included - they become detection
    output), the reorder buffer, and all counters.  It is pure JSON:
    write it with :func:`dump_json`, read it back with
    :func:`load_json`.
    """
    return {
        "version": CHECKPOINT_VERSION,
        "pattern": complex_event_type_to_dict(
            matcher.build.complex_event_type
        ),
        "strict": matcher.strict,
        "horizon_seconds": matcher.horizon_seconds,
        "max_live_anchors": matcher.max_live_anchors,
        "overflow_policy": matcher.overflow_policy,
        "last_time": matcher._last_time,
        "max_time_seen": matcher._max_time_seen,
        "counters": {
            "events_received": matcher.events_received,
            "events_processed": matcher.events_processed,
            "detections_emitted": matcher.detections_emitted,
            "anchors_shed": matcher.anchors_shed,
        },
        "anchors": [
            {
                "time": anchor.time,
                "configs": [
                    configuration_to_dict(config)
                    for config in anchor.configs
                ],
            }
            for anchor in matcher._anchors
        ],
        "reorder": (
            matcher._buffer.to_dict() if matcher._buffer is not None else None
        ),
    }


def streaming_matcher_from_checkpoint(
    payload: Mapping[str, Any],
    system: Optional[GranularitySystem] = None,
):
    """Rebuild a matcher from :func:`streaming_checkpoint_to_dict`.

    ``system`` defaults to :func:`repro.granularity.standard_system`;
    pass the original system when the pattern uses custom
    granularities registered there.
    """
    from ..automata.builder import build_tag
    from ..automata.streaming import StreamingMatcher, _Anchor
    from ..granularity.registry import standard_system
    from ..resilience.reorder import ReorderBuffer

    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise SerializationError(
            "unsupported checkpoint version %r (expected %d)"
            % (version, CHECKPOINT_VERSION)
        )
    system = system if system is not None else standard_system()
    try:
        cet = complex_event_type_from_dict(payload["pattern"], system)
        horizon = payload.get("horizon_seconds")
        matcher = StreamingMatcher(
            build_tag(cet),
            strict=bool(payload.get("strict", False)),
            horizon_seconds=int(horizon) if horizon is not None else None,
            max_live_anchors=int(payload.get("max_live_anchors", 10_000)),
            overflow_policy=payload.get("overflow_policy", "raise"),
        )
        last_time = payload.get("last_time")
        matcher._last_time = int(last_time) if last_time is not None else None
        max_seen = payload.get("max_time_seen", last_time)
        matcher._max_time_seen = int(max_seen) if max_seen is not None else None
        counters = payload.get("counters", {})
        matcher.events_received = int(counters.get("events_received", 0))
        matcher.events_processed = int(counters.get("events_processed", 0))
        matcher.detections_emitted = int(
            counters.get("detections_emitted", 0)
        )
        matcher.anchors_shed = int(counters.get("anchors_shed", 0))
        matcher._anchors = [
            _Anchor(
                int(anchor["time"]),
                [
                    configuration_from_dict(config)
                    for config in anchor["configs"]
                ],
            )
            for anchor in payload.get("anchors", ())
        ]
        reorder = payload.get("reorder")
        if reorder is not None:
            matcher._buffer = ReorderBuffer.from_dict(reorder)
        return matcher
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, SerializationError):
            raise
        raise SerializationError("malformed checkpoint payload: %s" % exc)


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def dump_json(payload: Mapping[str, Any], target: Union[str, IO]) -> None:
    """Write a payload as pretty JSON to a path or file object."""
    if isinstance(target, str):
        with open(target, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    else:
        json.dump(payload, target, indent=2, sort_keys=True)


def load_json(source: Union[str, IO]) -> Any:
    """Read JSON from a path or file object."""
    if isinstance(source, str):
        with open(source) as handle:
            return json.load(handle)
    return json.load(source)
