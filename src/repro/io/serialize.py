"""JSON (de)serialisation of the library's value objects.

Temporal types are encoded structurally (kind + parameters) so that
event structures, complex event types, discovery problems and event
sequences round-trip through plain JSON - the format the CLI consumes
and a natural interchange format for downstream tools.

Standard calendar types are referenced by label against the target
:class:`~repro.granularity.registry.GranularitySystem`; derived types
(groupings, business calendars, periodic patterns) carry their full
construction recipe.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Mapping, Union

from ..constraints.structure import ComplexEventType, EventStructure
from ..constraints.tcg import TCG
from ..granularity.base import TemporalType, UniformType
from ..granularity.business import (
    BusinessDayType,
    BusinessMonthType,
    BusinessWeekType,
)
from ..granularity.calendar import MonthType, YearType
from ..granularity.combinators import GroupedType
from ..granularity.intersection import IntersectionType
from ..granularity.periodic import PeriodicPatternType
from ..granularity.registry import GranularitySystem
from ..mining.discovery import EventDiscoveryProblem, TypeConstraint
from ..mining.events import Event, EventSequence


class SerializationError(ValueError):
    """Raised on malformed or unsupported payloads."""


# ----------------------------------------------------------------------
# Temporal types
# ----------------------------------------------------------------------
def granularity_to_dict(ttype: TemporalType) -> Dict[str, Any]:
    """Encode a temporal type structurally."""
    if isinstance(ttype, GroupedType):
        return {
            "kind": "grouped",
            "label": ttype.label,
            "base": granularity_to_dict(ttype.base),
            "n": ttype.n,
            "offset": ttype.offset,
        }
    if isinstance(ttype, PeriodicPatternType):
        return {
            "kind": "periodic",
            "label": ttype.label,
            "cycle_seconds": ttype.cycle_seconds,
            "segments": [list(s) for s in ttype.segments],
            "phase": ttype.phase,
        }
    if isinstance(ttype, BusinessDayType):
        return {
            "kind": "businessday",
            "label": ttype.label,
            "workdays": list(ttype.workdays),
            "holidays": list(ttype.holidays),
        }
    if isinstance(ttype, BusinessWeekType):
        return {
            "kind": "businessweek",
            "label": ttype.label,
            "bday": granularity_to_dict(ttype.bday),
        }
    if isinstance(ttype, BusinessMonthType):
        return {
            "kind": "businessmonth",
            "label": ttype.label,
            "bday": granularity_to_dict(ttype.bday),
        }
    if isinstance(ttype, IntersectionType):
        return {
            "kind": "intersection",
            "label": ttype.label,
            "a": granularity_to_dict(ttype.a),
            "b": granularity_to_dict(ttype.b),
        }
    if isinstance(ttype, (MonthType, YearType)):
        return {"kind": "label", "label": ttype.label}
    if isinstance(ttype, UniformType):
        return {
            "kind": "uniform",
            "label": ttype.label,
            "seconds_per_tick": ttype.seconds_per_tick,
            "phase": ttype.phase,
        }
    # Fall back to a label reference for exotic user types.
    return {"kind": "label", "label": ttype.label}


def granularity_from_dict(
    payload: Mapping[str, Any], system: GranularitySystem
) -> TemporalType:
    """Decode a temporal type, registering it in the system."""
    kind = payload.get("kind")
    if kind == "label":
        try:
            return system.get(payload["label"])
        except KeyError:
            raise SerializationError(
                "granularity label %r is not registered" % (payload["label"],)
            )
    if kind == "uniform":
        return system.register(
            UniformType(
                payload["label"],
                int(payload["seconds_per_tick"]),
                phase=int(payload.get("phase", 0)),
            )
        )
    if kind == "grouped":
        base = granularity_from_dict(payload["base"], system)
        return system.register(
            GroupedType(
                base,
                int(payload["n"]),
                label=payload.get("label"),
                offset=int(payload.get("offset", 0)),
            )
        )
    if kind == "periodic":
        return system.register(
            PeriodicPatternType(
                payload["label"],
                int(payload["cycle_seconds"]),
                [tuple(s) for s in payload["segments"]],
                phase=int(payload.get("phase", 0)),
            )
        )
    if kind == "intersection":
        return system.register(
            IntersectionType(
                granularity_from_dict(payload["a"], system),
                granularity_from_dict(payload["b"], system),
                label=payload.get("label"),
            )
        )
    if kind == "businessday":
        return system.register(
            BusinessDayType(
                label=payload.get("label", "b-day"),
                workdays=tuple(payload.get("workdays", (0, 1, 2, 3, 4))),
                holidays=payload.get("holidays", ()),
            )
        )
    if kind == "businessweek":
        bday = granularity_from_dict(payload["bday"], system)
        return system.register(
            BusinessWeekType(label=payload.get("label", "b-week"), bday=bday)
        )
    if kind == "businessmonth":
        bday = granularity_from_dict(payload["bday"], system)
        return system.register(
            BusinessMonthType(
                label=payload.get("label", "business-month"), bday=bday
            )
        )
    raise SerializationError("unknown granularity kind %r" % (kind,))


# ----------------------------------------------------------------------
# Constraints and structures
# ----------------------------------------------------------------------
def tcg_to_dict(constraint: TCG) -> Dict[str, Any]:
    """Encode a TCG."""
    return {
        "m": constraint.m,
        "n": constraint.n,
        "granularity": granularity_to_dict(constraint.granularity),
    }


def tcg_from_dict(
    payload: Mapping[str, Any], system: GranularitySystem
) -> TCG:
    """Decode a TCG."""
    return TCG(
        int(payload["m"]),
        int(payload["n"]),
        granularity_from_dict(payload["granularity"], system),
    )


def structure_to_dict(structure: EventStructure) -> Dict[str, Any]:
    """Encode an event structure."""
    return {
        "variables": list(structure.variables),
        "constraints": [
            {
                "from": src,
                "to": dst,
                "tcgs": [tcg_to_dict(c) for c in tcgs],
            }
            for (src, dst), tcgs in structure.constraints.items()
        ],
    }


def structure_from_dict(
    payload: Mapping[str, Any], system: GranularitySystem
) -> EventStructure:
    """Decode an event structure (validated on construction)."""
    try:
        constraints = {
            (arc["from"], arc["to"]): [
                tcg_from_dict(c, system) for c in arc["tcgs"]
            ]
            for arc in payload["constraints"]
        }
        return EventStructure(payload["variables"], constraints)
    except (KeyError, TypeError) as exc:
        raise SerializationError("malformed structure payload: %s" % exc)


def complex_event_type_to_dict(cet: ComplexEventType) -> Dict[str, Any]:
    """Encode a complex event type (structure + assignment)."""
    return {
        "structure": structure_to_dict(cet.structure),
        "assignment": dict(cet.assignment),
    }


def complex_event_type_from_dict(
    payload: Mapping[str, Any], system: GranularitySystem
) -> ComplexEventType:
    """Decode a complex event type."""
    structure = structure_from_dict(payload["structure"], system)
    return ComplexEventType(structure, payload["assignment"])


def problem_to_dict(problem: EventDiscoveryProblem) -> Dict[str, Any]:
    """Encode an event-discovery problem."""
    return {
        "structure": structure_to_dict(problem.structure),
        "min_confidence": problem.min_confidence,
        "reference_type": problem.reference_type,
        "candidates": {
            variable: sorted(pool) if pool is not None else None
            for variable, pool in problem.candidates.items()
        },
        "type_constraints": [
            {"kind": constraint.kind, "variables": list(constraint.variables)}
            for constraint in problem.type_constraints
        ],
    }


def problem_from_dict(
    payload: Mapping[str, Any], system: GranularitySystem
) -> EventDiscoveryProblem:
    """Decode an event-discovery problem."""
    structure = structure_from_dict(payload["structure"], system)
    candidates = {
        variable: frozenset(pool) if pool is not None else None
        for variable, pool in payload.get("candidates", {}).items()
    }
    type_constraints = tuple(
        TypeConstraint(item["kind"], item["variables"])
        for item in payload.get("type_constraints", ())
    )
    return EventDiscoveryProblem(
        structure=structure,
        min_confidence=float(payload["min_confidence"]),
        reference_type=payload["reference_type"],
        candidates=candidates,
        type_constraints=type_constraints,
    )


# ----------------------------------------------------------------------
# Sequences
# ----------------------------------------------------------------------
def sequence_to_dict(sequence: EventSequence) -> Dict[str, Any]:
    """Encode an event sequence."""
    return {"events": [[e.etype, e.time] for e in sequence]}


def sequence_from_dict(payload: Mapping[str, Any]) -> EventSequence:
    """Decode an event sequence."""
    try:
        return EventSequence(
            Event(etype, int(time)) for etype, time in payload["events"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed sequence payload: %s" % exc)


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def dump_json(payload: Mapping[str, Any], target: Union[str, IO]) -> None:
    """Write a payload as pretty JSON to a path or file object."""
    if isinstance(target, str):
        with open(target, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    else:
        json.dump(payload, target, indent=2, sort_keys=True)


def load_json(source: Union[str, IO]) -> Any:
    """Read JSON from a path or file object."""
    if isinstance(source, str):
        with open(source) as handle:
            return json.load(handle)
    return json.load(source)
