"""Graphviz DOT export for event structures and TAGs.

Figures 1 and 2 of the paper are graphs; these exporters regenerate
them (and any user structure/automaton) as DOT text renderable with
``dot -Tpng``.
"""

from __future__ import annotations

from typing import List

from ..automata.tag import ANY, TAG
from ..constraints.structure import EventStructure


def _quote(value: object) -> str:
    return '"%s"' % str(value).replace('"', '\\"')


def structure_to_dot(structure: EventStructure, name: str = "event_structure") -> str:
    """Render an event structure (Figure 1 style) as DOT."""
    lines: List[str] = [
        "digraph %s {" % name,
        "  rankdir=LR;",
        "  node [shape=circle, fontsize=11];",
    ]
    for variable in structure.variables:
        shape = "doublecircle" if variable == structure.root else "circle"
        lines.append("  %s [shape=%s];" % (_quote(variable), shape))
    for (src, dst), tcgs in structure.constraints.items():
        label = "\\n".join(str(c) for c in tcgs)
        lines.append(
            "  %s -> %s [label=%s, fontsize=9];"
            % (_quote(src), _quote(dst), _quote(label))
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def tag_to_dot(tag: TAG, name: str = "tag") -> str:
    """Render a TAG (Figure 2 style) as DOT.

    Skip self-loops are drawn dashed and unlabelled beyond ``ANY``;
    consuming transitions show their symbol, guard and resets.
    """
    lines: List[str] = [
        "digraph %s {" % name,
        "  rankdir=LR;",
        "  node [shape=circle, fontsize=10];",
    ]

    def state_id(state: object) -> str:
        return _quote(state)

    for state in sorted(tag.states, key=str):
        attrs = []
        if state in tag.accepting:
            attrs.append("shape=doublecircle")
        if state in tag.start_states:
            attrs.append("style=bold")
        lines.append(
            "  %s%s;"
            % (state_id(state), " [%s]" % ", ".join(attrs) if attrs else "")
        )
    for transition in tag.transitions:
        if transition.symbol == ANY and transition.source == transition.target:
            lines.append(
                "  %s -> %s [label=\"ANY\", style=dashed, fontsize=8];"
                % (state_id(transition.source), state_id(transition.target))
            )
            continue
        parts = [transition.symbol]
        guard = str(transition.guard)
        if guard != "true":
            parts.append(guard)
        if transition.resets:
            parts.append("{reset %s}" % ",".join(sorted(transition.resets)))
        lines.append(
            "  %s -> %s [label=%s, fontsize=8];"
            % (
                state_id(transition.source),
                state_id(transition.target),
                _quote("\\n".join(parts)),
            )
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
