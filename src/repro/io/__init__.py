"""Interchange formats: JSON payloads, CSV event logs, DOT graphs."""

from .csvlog import (
    CsvFormatError,
    format_timestamp,
    parse_timestamp,
    read_events,
    write_events,
)
from .dot import structure_to_dot, tag_to_dot
from .serialize import (
    SerializationError,
    complex_event_type_from_dict,
    complex_event_type_to_dict,
    dump_json,
    granularity_from_dict,
    granularity_to_dict,
    load_json,
    problem_from_dict,
    problem_to_dict,
    sequence_from_dict,
    sequence_to_dict,
    structure_from_dict,
    structure_to_dict,
    tcg_from_dict,
    tcg_to_dict,
)

__all__ = [
    "SerializationError",
    "granularity_to_dict",
    "granularity_from_dict",
    "tcg_to_dict",
    "tcg_from_dict",
    "structure_to_dict",
    "structure_from_dict",
    "complex_event_type_to_dict",
    "complex_event_type_from_dict",
    "problem_to_dict",
    "problem_from_dict",
    "sequence_to_dict",
    "sequence_from_dict",
    "dump_json",
    "load_json",
    "CsvFormatError",
    "parse_timestamp",
    "format_timestamp",
    "read_events",
    "write_events",
    "structure_to_dot",
    "tag_to_dot",
]
