"""Command-line interface: consistency, matching, mining, conversion.

Usage (also available as ``python -m repro.cli``)::

    repro check STRUCTURE.json            # Theorem 2 consistency filter
    repro match PATTERN.json EVENTS.csv   # anchored TAG matching
    repro replay PATTERN.json EVENTS.csv  # streaming (online) detection
    repro serve PATTERN.json TENANTS.csv  # multi-tenant detection service
    repro mine PROBLEM.json EVENTS.csv    # optimised discovery pipeline
    repro convert M N SRC DST             # implied-interval conversion
    repro bench --output BENCH.json       # X1-X18 regression harness
    repro dot STRUCTURE.json              # Graphviz export
    repro obs TRACE.json                  # pretty-print a --trace file
    repro obs flame TRACE.json            # render an embedded profile
    repro gran info TYPE                  # compiled periodic normal form

``check`` and ``mine`` accept ``--engine auto|python|numpy|fallback``
to pick the propagation engine (a pure performance knob; see
docs/PERFORMANCE.md).  ``mine`` is also available as ``discover`` and
accepts ``--parallel N|auto`` / ``--shard-size N|auto`` to run the
final TAG scan on a worker pool (identical output to the serial
engine; ``REPRO_PARALLEL=off`` is the environment kill switch).

Every command accepts ``--trace FILE`` (write the span tree of the run
as JSON; inspect with ``repro obs``), ``--metrics`` (print the metrics
registry in Prometheus text format after the command),
``--metrics-out FILE`` and ``--profile-stacks`` (run the sampling
wall-clock profiler and embed its folded stacks into the trace/bench
payload; render with ``repro obs flame``); the flags work both before
and after the subcommand name.  See docs/OBSERVABILITY.md.

Structures/patterns/problems are the JSON payloads of
:mod:`repro.io.serialize`; event logs are two-column CSV
(``event_type,timestamp`` with integer or calendar stamps); SRC/DST are
granularity labels or expressions of :mod:`repro.granularity.parser`
(e.g. ``group(month,3)``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .automata.builder import build_tag
from .automata.matching import TagMatcher
from .bench.harness import PROFILES
from .constraints.propagation import ENGINES, propagate
from .constraints.stp import EngineUnavailable
from .granularity.parser import GranularityParseError, parse_type
from .granularity.registry import standard_system
from .io.csvlog import read_events
from .io.dot import structure_to_dot
from .io.serialize import (
    complex_event_type_from_dict,
    load_json,
    problem_from_dict,
    structure_from_dict,
)
from .mining.discovery import discover


def _add_obs_options(subparser) -> None:
    """The observability flags, repeated on a subparser.

    The root parser declares the same flags with real defaults;
    ``SUPPRESS`` here means an omitted subcommand-level flag leaves the
    root's value alone, so both ``repro --trace f.json mine ...`` and
    ``repro mine ... --trace f.json`` work.
    """
    subparser.add_argument(
        "--trace",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help="write a span-tree trace of this run as JSON "
        "(inspect with 'repro obs FILE')",
    )
    subparser.add_argument(
        "--metrics",
        action="store_true",
        default=argparse.SUPPRESS,
        help="print the metrics registry (Prometheus text format) "
        "after the command",
    )
    subparser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help="write the metrics dump to FILE",
    )
    subparser.add_argument(
        "--profile-stacks",
        action="store_true",
        default=argparse.SUPPRESS,
        help="sample the command with the wall-clock profiler and embed "
        "folded stacks into the --trace / bench payload "
        "(render with 'repro obs flame FILE')",
    )


def _add_engine_option(subparser) -> None:
    subparser.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="propagation engine (auto picks numpy when available; "
        "every engine derives identical constraints)",
    )


def _cmd_check(args) -> int:
    system = standard_system()
    structure = structure_from_dict(load_json(args.structure), system)
    result = propagate(structure, system, engine=args.engine)
    if not result.consistent:
        print("INCONSISTENT (refuted by approximate propagation)")
        return 1
    print("CONSISTENT (not refuted; the exact check is NP-hard)")
    if args.verbose:
        from .mining.reporting import propagation_report

        print(propagation_report(result))
    return 0


def _load_events(args):
    """Read the CSV log, strictly or with a quarantine channel."""
    if not getattr(args, "skip_bad_rows", False):
        return read_events(args.events)
    from .resilience import Quarantine

    quarantine = Quarantine(source=args.events)
    sequence = read_events(args.events, quarantine=quarantine)
    if quarantine:
        print(quarantine.summary(), file=sys.stderr)
    return sequence


def _cmd_match(args) -> int:
    system = standard_system()
    cet = complex_event_type_from_dict(load_json(args.pattern), system)
    sequence = _load_events(args)
    matcher = TagMatcher(build_tag(cet))
    root_type = cet.event_type(cet.structure.root)
    total = sequence.count(root_type)
    matches = list(matcher.matching_roots(sequence))
    for index in matches:
        result = matcher.match_from(sequence, index)
        print(
            "match at t=%d: %s"
            % (sequence[index].time, json.dumps(result.bindings, sort_keys=True))
        )
    frequency = len(matches) / total if total else 0.0
    print(
        "%d/%d %s occurrences matched (frequency %.3f)"
        % (len(matches), total, root_type, frequency)
    )
    return 0


def _cmd_replay(args) -> int:
    from .core.api import stream_pattern
    from .io.serialize import dump_json, streaming_matcher_from_checkpoint

    system = standard_system()
    if args.resume:
        matcher = streaming_matcher_from_checkpoint(
            load_json(args.resume), system
        )
    else:
        cet = complex_event_type_from_dict(load_json(args.pattern), system)
        matcher = stream_pattern(
            cet.structure,
            cet.assignment,
            system,
            max_lateness=args.max_lateness,
            overflow_policy=args.overflow_policy,
            max_live_anchors=args.max_live_anchors,
        )
        if args.horizon is not None:
            matcher.horizon_seconds = args.horizon
    sequence = _load_events(args)
    detections = matcher.feed_sequence(sequence)
    detections.extend(matcher.flush())
    for detection in detections:
        print(
            "detected anchor t=%d at t=%d: %s"
            % (
                detection.anchor_time,
                detection.detected_at,
                json.dumps(detection.bindings, sort_keys=True),
            )
        )
    if args.checkpoint_out:
        dump_json(matcher.checkpoint(), args.checkpoint_out)
        print("checkpoint written to %s" % args.checkpoint_out,
              file=sys.stderr)
    stats = matcher.stats()
    print(
        "# events %d, detections %d, live anchors %d, "
        "late dropped %d, anchors shed %d"
        % (
            stats["events_received"],
            stats["detections_emitted"],
            stats["live_anchors"],
            stats["late_events_dropped"],
            stats["anchors_shed"],
        ),
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args) -> int:
    from .io.csvlog import read_tenant_events
    from .resilience import Quarantine
    from .service import ServiceConfig, ServiceDisabledError, serve_events

    system = standard_system()
    cet = complex_event_type_from_dict(load_json(args.pattern), system)
    quarantine = None
    if args.skip_bad_rows:
        quarantine = Quarantine(source=args.events)
    records = read_tenant_events(args.events, quarantine=quarantine)
    if quarantine:
        print(quarantine.summary(), file=sys.stderr)
    config = ServiceConfig(
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
        max_resident_sessions=args.max_resident,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        max_lateness=args.max_lateness,
        horizon_seconds=args.horizon,
        max_live_anchors=args.max_live_anchors,
        overflow_policy=args.overflow_policy,
    )
    try:
        service = serve_events(
            build_tag(cet, system=system), records,
            config=config, system=system,
        )
    except ServiceDisabledError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    for found in service.detections:
        detection = found.detection
        print(
            "%s/%s#%d%s: detected anchor t=%d at t=%d: %s"
            % (
                found.tenant,
                found.key,
                found.seq,
                " (replayed)" if found.replayed else "",
                detection.anchor_time,
                detection.detected_at,
                json.dumps(detection.bindings, sort_keys=True),
            )
        )
    stats = service.stats()
    tenants = stats["tenants"]
    print(
        "# tenants %d, events %d, detections %d, quarantined %d, "
        "shed %d, evictions %d, rehydrations %d"
        % (
            len(tenants),
            sum(t["submitted"] for t in tenants.values()),
            stats["detections"],
            stats["quarantined"],
            sum(t["shed"] for t in tenants.values()),
            stats["sessions"]["evictions"],
            stats["sessions"]["rehydrations"],
        ),
        file=sys.stderr,
    )
    return 0


def _parse_count(value: Optional[str], flag: str):
    """``--parallel`` / ``--shard-size`` values: an integer or "auto"."""
    if value is None or value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            "%s expects an integer or 'auto', got %r" % (flag, value)
        )


def _cmd_mine(args) -> int:
    system = standard_system()
    problem = problem_from_dict(load_json(args.problem), system)
    sequence = _load_events(args)
    previous_batch = os.environ.get("REPRO_BATCH")
    if args.batch_candidates:
        os.environ["REPRO_BATCH"] = args.batch_candidates
    try:
        outcome = discover(
            problem,
            sequence,
            system,
            screen_depth=args.screen_depth,
            engine=args.engine,
            parallel=_parse_count(args.parallel, "--parallel"),
            shard_size=_parse_count(args.shard_size, "--shard-size"),
        )
    finally:
        if args.batch_candidates:
            if previous_batch is None:
                os.environ.pop("REPRO_BATCH", None)
            else:
                os.environ["REPRO_BATCH"] = previous_batch
    if not outcome.stats.consistent:
        print("structure is inconsistent; nothing to mine")
        return 1
    if args.report:
        from .mining.reporting import discovery_report

        print(discovery_report(outcome))
        return 0
    for cet in outcome.solutions:
        print(
            "%.3f  %s"
            % (
                outcome.frequencies[cet],
                json.dumps(cet.assignment, sort_keys=True),
            )
        )
    stats = outcome.stats
    print(
        "# events %d->%d, anchors %d->%d, candidates evaluated %d, "
        "automaton starts %d"
        % (
            stats.sequence_events_before,
            stats.sequence_events_after,
            stats.roots_before,
            stats.roots_after,
            outcome.candidates_evaluated,
            outcome.automaton_starts,
        ),
        file=sys.stderr,
    )
    return 0


def _cmd_bench(args) -> int:
    from .bench import (
        compare_payloads,
        comparison_delta_table,
        load_payload,
        run_suite,
        save_payload,
    )
    from .obs import format_tree

    experiments = (
        [name.strip() for name in args.experiments.split(",") if name.strip()]
        if args.experiments
        else None
    )
    previous_columnar = os.environ.get("REPRO_COLUMNAR")
    if args.columnar:
        os.environ["REPRO_COLUMNAR"] = args.columnar
    try:
        payload = run_suite(
            engine=args.engine, profile=args.profile, experiments=experiments,
            trace_dir=args.trace_dir,
        )
    finally:
        if args.columnar:
            if previous_columnar is None:
                os.environ.pop("REPRO_COLUMNAR", None)
            else:
                os.environ["REPRO_COLUMNAR"] = previous_columnar
    profiler = getattr(args, "profiler", None)
    if profiler is not None:
        # Snapshot the still-running profiler into the payload (main()
        # owns its lifecycle and stops it after the command returns).
        payload["profile_stacks"] = profiler.to_dict()
    summary = {
        name: dict(
            {"median_seconds": "%.4f" % record["median_seconds"]},
            **record["counters"],
        )
        for name, record in payload["experiments"].items()
    }
    print(format_tree(summary, title="bench (%s, %s engine)"
                      % (args.profile, payload["engine"])))
    if args.trace_dir:
        slowest = {
            name: {
                row["name"]: "%sms" % row["duration_ms"]
                for row in record.get("slowest_spans", ())
            }
            for name, record in payload["experiments"].items()
            if record.get("slowest_spans")
        }
        if slowest:
            print(format_tree(
                slowest, title="slowest spans (traces in %s)"
                % args.trace_dir,
            ))
    if args.output:
        save_payload(payload, args.output)
        print("wrote %s" % args.output, file=sys.stderr)
    if args.baseline:
        baseline = load_payload(args.baseline)
        rows = compare_payloads(
            payload,
            baseline,
            tolerance=args.tolerance,
            min_delta_seconds=args.min_delta,
        )
        print(
            format_tree(
                comparison_delta_table(payload, baseline, rows),
                title="vs baseline %s" % args.baseline,
            )
        )
        if any(row["regressed"] for row in rows):
            print(
                "FAIL: regression beyond %.0f%% tolerance"
                % (args.tolerance * 100),
                file=sys.stderr,
            )
            return 1
        print("no regression beyond %.0f%% tolerance" % (args.tolerance * 100))
    return 0


def _cmd_generate(args) -> int:
    import random

    from .io.csvlog import write_events
    from .mining.generator import planted_sequence

    system = standard_system()
    cet = complex_event_type_from_dict(load_json(args.pattern), system)
    rng = random.Random(args.seed)
    noise_types = args.noise.split(",") if args.noise else []
    sequence, planted = planted_sequence(
        cet,
        system,
        n_roots=args.roots,
        confidence=args.confidence,
        rng=rng,
        noise_types=noise_types,
        noise_events_per_root=args.noise_per_root,
    )
    write_events(sequence, args.output)
    print(
        "wrote %d events (%d/%d anchors carry a planted occurrence) "
        "to %s" % (len(sequence), planted, args.roots, args.output),
        file=sys.stderr,
    )
    return 0


def _cmd_convert(args) -> int:
    system = standard_system()
    try:
        source = parse_type(args.source, system)
        target = parse_type(args.target, system)
    except GranularityParseError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    outcome = system.convert(args.m, args.n, source, target, mode=args.mode)
    if outcome.interval is None:
        print(
            "no implied constraint (conversion infeasible or unbounded)"
        )
        return 1
    lo, hi = outcome.interval
    print("[%d,%d]%s  implies  [%d,%d]%s" % (
        args.m, args.n, source.label, lo, hi, target.label))
    return 0


def _cmd_gran_info(args) -> int:
    from .granularity.normalform import (
        explain_normal_form,
        resolve_backend,
    )

    system = standard_system()
    try:
        ttype = parse_type(args.type, system)
    except GranularityParseError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    try:
        backend = resolve_backend()
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print("granularity: %s" % ttype.label)
    info = explain_normal_form(ttype)
    if not info["compiles"]:
        print("normal form: none")
        print("  reason: %s (%s)" % (info["reason"], info["detail"]))
        print("backend: sweep (type does not lower; window-sweep "
              "reference table)")
        return 0
    print("normal form: %s" % info["source"])
    print("  compiled by: %s" % info["rule"])
    print("  period: %d ticks / %d seconds" % (
        info["period_ticks"], info["period_seconds"]))
    print("  phases: %d boundary offsets per period" % info["period_ticks"])
    print("  instants per period: %d covered, %d in gaps (%d gap runs)" % (
        info["period_instants"], info["gap_seconds"], info["gap_runs"]))
    print("  aperiodic prefix: %d ticks" % info["prefix_ticks"])
    if "minimized_from_period" in info:
        print("  minimized: from %d-tick period / %d-tick prefix" % (
            info["minimized_from_period"], info["minimized_from_prefix"]))
    else:
        print("  minimized: already minimal as compiled")
    print("  exactness: minsize/maxsize/mingap exact for every k "
          "(sweep tables are exact only within their horizon)")
    print("  exact instant cover: %s%s" % (
        "yes" if info["exact_cover"] else "no",
        "" if info["exact_cover"]
        else " (size queries only; tick_of stays on the type)",
    ))
    print("backend: %s (REPRO_SIZETABLE=%s)" % (
        "compiled" if backend != "sweep" else "sweep",
        os.environ.get("REPRO_SIZETABLE", "") or "auto",
    ))
    return 0


def _cmd_analyze(args) -> int:
    from .constraints.analysis import find_disjunctions, tightness_report
    from .granularity.gregorian import SECONDS_PER_DAY
    from .mining.reporting import tightness_table

    system = standard_system()
    structure = structure_from_dict(load_json(args.structure), system)
    window = args.window_days * SECONDS_PER_DAY
    print("tightness (approximate propagation vs exact minimal network,")
    print("granularity %s, window %d days):" % (args.granularity, args.window_days))
    rows = tightness_report(structure, system, args.granularity, window)
    print(tightness_table(rows))
    disjunctions = find_disjunctions(
        structure, system, args.granularity, window
    )
    if disjunctions:
        print("\nhidden disjunctions (interval propagation cannot see):")
        for item in disjunctions:
            print(
                "  %s -> %s in %s: realisable %s (holes %s)"
                % (
                    item.pair[0],
                    item.pair[1],
                    item.granularity_label,
                    list(item.values),
                    list(item.holes),
                )
            )
    else:
        print("\nno hidden disjunctions in this granularity/window")
    return 0


def _cmd_obs(args) -> int:
    from .obs import format_span_tree, load_trace

    if args.trace_file == "flame":
        if not args.flame_file:
            print(
                "error: 'repro obs flame' needs a trace or bench JSON "
                "file with an embedded profile",
                file=sys.stderr,
            )
            return 2
        return _cmd_obs_flame(args.flame_file)
    payload = load_trace(args.trace_file)
    print(format_span_tree(payload, max_children=args.max_children))
    return 0


def _cmd_obs_flame(path: str) -> int:
    """Render the ``"profile"`` payload of a trace or bench JSON file
    as collapsed stacks (pipeable into flamegraph.pl / speedscope)."""
    from .obs import format_flame, format_flame_summary

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    profile = payload.get("profile_stacks")
    if not isinstance(profile, dict):
        profile = {}
    samples = profile.get("samples") or {}
    if not samples:
        print(
            "error: no profile samples in %s (record one with "
            "--profile-stacks)" % path,
            file=sys.stderr,
        )
        return 1
    print(format_flame_summary(samples), file=sys.stderr)
    print(format_flame(samples))
    return 0


def _cmd_dot(args) -> int:
    system = standard_system()
    payload = load_json(args.structure)
    if "assignment" in payload:
        cet = complex_event_type_from_dict(payload, system)
        if args.tag:
            from .io.dot import tag_to_dot

            print(tag_to_dot(build_tag(cet).tag), end="")
            return 0
        structure = cet.structure
    else:
        structure = structure_from_dict(payload, system)
    print(structure_to_dot(structure), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-granularity temporal constraints and mining",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a span-tree trace of the run as JSON "
        "(inspect with 'repro obs FILE')",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        default=False,
        help="print the metrics registry (Prometheus text format) "
        "after the command",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the metrics dump to FILE",
    )
    parser.add_argument(
        "--profile-stacks",
        action="store_true",
        default=False,
        help="sample the command with the wall-clock profiler and embed "
        "folded stacks into the --trace / bench payload "
        "(render with 'repro obs flame FILE')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="consistency-check a structure")
    check.add_argument("structure", help="event-structure JSON file")
    check.add_argument(
        "-v", "--verbose", action="store_true", help="print derived TCGs"
    )
    _add_engine_option(check)
    check.set_defaults(func=_cmd_check)

    match = sub.add_parser("match", help="match a pattern against a log")
    match.add_argument("pattern", help="complex-event-type JSON file")
    match.add_argument("events", help="CSV event log")
    match.add_argument(
        "--skip-bad-rows",
        action="store_true",
        help="quarantine malformed CSV rows instead of aborting",
    )
    match.set_defaults(func=_cmd_match)

    replay = sub.add_parser(
        "replay",
        help="stream a log through the online matcher (resilience knobs)",
    )
    replay.add_argument(
        "pattern",
        help="complex-event-type JSON file (ignored with --resume, which "
        "carries the pattern inside the checkpoint)",
    )
    replay.add_argument("events", help="CSV event log")
    replay.add_argument(
        "--max-lateness",
        type=int,
        default=None,
        metavar="SECONDS",
        help="tolerate out-of-order events up to this many seconds late "
        "(default: strict ordering)",
    )
    replay.add_argument(
        "--overflow-policy",
        choices=("raise", "shed-oldest", "shed-newest", "sample"),
        default="raise",
        help="what to do when live anchors exceed --max-live-anchors",
    )
    replay.add_argument("--max-live-anchors", type=int, default=10_000)
    replay.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="SECONDS",
        help="override the propagation-derived anchor horizon",
    )
    replay.add_argument(
        "--skip-bad-rows",
        action="store_true",
        help="quarantine malformed CSV rows instead of aborting",
    )
    replay.add_argument(
        "--checkpoint-out",
        metavar="FILE",
        help="write the final matcher state as a JSON checkpoint",
    )
    replay.add_argument(
        "--resume",
        metavar="FILE",
        help="restore matcher state from a checkpoint before replaying",
    )
    replay.set_defaults(func=_cmd_replay)

    serve = sub.add_parser(
        "serve",
        help="run a multi-tenant log through the detection service",
    )
    serve.add_argument("pattern", help="complex-event-type JSON file")
    serve.add_argument(
        "events",
        help="CSV log of 'tenant,event_type,timestamp[,sequence_key]' rows",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=256,
        help="per-tenant ingress queue bound",
    )
    serve.add_argument(
        "--shed-policy",
        choices=("raise", "shed-oldest", "shed-newest", "sample"),
        default="raise",
        help="what to do when a tenant's queue overflows",
    )
    serve.add_argument(
        "--max-resident",
        type=int,
        default=64,
        help="resident sessions before LRU eviction to checkpoints",
    )
    serve.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="durable checkpoint store (default: in-memory only)",
    )
    serve.add_argument(
        "--checkpoint-interval",
        type=int,
        default=256,
        help="events between periodic session checkpoints",
    )
    serve.add_argument(
        "--max-lateness",
        type=int,
        default=None,
        metavar="SECONDS",
        help="per-session reorder-buffer lateness bound",
    )
    serve.add_argument(
        "--overflow-policy",
        choices=("raise", "shed-oldest", "shed-newest", "sample"),
        default="raise",
        help="per-session anchor-overflow policy",
    )
    serve.add_argument("--max-live-anchors", type=int, default=10_000)
    serve.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="SECONDS",
        help="override the propagation-derived anchor horizon",
    )
    serve.add_argument(
        "--skip-bad-rows",
        action="store_true",
        help="quarantine malformed CSV rows instead of aborting",
    )
    serve.set_defaults(func=_cmd_serve)

    mine = sub.add_parser(
        "mine",
        aliases=["discover"],
        help="run a discovery problem (alias: discover)",
    )
    mine.add_argument("problem", help="discovery-problem JSON file")
    mine.add_argument("events", help="CSV event log")
    mine.add_argument(
        "--screen-depth",
        type=int,
        default=2,
        choices=(0, 1, 2),
        help="candidate-screening depth (Section 5.1)",
    )
    mine.add_argument(
        "--parallel",
        default=None,
        metavar="N|auto",
        help="run the TAG scan on N worker processes ('auto' = CPU "
        "count; default: serial, or the REPRO_PARALLEL env default). "
        "Output is identical to the serial engine.",
    )
    mine.add_argument(
        "--shard-size",
        default="auto",
        metavar="N|auto",
        help="anchors per time shard for the parallel scan "
        "(default: auto-sized from the worker count)",
    )
    mine.add_argument(
        "--batch-candidates",
        choices=("auto", "on", "off"),
        default=None,
        help="batched multi-candidate frontier scanning (sets "
        "REPRO_BATCH for this run, restored afterwards; 'off' is the "
        "per-candidate differential reference; default: inherit the "
        "environment). Output is identical in every mode.",
    )
    mine.add_argument(
        "--report",
        action="store_true",
        help="print a formatted report instead of raw solution lines",
    )
    mine.add_argument(
        "--skip-bad-rows",
        action="store_true",
        help="quarantine malformed CSV rows instead of aborting",
    )
    _add_engine_option(mine)
    mine.set_defaults(func=_cmd_mine)

    bench = sub.add_parser(
        "bench",
        help="run the X1-X17 regression harness (see docs/PERFORMANCE.md)",
    )
    _add_engine_option(bench)
    bench.add_argument(
        "--columnar",
        choices=("auto", "on", "off"),
        default=None,
        help="force the columnar store backend for this run (sets "
        "REPRO_COLUMNAR for the suite, restored afterwards; "
        "default: inherit the environment)",
    )
    bench.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="quick",
        help="workload size and repeat count",
    )
    bench.add_argument(
        "--experiments",
        default="",
        metavar="NAMES",
        help="comma-separated subset (e.g. X1,X4); default: all eighteen",
    )
    bench.add_argument(
        "--output",
        metavar="FILE",
        help="write the run as a BENCH_*.json payload",
    )
    bench.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="trace every experiment into DIR/<name>.json and add a "
        "slowest_spans table to the payload",
    )
    bench.add_argument(
        "--baseline",
        metavar="FILE",
        help="compare against a previous BENCH_*.json; exit 1 on regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed median-time growth vs the baseline (0.25 = +25%%)",
    )
    bench.add_argument(
        "--min-delta",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="absolute slowdown floor below which no experiment counts "
        "as regressed (jitter guard for sub-millisecond workloads)",
    )
    bench.set_defaults(func=_cmd_bench)

    generate = sub.add_parser(
        "generate", help="generate a synthetic log with planted patterns"
    )
    generate.add_argument("pattern", help="complex-event-type JSON file")
    generate.add_argument("output", help="CSV file to write")
    generate.add_argument("--roots", type=int, default=20)
    generate.add_argument("--confidence", type=float, default=0.9)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--noise", default="", help="comma-separated noise event types"
    )
    generate.add_argument("--noise-per-root", type=int, default=5)
    generate.set_defaults(func=_cmd_generate)

    convert = sub.add_parser(
        "convert", help="convert an interval between granularities"
    )
    convert.add_argument("m", type=int)
    convert.add_argument("n", type=int)
    convert.add_argument("source", help="granularity label or expression")
    convert.add_argument("target", help="granularity label or expression")
    convert.add_argument(
        "--mode", choices=("direct", "figure3"), default="direct"
    )
    convert.set_defaults(func=_cmd_convert)

    analyze = sub.add_parser(
        "analyze",
        help="exact minimal-network analysis (exponential; small inputs)",
    )
    analyze.add_argument("structure", help="event-structure JSON file")
    analyze.add_argument(
        "--granularity", default="day", help="tick-distance granularity"
    )
    analyze.add_argument(
        "--window-days",
        type=int,
        default=120,
        help="search window for the exact enumeration",
    )
    analyze.set_defaults(func=_cmd_analyze)

    dot = sub.add_parser("dot", help="export a structure (or TAG) as DOT")
    dot.add_argument("structure", help="structure or pattern JSON file")
    dot.add_argument(
        "--tag",
        action="store_true",
        help="export the compiled TAG of a pattern instead",
    )
    dot.set_defaults(func=_cmd_dot)

    obs = sub.add_parser(
        "obs",
        help="pretty-print a --trace JSON file as a span tree "
        "('obs flame FILE' renders an embedded profile instead)",
    )
    obs.add_argument(
        "trace_file",
        help="trace JSON written by --trace FILE, or the literal word "
        "'flame' followed by a trace/bench JSON with an embedded "
        "--profile-stacks profile",
    )
    obs.add_argument(
        "flame_file", nargs="?", default=None, help=argparse.SUPPRESS
    )
    obs.add_argument(
        "--max-children",
        type=int,
        default=12,
        help="siblings shown per parent before collapsing the rest",
    )
    obs.set_defaults(func=_cmd_obs)

    gran = sub.add_parser(
        "gran", help="granularity tools (compiled normal forms)"
    )
    gran_sub = gran.add_subparsers(dest="gran_command", required=True)
    gran_info = gran_sub.add_parser(
        "info",
        help="print a granularity's compiled periodic normal form",
    )
    gran_info.add_argument(
        "type", help="granularity label or expression (e.g. 'b-day', "
        "'group(minute,15)')",
    )
    gran_info.set_defaults(func=_cmd_gran_info)

    for subparser in (check, match, replay, serve, mine, bench, generate,
                      convert, analyze, dot, obs, gran_info):
        _add_obs_options(subparser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    User-input problems (missing files, malformed JSON/CSV, unknown
    granularities) exit with code 2 and a one-line message instead of a
    traceback.
    """
    from .io.csvlog import CsvFormatError
    from .io.serialize import SerializationError
    from .obs import (
        SamplingProfiler,
        Tracer,
        activate_tracer,
        prometheus_text,
        span,
        write_trace,
    )

    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    tracer = Tracer() if trace_path else None
    profiler = None
    if getattr(args, "profile_stacks", False):
        profiler = SamplingProfiler()
        profiler.start()
        # Commands that write their own payload (bench) embed a
        # snapshot; main() embeds the final profile into --trace output.
        args.profiler = profiler
    try:
        if tracer is not None:
            with activate_tracer(tracer):
                with span("cli.%s" % args.command):
                    return args.func(args)
        return args.func(args)
    except FileNotFoundError as exc:
        print("error: file not found: %s" % exc.filename, file=sys.stderr)
        return 2
    except EngineUnavailable as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except (SerializationError, CsvFormatError, ValueError) as exc:
        # json.JSONDecodeError and GranularityParseError are ValueError
        # subclasses, so malformed inputs of every kind land here.
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. ``repro obs trace.json | head``).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        # Trace and metrics flush even when the command failed - a trace
        # of a failed run shows where it failed.
        if profiler is not None:
            profiler.stop()
        if tracer is not None:
            payload = tracer.to_dict()
            if profiler is not None:
                payload["profile_stacks"] = profiler.to_dict()
            write_trace(payload, trace_path)
            print(
                "trace written to %s (%d spans)"
                % (trace_path, tracer.total_spans()),
                file=sys.stderr,
            )
        metrics_out = getattr(args, "metrics_out", None)
        if getattr(args, "metrics", False) or metrics_out:
            text = prometheus_text()
            if metrics_out:
                with open(metrics_out, "w", encoding="utf-8") as handle:
                    handle.write(text)
                print(
                    "metrics written to %s" % metrics_out, file=sys.stderr
                )
            if getattr(args, "metrics", False):
                print(text, end="")


if __name__ == "__main__":  # pragma: no cover - direct invocation
    sys.exit(main())
