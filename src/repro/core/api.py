"""Convenience entry points tying the layers together."""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional

from ..automata.builder import TagBuild, build_tag
from ..automata.matching import TagMatcher
from ..constraints.propagation import propagate
from ..constraints.structure import ComplexEventType, EventStructure
from ..granularity.calendar import second
from ..granularity.registry import GranularitySystem, standard_system
from ..mining.discovery import (
    DiscoveryOutcome,
    EventDiscoveryProblem,
    discover,
)
from ..mining.events import EventSequence


def check_consistency(
    structure: EventStructure,
    system: Optional[GranularitySystem] = None,
    engine: str = "auto",
) -> bool:
    """Sound consistency check via approximate propagation (Theorem 2).

    False means the structure is *proven* inconsistent (safe to discard
    before mining); True means not refuted - the exact check is NP-hard
    (Theorem 1), see :func:`repro.constraints.check_consistency_exact`.
    ``engine`` selects the propagation engine (a pure performance knob;
    every engine returns the same verdict).
    """
    system = system if system is not None else standard_system()
    return propagate(structure, system, engine=engine).consistent


def compile_pattern(
    structure: EventStructure,
    assignment: Mapping[str, str],
    system: Optional[GranularitySystem] = None,
    engine: str = "auto",
) -> TagMatcher:
    """Compile a complex event type into a ready-to-run TAG matcher.

    A seconds horizon is derived by propagation when every variable has
    a finite window, so matching stops scanning as early as possible;
    the same windows become anchor requirements, so
    :meth:`~repro.automata.matching.TagMatcher.matching_roots`
    enumerates only anchors the posting-list index cannot refute.
    """
    system = system if system is not None else standard_system()
    cet = ComplexEventType(structure, assignment)
    build: TagBuild = build_tag(cet, system=system)
    result = propagate(
        structure, system, extra_granularities=[second()], engine=engine
    )
    horizon = None
    requirements = []
    if result.consistent:
        seconds = result.groups.get("second", {})
        bounds = []
        for variable in structure.variables:
            if variable == structure.root:
                continue
            interval = seconds.get((structure.root, variable))
            bounds.append(interval)
            if interval is not None:
                requirements.append(
                    (assignment[variable], interval[0], interval[1])
                )
        if bounds and all(b is not None for b in bounds):
            horizon = max(hi for _, hi in bounds)
    return TagMatcher(
        build, horizon_seconds=horizon, anchor_requirements=requirements
    )


def stream_pattern(
    structure: EventStructure,
    assignment: Mapping[str, str],
    system: Optional[GranularitySystem] = None,
    max_lateness: Optional[int] = None,
    overflow_policy: str = "raise",
    max_live_anchors: int = 10_000,
):
    """Compile a pattern into an online :class:`StreamingMatcher`.

    The anchor-retirement horizon is derived by propagation like
    :func:`compile_pattern`'s scan horizon.

    The resilience knobs pass straight through to the matcher:
    ``max_lateness`` enables the reorder buffer (tolerate out-of-order
    events up to that many seconds late), ``overflow_policy`` picks
    the degradation behaviour when live anchors exceed
    ``max_live_anchors`` (``raise`` | ``shed-oldest`` |
    ``shed-newest`` | ``sample``).  See docs/RESILIENCE.md.
    """
    from ..automata.streaming import StreamingMatcher

    batch = compile_pattern(structure, assignment, system)
    return StreamingMatcher(
        batch.build,
        horizon_seconds=batch.horizon_seconds,
        max_lateness=max_lateness,
        overflow_policy=overflow_policy,
        max_live_anchors=max_live_anchors,
    )


def count_pattern(
    matcher: TagMatcher, sequence: EventSequence
) -> int:
    """Root occurrences of the matcher's pattern in a sequence."""
    return matcher.count_occurrences(sequence)


def pattern_frequency(
    matcher: TagMatcher, sequence: EventSequence
) -> float:
    """The paper's frequency: matched roots / reference occurrences."""
    total = sequence.count(matcher.build.root_symbol)
    if total == 0:
        return 0.0
    return matcher.count_occurrences(sequence) / total


def mine(
    structure: EventStructure,
    reference_type: str,
    sequence: EventSequence,
    min_confidence: float,
    candidates: Optional[Mapping[str, FrozenSet[str]]] = None,
    system: Optional[GranularitySystem] = None,
    engine: str = "auto",
) -> DiscoveryOutcome:
    """Solve an event-discovery problem with the optimised pipeline."""
    system = system if system is not None else standard_system()
    problem = EventDiscoveryProblem(
        structure=structure,
        min_confidence=min_confidence,
        reference_type=reference_type,
        candidates=dict(candidates) if candidates else {},
    )
    return discover(problem, sequence, system, engine=engine)
