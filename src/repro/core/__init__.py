"""High-level facade over the paper's primary contribution.

For users who want the headline capabilities without navigating the
sub-packages: build granularity systems and event structures, check
consistency, compile complex event types to TAGs, match them, and run
discovery problems.
"""

from .api import (
    check_consistency,
    compile_pattern,
    count_pattern,
    mine,
    pattern_frequency,
    stream_pattern,
)

__all__ = [
    "check_consistency",
    "compile_pattern",
    "count_pattern",
    "pattern_frequency",
    "mine",
    "stream_pattern",
]
