"""Regenerate the paper's figures as Graphviz DOT files.

Writes Figure 1(a), Figure 1(b) and Figure 2 (the Example 1 TAG) into
``docs/figures/``; render with ``dot -Tpng <file>`` if Graphviz is
installed.

Run with:  python examples/render_figures.py
"""

import os

from repro import TCG, EventStructure, standard_system
from repro.constraints import ComplexEventType
from repro.automata import build_tag
from repro.io import structure_to_dot, tag_to_dot

OUTPUT_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "docs",
    "figures",
)


def main():
    system = standard_system()
    bday = system.get("b-day")
    hour = system.get("hour")
    week = system.get("week")
    month = system.get("month")
    year = system.get("year")

    figure_1a = EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, bday)],
            ("X1", "X3"): [TCG(0, 1, week)],
            ("X0", "X2"): [TCG(0, 5, bday)],
            ("X2", "X3"): [TCG(0, 8, hour)],
        },
    )
    figure_1b = EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(11, 11, month), TCG(0, 0, year)],
            ("X0", "X2"): [TCG(0, 12, month)],
            ("X2", "X3"): [TCG(11, 11, month), TCG(0, 0, year)],
        },
    )
    figure_2 = build_tag(
        ComplexEventType(
            figure_1a,
            {
                "X0": "ibm-rise",
                "X1": "ibm-rep",
                "X2": "hp-rise",
                "X3": "ibm-fall",
            },
        )
    ).tag

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    outputs = {
        "figure_1a.dot": structure_to_dot(figure_1a, name="figure_1a"),
        "figure_1b.dot": structure_to_dot(figure_1b, name="figure_1b"),
        "figure_2_tag.dot": tag_to_dot(figure_2, name="figure_2"),
    }
    for filename, content in outputs.items():
        path = os.path.join(OUTPUT_DIR, filename)
        with open(path, "w") as handle:
            handle.write(content)
        print("wrote %s (%d lines)" % (path, content.count("\n")))


if __name__ == "__main__":
    main()
