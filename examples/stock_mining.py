"""Stock-market mining: the paper's Examples 1 and 2, end to end.

Builds the Figure 1(a) event structure (IBM rise -> earnings report the
next business day -> fall within the same-or-next week; HP rise within
5 business days of the IBM rise and within 8 hours before the fall),
plants it into a synthetic stock feed at 90% confidence, and runs the
event-discovery problem of Example 2 with both the naive and the
optimised algorithms, reporting the work each performed.

Run with:  python examples/stock_mining.py
"""

import random
import time

from repro import TCG, EventStructure, standard_system
from repro.constraints import ComplexEventType
from repro.mining import (
    EventDiscoveryProblem,
    discover,
    naive_discover,
    planted_sequence,
)


def figure_1a(system):
    bday = system.get("b-day")
    hour = system.get("hour")
    week = system.get("week")
    return EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, bday)],
            ("X1", "X3"): [TCG(0, 1, week)],
            ("X0", "X2"): [TCG(0, 5, bday)],
            ("X2", "X3"): [TCG(0, 8, hour)],
        },
    )


def main():
    system = standard_system()
    structure = figure_1a(system)
    target = ComplexEventType(
        structure,
        {
            "X0": "IBM-rise",
            "X1": "IBM-earnings-report",
            "X2": "HP-rise",
            "X3": "IBM-fall",
        },
    )

    rng = random.Random(1996)  # the year of the paper
    sequence, planted = planted_sequence(
        target,
        system,
        n_roots=40,
        confidence=0.9,
        rng=rng,
        noise_types=["HP-fall", "DEC-rise", "DEC-fall", "SUN-rise"],
        noise_events_per_root=8,
    )
    print(
        "Synthetic feed: %d events, %d IBM-rise anchors, %d planted "
        "complex events" % (len(sequence), sequence.count("IBM-rise"), planted)
    )

    # Example 2: (S, 0.8, IBM-rise, psi) with psi(X3) = {IBM-fall}.
    problem = EventDiscoveryProblem(
        structure,
        min_confidence=0.8,
        reference_type="IBM-rise",
        candidates={"X3": frozenset(["IBM-fall"])},
    )

    print("\n-- naive algorithm (all candidates x all anchors) --")
    start = time.perf_counter()
    naive = naive_discover(problem, sequence, system)
    naive_time = time.perf_counter() - start
    print(
        "candidates: %d   automaton starts: %d   time: %.2fs"
        % (naive.candidates_evaluated, naive.automaton_starts, naive_time)
    )

    print("\n-- optimised pipeline (Section 5 steps 1-5) --")
    start = time.perf_counter()
    optimised = discover(problem, sequence, system)
    optimised_time = time.perf_counter() - start
    stats = optimised.stats
    print(
        "sequence: %d -> %d events   anchors: %d -> %d"
        % (
            stats.sequence_events_before,
            stats.sequence_events_after,
            stats.roots_before,
            stats.roots_after,
        )
    )
    print(
        "candidates per variable: %s -> %s"
        % (stats.candidates_before, stats.candidates_after_depth1)
    )
    print(
        "candidates: %d   automaton starts: %d   time: %.2fs"
        % (
            optimised.candidates_evaluated,
            optimised.automaton_starts,
            optimised_time,
        )
    )

    print("\n-- solutions (both algorithms agree) --")
    for cet in optimised.solutions:
        frequency = optimised.frequencies[cet]
        pattern = ", ".join(
            "%s=%s" % (v, cet.assignment[v]) for v in structure.variables
        )
        print("  %.0f%%  %s" % (100 * frequency, pattern))
    assert sorted(map(str, naive.solution_assignments())) == sorted(
        map(str, optimised.solution_assignments())
    )
    if naive_time > 0:
        print(
            "\nSpeed-up: %.0fx fewer automaton starts, %.0fx wall time"
            % (
                naive.automaton_starts / max(1, optimised.automaton_starts),
                naive_time / max(1e-9, optimised_time),
            )
        )


if __name__ == "__main__":
    main()
