"""Quickstart: multi-granularity constraints in five minutes.

Walks through the library's core loop:

1. build a granularity system (business calendar included);
2. express a temporal pattern as an event structure with TCGs;
3. check consistency and inspect derived constraints;
4. compile the pattern to a timed automaton with granularities (TAG);
5. match it against an event sequence.

Run with:  python examples/quickstart.py
"""

from repro import (
    TCG,
    EventSequence,
    EventStructure,
    check_consistency,
    compile_pattern,
    pattern_frequency,
    standard_system,
)
from repro.constraints import propagate
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


def main():
    # 1. A granularity system: second .. year plus business types.
    system = standard_system()
    print("Granularities:", ", ".join(system.labels()))

    # 2. A pattern: a server alert acknowledged the NEXT business day,
    #    and escalated within 4 hours of the acknowledgement but still
    #    in the same week as the alert.
    bday = system.get("b-day")
    hour = system.get("hour")
    week = system.get("week")
    structure = EventStructure(
        ["alert", "ack", "escalation"],
        {
            ("alert", "ack"): [TCG(1, 1, bday)],
            ("ack", "escalation"): [TCG(0, 4, hour)],
            ("alert", "escalation"): [TCG(0, 0, week)],
        },
    )

    # 3. Consistency + derived constraints (sound, polynomial).
    print("\nConsistent?", check_consistency(structure, system))
    result = propagate(structure, system)
    print("Derived alert->escalation intervals:")
    for label, interval in sorted(result.intervals("alert", "escalation").items()):
        print("   [%d, %d] %s" % (interval[0], interval[1], label))

    # 4. Compile to a TAG matcher (phi maps variables to event types).
    matcher = compile_pattern(
        structure,
        {"alert": "ALERT", "ack": "ACK", "escalation": "PAGE"},
        system,
    )
    print(
        "\nTAG: %d states, %d clocks, scan horizon %s seconds"
        % (
            len(matcher.tag.states),
            len(matcher.tag.clocks),
            matcher.horizon_seconds,
        )
    )

    # 5. Match. Day 0 of the timeline is a Monday.
    sequence = EventSequence(
        [
            ("ALERT", 0 * D + 10 * H),  # Monday 10:00
            ("NOISE", 0 * D + 15 * H),
            ("ACK", 1 * D + 9 * H),     # Tuesday 09:00 (next b-day)
            ("PAGE", 1 * D + 11 * H),   # Tuesday 11:00 (2h later, same week)
            ("ALERT", 4 * D + 16 * H),  # Friday 16:00
            ("ACK", 7 * D + 9 * H),     # next Monday (next b-day) ...
            ("PAGE", 7 * D + 10 * H),   # ... but no longer the same week!
        ]
    )
    for index in sequence.occurrence_indices("ALERT"):
        outcome = matcher.match_from(sequence, index)
        stamp = sequence[index].time
        print(
            "ALERT at t=%-7d -> %s"
            % (stamp, "MATCH %r" % outcome.bindings if outcome.matched else "no match")
        )
    print("Pattern frequency: %.2f" % pattern_frequency(matcher, sequence))


if __name__ == "__main__":
    main()
