"""ATM fraud patterns: quantitative bounds across calendar days.

The paper's introduction motivates TCGs with ATM transaction analysis:
"events occurring in the same day, or events happening within k weeks
of a specific one" - bounds a fixed number of seconds cannot express.

This example mines a synthetic ATM log for the pattern

    large-withdrawal  ->  card-retained  (same calendar day)
                      ->  account-frozen (within one week of the
                                          withdrawal, after retention)

and demonstrates why the same-day requirement is *not* a 24-hour
window: a decoy pair 5 hours apart across midnight is planted and
correctly rejected, while the MTV95-style fixed-window baseline cannot
separate the two cases.

Run with:  python examples/atm_fraud.py
"""

import random

from repro import TCG, EventSequence, EventStructure, standard_system
from repro.constraints import ComplexEventType
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining import (
    EventDiscoveryProblem,
    SerialEpisode,
    atm_sequence,
    discover,
    episode_frequency,
    planted_sequence,
)

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


def fraud_structure(system):
    day = system.get("day")
    week = system.get("week")
    hour = system.get("hour")
    return EventStructure(
        ["withdrawal", "retained", "frozen"],
        {
            ("withdrawal", "retained"): [TCG(0, 0, day)],
            ("retained", "frozen"): [TCG(0, 96, hour)],
            ("withdrawal", "frozen"): [TCG(0, 1, week)],
        },
    )


def main():
    system = standard_system()
    structure = fraud_structure(system)
    fraud = ComplexEventType(
        structure,
        {
            "withdrawal": "large-withdrawal",
            "retained": "card-retained",
            "frozen": "account-frozen",
        },
    )

    rng = random.Random(42)
    planted, n_planted = planted_sequence(
        fraud,
        system,
        n_roots=30,
        confidence=0.85,
        rng=rng,
        root_spacing_seconds=10 * D,
    )
    background = atm_sequence(days=300, rng=rng, events_per_day=4)
    # Keep the reference type out of the background so the planted
    # confidence is what discovery sees (extra anchors would dilute it).
    background = background.filtered(
        lambda e: e.etype != "large-withdrawal"
    )
    sequence = EventSequence(list(planted) + list(background))
    print(
        "ATM log: %d events over ~300 days, %d fraud chains planted"
        % (len(sequence), n_planted)
    )

    problem = EventDiscoveryProblem(
        structure, min_confidence=0.7, reference_type="large-withdrawal"
    )
    outcome = discover(problem, sequence, system)
    print("\nDiscovered patterns above 70% confidence:")
    for cet in outcome.solutions:
        print(
            "  %.0f%%  withdrawal -> %s (same day) -> %s (within a week)"
            % (
                100 * outcome.frequencies[cet],
                cet.assignment["retained"],
                cet.assignment["frozen"],
            )
        )

    # --- The same-day subtlety ------------------------------------
    same_day = EventSequence(
        [("large-withdrawal", 100 * D + 8 * H), ("card-retained", 100 * D + 20 * H)]
    )
    cross_midnight = EventSequence(
        [("large-withdrawal", 100 * D + 23 * H), ("card-retained", 101 * D + 4 * H)]
    )
    from repro import compile_pattern

    pair = EventStructure(
        ["w", "r"], {("w", "r"): [TCG(0, 0, system.get("day"))]}
    )
    matcher = compile_pattern(
        pair, {"w": "large-withdrawal", "r": "card-retained"}, system
    )
    episode = SerialEpisode(("large-withdrawal", "card-retained"))
    print("\nSame-day TCG vs fixed 24h window:")
    print(
        "  12h apart, same day      : TCG %-5s  24h-window %s"
        % (
            matcher.occurs_at(same_day, 0),
            episode_frequency(same_day, episode, 24 * H) > 0,
        )
    )
    print(
        "  5h apart, across midnight: TCG %-5s  24h-window %s"
        % (
            matcher.occurs_at(cross_midnight, 0),
            episode_frequency(cross_midnight, episode, 24 * H) > 0,
        )
    )
    print(
        "\nThe fixed window accepts both; only the granularity "
        "constraint tells them apart."
    )


if __name__ == "__main__":
    main()
