"""Section 6 extensions in action: calendars as events, repetition,
reference sets and type constraints.

Scenario: an operations team wants to know

1. "what happens in most weeks?"  - using *week boundaries* as the
   reference (the paper: the reference "can be the event type, say,
   'the beginning of a week'");
2. whether the backup/verify pair repeats on THREE consecutive business
   days (bounded repetition via structure unrolling);
3. which follow-up reliably trails *either* kind of incident
   (reference-type sets), requiring the two follow-up slots to be
   handled by different teams (distinct-type constraint).

Run with:  python examples/weekly_report.py
"""

import random

from repro import TCG, EventSequence, EventStructure, standard_system
from repro.automata import TagMatcher, build_tag
from repro.constraints import ComplexEventType
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining import (
    Event,
    EventDiscoveryProblem,
    TypeConstraint,
    discover,
    discover_any_reference,
    unroll,
    unrolled_assignment,
    with_anchors,
)

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


def what_happens_in_most_weeks(system):
    print("1. What happens in most weeks?")
    day = system.get("day")
    week = system.get("week")
    structure = EventStructure(
        ["W", "E"],
        {("W", "E"): [TCG(0, 0, week), TCG(0, 4, day)]},
    )
    rng = random.Random(3)
    events = []
    for week_index in range(12):
        base = week_index * 7 * D
        events.append(Event("deploy", base + D + 14 * H))  # Tuesdays
        if week_index % 3 != 0:
            events.append(Event("oncall-page", base + 2 * D + 3 * H))
        events.append(Event("retro", base + 4 * D + 15 * H))  # Fridays
        events.append(
            Event("lunch", base + rng.randrange(0, 5) * D + 12 * H)
        )
    sequence = with_anchors(EventSequence(events), week)
    problem = EventDiscoveryProblem(structure, 0.9, "@week")
    outcome = discover(problem, sequence, system)
    for cet in outcome.solutions:
        print(
            "   %3.0f%% of weeks contain a %s"
            % (100 * outcome.frequencies[cet], cet.assignment["E"])
        )


def backup_repeats_three_days(system):
    print("\n2. Does backup->verify repeat on 3 consecutive business days?")
    bday = system.get("b-day")
    hour = system.get("hour")
    base = EventStructure(
        ["B", "V"], {("B", "V"): [TCG(0, 1, hour)]}
    )
    chain = unroll(base, 3, [TCG(1, 1, bday)])
    cet = ComplexEventType(
        chain, unrolled_assignment({"B": "backup", "V": "verify"}, 3)
    )
    matcher = TagMatcher(build_tag(cet))
    good = EventSequence(
        [
            ("backup", 1 * D + 2 * H), ("verify", 1 * D + 2 * H + 1800),
            ("backup", 2 * D + 2 * H), ("verify", 2 * D + 3 * H - 60),
            ("backup", 3 * D + 2 * H), ("verify", 3 * D + 2 * H + 900),
        ]
    )
    # The "bad" week skips the middle verification.
    bad = EventSequence(
        [
            ("backup", 8 * D + 2 * H), ("verify", 8 * D + 2 * H + 1800),
            ("backup", 9 * D + 2 * H),
            ("backup", 10 * D + 2 * H), ("verify", 10 * D + 3 * H - 60),
        ]
    )
    print("   healthy week :", matcher.occurs_at(good, 0))
    print("   broken week  :", matcher.occurs_at(bad, 0))


def incident_followups(system):
    print("\n3. What reliably follows either kind of incident?")
    hour = system.get("hour")
    structure = EventStructure(
        ["I", "F"], {("I", "F"): [TCG(0, 3, hour)]}
    )
    events = []
    for i in range(10):
        base = i * 2 * D
        incident = "outage" if i % 2 else "degradation"
        events.append(Event(incident, base + 10 * H))
        events.append(Event("statuspage-update", base + 11 * H))
        if i % 3 == 0:
            events.append(Event("rollback", base + 12 * H))
    sequence = EventSequence(events)
    results = discover_any_reference(
        structure,
        0.8,
        ["outage", "degradation"],
        sequence,
        system,
    )
    for assignment, frequency in sorted(results.items()):
        print(
            "   %3.0f%%  incident -> %s"
            % (100 * frequency, dict(assignment)["F"])
        )

    print("\n   ... and who handles the two follow-up slots? (distinct teams)")
    two_slot = EventStructure(
        ["I", "F1", "F2"],
        {
            ("I", "F1"): [TCG(0, 3, hour)],
            ("I", "F2"): [TCG(0, 3, hour)],
        },
    )
    problem = EventDiscoveryProblem(
        two_slot,
        0.2,
        "outage",
        type_constraints=(TypeConstraint("distinct", ["F1", "F2"]),),
    )
    outcome = discover(problem, sequence, system)
    for cet in outcome.solutions:
        print(
            "   %3.0f%%  outage -> {%s, %s}"
            % (
                100 * outcome.frequencies[cet],
                cet.assignment["F1"],
                cet.assignment["F2"],
            )
        )


def main():
    system = standard_system()
    what_happens_in_most_weeks(system)
    backup_repeats_three_days(system)
    incident_followups(system)


if __name__ == "__main__":
    main()
